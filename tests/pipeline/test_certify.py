"""Tests for the cross-layer certification pipeline.

``certify`` is expensive (it runs the full static chooser plus dozens of
exhaustive explorations), so the banking certificate is computed once per
module and shared by every assertion that reads it.
"""

import json

import pytest

from repro.core.conditions import ANSI_LADDER
from repro.pipeline import (
    RunContext,
    certify,
    classify,
    level_below,
    run_probe,
    scenarios_for,
)
from repro.sched.histories import replay


@pytest.fixture(scope="module")
def banking_report():
    return certify("banking", context=RunContext(seed=0))


class TestClassify:
    def test_violation_at_chosen_level_is_a_counterexample(self):
        assert classify(1, "READ COMMITTED", 5) == "counterexample"

    def test_clean_chosen_with_violating_below_agrees(self):
        assert classify(0, "READ COMMITTED", 3) == "agree"

    def test_bottom_of_ladder_agrees_vacuously(self):
        assert classify(0, None, 0) == "agree"

    def test_clean_below_means_static_was_too_conservative(self):
        assert classify(0, "READ COMMITTED", 0) == "static-too-conservative"


class TestLevelBelow:
    def test_walks_down_the_ansi_ladder(self):
        assert level_below("SERIALIZABLE", ANSI_LADDER) == "REPEATABLE READ"
        assert level_below("REPEATABLE READ", ANSI_LADDER) == "READ COMMITTED"
        assert level_below("READ COMMITTED", ANSI_LADDER) == "READ UNCOMMITTED"

    def test_bottom_has_nothing_below(self):
        assert level_below("READ UNCOMMITTED", ANSI_LADDER) is None

    def test_unknown_level_has_nothing_below(self):
        assert level_below("CURSOR STABILITY", ANSI_LADDER) is None


class TestScenarios:
    def test_banking_has_scenarios_for_every_type(self):
        scenarios = scenarios_for("banking")
        focused = {name for scenario in scenarios for name in scenario.focus}
        assert focused == {"Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch"}

    def test_unknown_app_has_none(self):
        assert scenarios_for("no-such-app") == []

    def test_specs_honour_level_assignment(self):
        scenario = scenarios_for("banking")[0]
        specs = scenario.specs({name: "SNAPSHOT" for name in scenario.focus})
        assert all(spec.level == "SNAPSHOT" for spec in specs)


class TestRunProbe:
    def test_withdraw_race_violates_at_read_committed(self):
        scenario = next(
            s for s in scenarios_for("banking") if s.name == "withdraw-race"
        )
        levels = {name: "READ COMMITTED" for name in scenario.focus}
        probe = run_probe(scenario, levels, RunContext(seed=0))
        assert probe.violations > 0
        assert probe.witnesses, "violating schedules must yield witnesses"
        witness = probe.witnesses[0]
        assert witness.history is not None
        assert "repro replay" in witness.replay_command()

    def test_withdraw_race_is_clean_at_repeatable_read(self):
        scenario = next(
            s for s in scenarios_for("banking") if s.name == "withdraw-race"
        )
        levels = {name: "REPEATABLE READ" for name in scenario.focus}
        probe = run_probe(scenario, levels, RunContext(seed=0))
        assert probe.violations == 0
        assert probe.schedules > 0


class TestBankingCertificate:
    def test_static_and_dynamic_agree_for_every_type(self, banking_report):
        """Acceptance: a verdict for each banking type, no counterexamples."""
        verdicts = {v.transaction: v.verdict for v in banking_report.verdicts}
        assert set(verdicts) == {
            "Withdraw_sav",
            "Withdraw_ch",
            "Deposit_sav",
            "Deposit_ch",
        }
        assert "counterexample" not in verdicts.values()
        assert banking_report.agreement

    def test_withdraws_agree_deposit_ch_is_conservative(self, banking_report):
        verdicts = {v.transaction: v.verdict for v in banking_report.verdicts}
        assert verdicts["Withdraw_sav"] == "agree"
        assert verdicts["Withdraw_ch"] == "agree"

    def test_static_chooses_repeatable_read_everywhere(self, banking_report):
        for verdict in banking_report.verdicts:
            assert verdict.static_level == "REPEATABLE READ"
            assert verdict.below_level == "READ COMMITTED"

    def test_rc_lost_update_witness_is_replayable(self, banking_report):
        """Acceptance: the RC lost update replays from its history string."""
        verdict = banking_report.verdict_for("Withdraw_sav")
        assert verdict.below_violations > 0
        witnesses = [w for w in verdict.witnesses() if w.history is not None]
        assert witnesses
        witness = witnesses[0]
        scenario = next(
            s for s in scenarios_for("banking") if s.name == witness.scenario
        )
        result = replay(witness.history, witness.levels, initial=scenario.initial())
        assert result.executed_fully
        # sav starts at 2 and two withdrawals of 1 race: serially the balance
        # reaches 0, the lost update leaves 1 behind
        assert result.final.arrays["acct_sav"][0]["bal"] == 1

    def test_render_mentions_every_verdict(self, banking_report):
        text = banking_report.render()
        for verdict in banking_report.verdicts:
            assert verdict.transaction in text
        assert "repro replay" in text

    def test_report_round_trips_through_json(self, banking_report):
        payload = json.loads(json.dumps(banking_report.to_dict()))
        assert payload["application"] == "banking"
        assert payload["agreement"] is banking_report.agreement
        assert {v["transaction"] for v in payload["verdicts"]} == {
            v.transaction for v in banking_report.verdicts
        }
        assert "static" in payload and "stats" in payload and "sdg" in payload


class TestSdgLayer:
    def test_no_sdg_vs_prover_disagreement(self, banking_report):
        """Acceptance: the SDG never undercuts the prover-backed chooser."""
        assert banking_report.sdg["disagreements"] == []
        assert banking_report.agreement

    def test_sdg_safe_levels_match_the_chooser(self, banking_report):
        # banking is conventional: every type is SDG-safe from REPEATABLE
        # READ, exactly where the chooser lands
        for entry in banking_report.sdg["types"]:
            assert entry["safe_level"] == "REPEATABLE READ"

    def test_write_skew_structure_is_corroborated(self, banking_report):
        structures = banking_report.sdg["structures"]
        skew = [s for s in structures if s["kind"] == "snapshot-write-skew"]
        assert any(
            s["transactions"] == ["Withdraw_ch", "Withdraw_sav"] for s in skew
        )
        # the below-level probes exhibit the matching Berenson phenomena
        corroborated = [s for s in structures if s["corroborated"]]
        assert corroborated
        assert all(s["phenomenon"] for s in structures)

    def test_probes_carry_anomaly_counts(self, banking_report):
        counts = {}
        for verdict in banking_report.verdicts:
            for probe in verdict.chosen_probes + verdict.below_probes:
                for name, count in probe.anomalies.items():
                    counts[name] = counts.get(name, 0) + count
        assert counts.get("P4-lost-update", 0) > 0

    def test_render_includes_sdg_section(self, banking_report):
        text = banking_report.render()
        assert "static conflict graph (SDG)" in text
        assert "SDG-safe from" in text

    def test_disagreement_breaks_agreement(self, banking_report):
        import dataclasses

        tampered = dataclasses.replace(banking_report)
        tampered.sdg = dict(banking_report.sdg)
        tampered.sdg["disagreements"] = [
            {"transaction": "X", "detail": "synthetic"}
        ]
        assert not tampered.agreement
        assert "DISAGREEMENT" in tampered.render()
