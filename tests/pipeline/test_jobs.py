"""Unit tests for the job layer shared by the batch CLI and the service."""

import json

import pytest

from repro.pipeline.jobs import JobError, JobSpec, run_job


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(kind="explore", app="banking").validate()

    def test_unknown_app(self):
        with pytest.raises(JobError, match="unknown application"):
            JobSpec(kind="lint", app="nope").validate()

    def test_unknown_ladder(self):
        with pytest.raises(JobError, match="unknown ladder"):
            JobSpec(kind="analyze", app="banking", ladder="spiral").validate()

    def test_transaction_requires_level(self):
        with pytest.raises(JobError, match="given together"):
            JobSpec(kind="analyze", app="banking", transaction="Deposit").validate()

    def test_unknown_level(self):
        with pytest.raises(JobError, match="unknown isolation level"):
            JobSpec(
                kind="analyze", app="banking", transaction="Deposit", level="CASUAL"
            ).validate()

    def test_unknown_transaction(self):
        with pytest.raises(JobError, match="unknown transaction"):
            JobSpec(
                kind="analyze", app="banking",
                transaction="Nope", level="SERIALIZABLE",
            ).validate()

    def test_negative_budget(self):
        with pytest.raises(JobError, match="budget"):
            JobSpec(kind="analyze", app="banking", budget=-1).validate()

    def test_valid_spec_passes(self):
        JobSpec(kind="analyze", app="banking").validate()

    def test_appgen_ref_accepted_for_infer(self):
        JobSpec(kind="infer", app="appgen:7").validate()
        JobSpec(kind="infer", app="appgen:-2").validate()

    def test_appgen_ref_rejected_for_other_kinds(self):
        with pytest.raises(JobError, match="only.*infer"):
            JobSpec(kind="analyze", app="appgen:7").validate()

    def test_appgen_seed_must_be_integer(self):
        with pytest.raises(JobError, match="must be an integer"):
            JobSpec(kind="infer", app="appgen:banana").validate()

    def test_infer_accepts_registry_apps(self):
        JobSpec(kind="infer", app="banking").validate()

    def test_fuzz_accepts_appgen_refs_only(self):
        JobSpec(kind="fuzz", app="appgen:7").validate()
        with pytest.raises(JobError, match="appgen"):
            JobSpec(kind="fuzz", app="banking").validate()

    def test_fuzz_specs_carry_one_seed_not_a_range(self):
        with pytest.raises(JobError, match="one seed"):
            JobSpec(kind="fuzz", app="appgen:0..100").validate()

    def test_fuzz_level_is_the_forced_override(self):
        JobSpec(kind="fuzz", app="appgen:0", level="READ COMMITTED").validate()
        with pytest.raises(JobError, match="unknown isolation level"):
            JobSpec(kind="fuzz", app="appgen:0", level="CASUAL").validate()

    def test_fuzz_rejects_transaction_filters(self):
        with pytest.raises(JobError, match="no transaction filter"):
            JobSpec(kind="fuzz", app="appgen:0", transaction="Deposit").validate()

    def test_profile_knobs_validated(self):
        JobSpec(kind="fuzz", app="appgen:0", profile="txns=3..5").validate()
        with pytest.raises(JobError, match="bad generator knobs"):
            JobSpec(kind="fuzz", app="appgen:0", profile="txns=banana").validate()

    def test_profile_rejected_for_non_appgen_kinds(self):
        with pytest.raises(JobError, match="appgen jobs"):
            JobSpec(kind="analyze", app="banking", profile="txns=3..5").validate()

    def test_pairs_must_be_positive(self):
        with pytest.raises(JobError, match="pairs"):
            JobSpec(kind="fuzz", app="appgen:0", pairs=0).validate()


class TestFromDict:
    def test_round_trip(self):
        spec = JobSpec(kind="analyze", app="banking", budget=100, ladder="extended")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(JobError, match="unknown job fields"):
            JobSpec.from_dict({"app": "banking", "bananas": 2}, kind="lint")

    def test_non_integer_budget_rejected(self):
        with pytest.raises(JobError, match="must be an integer"):
            JobSpec.from_dict({"app": "banking", "budget": "lots"}, kind="analyze")

    def test_kind_argument_fills_in(self):
        assert JobSpec.from_dict({"app": "banking"}, kind="certify").kind == "certify"

    def test_non_integer_pairs_rejected(self):
        with pytest.raises(JobError, match="must be an integer"):
            JobSpec.from_dict({"app": "appgen:0", "pairs": "two"}, kind="fuzz")

    def test_non_string_profile_rejected(self):
        with pytest.raises(JobError, match="must be a string"):
            JobSpec.from_dict({"app": "appgen:0", "profile": 3}, kind="fuzz")


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        a = JobSpec(kind="analyze", app="banking", budget=100)
        b = JobSpec(kind="analyze", app="banking", budget=100)
        assert a.fingerprint() == b.fingerprint()

    def test_every_semantic_field_matters(self):
        base = JobSpec(kind="analyze", app="banking")
        variants = [
            JobSpec(kind="lint", app="banking"),
            JobSpec(kind="analyze", app="employees"),
            JobSpec(kind="analyze", app="banking", budget=7),
            JobSpec(kind="analyze", app="banking", seed=7),
            JobSpec(kind="analyze", app="banking", ladder="extended"),
            JobSpec(kind="analyze", app="banking", snapshot=True),
            JobSpec(kind="analyze", app="banking", use_sdg=False),
        ]
        prints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(prints) == len(variants) + 1

    def test_fuzz_probe_fields_matter(self):
        # a fuzz job's result depends on every probe parameter; specs that
        # differ in any of them must never answer each other from a cache
        base = JobSpec(kind="fuzz", app="appgen:0")
        variants = [
            JobSpec(kind="fuzz", app="appgen:1"),
            JobSpec(kind="fuzz", app="appgen:0", pairs=5),
            JobSpec(kind="fuzz", app="appgen:0", profile="txns=3..5"),
            JobSpec(kind="fuzz", app="appgen:0", level="READ COMMITTED"),
            JobSpec(kind="fuzz", app="appgen:0", max_schedules=32),
        ]
        prints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(prints) == len(variants) + 1


class TestRunJob:
    def test_lint_payload_and_exit_code(self):
        job = run_job(JobSpec(kind="lint", app="banking"))
        assert job.exit_code == 0
        assert job.payload["ok"] is True

    def test_analyze_payload_deterministic(self):
        spec = JobSpec(kind="analyze", app="banking", budget=150)
        first = run_job(spec, no_persist=True)
        second = run_job(spec, no_persist=True)
        assert first.exit_code == 0
        # byte-identity is the service's contract: payloads serialise equally
        assert json.dumps(first.payload) == json.dumps(second.payload)
        assert set(first.extras) >= {"tiers", "cache"}

    def test_invalid_spec_raises_before_running(self):
        with pytest.raises(JobError):
            run_job(JobSpec(kind="analyze", app="missing"))

    def test_fuzz_payload_is_a_corpus_row(self):
        spec = JobSpec(kind="fuzz", app="appgen:0", max_schedules=96)
        first = run_job(spec)
        second = run_job(spec)
        assert first.exit_code == 0
        assert first.payload["verdict"] == "SOUND"
        assert first.payload["seed"] == 0
        assert first.payload["fingerprint"]
        assert json.dumps(first.payload) == json.dumps(second.payload)

    def test_fuzz_unsound_exits_nonzero(self):
        spec = JobSpec(
            kind="fuzz", app="appgen:0",
            level="READ COMMITTED", max_schedules=96,
        )
        job = run_job(spec)
        assert job.exit_code == 1
        assert job.payload["verdict"] == "UNSOUND"
        assert job.payload["violation"]["history"]
        assert job.payload["shrunk"]
