"""The README quickstart path, end to end through the public API."""

import repro
from repro import (
    Application,
    DbState,
    Engine,
    InstanceSpec,
    InterferenceChecker,
    Simulator,
    analyze_application,
    check_semantic_correctness,
    choose_level,
    validate_level,
)


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_level_constants(self):
        assert repro.READ_UNCOMMITTED == "READ UNCOMMITTED"
        assert repro.SNAPSHOT == "SNAPSHOT"
        assert len(repro.ANSI_LADDER) == 4
        assert len(repro.EXTENDED_LADDER) == 5


class TestQuickstartFlow:
    def test_analyze_banking(self):
        from repro.apps import banking

        app = banking.make_application()
        report = analyze_application(app, InterferenceChecker(app.spec, budget=2000))
        levels = report.levels()
        assert set(levels) == {
            "Withdraw_sav",
            "Withdraw_ch",
            "Deposit_sav",
            "Deposit_ch",
        }
        rendered = report.render()
        assert "Withdraw_sav" in rendered

    def test_simulate_and_check(self):
        from repro.apps import banking
        from repro.core.formula import ge
        from repro.core.terms import Field, IntConst

        initial = DbState(arrays={"acct_sav": {0: {"bal": 2}}, "acct_ch": {0: {"bal": 2}}})
        specs = [
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, "READ COMMITTED", "D1"),
            InstanceSpec(banking.DEPOSIT_CH, {"i": 0, "d": 2}, "READ COMMITTED", "D2"),
        ]
        result = Simulator(initial, specs, seed=1).run()
        invariant = ge(
            Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
        )
        report = check_semantic_correctness(result, invariant)
        assert report.correct

    def test_engine_direct_use(self):
        engine = Engine(DbState(items={"x": 0}))
        txn = engine.begin("READ COMMITTED")
        engine.write_item(txn, "x", 41)
        engine.commit(txn)
        txn2 = engine.begin("SNAPSHOT")
        assert engine.read_item(txn2, "x") == 41
