"""Integration tests: Example 1 (the cust array, conventional model)."""

import pytest

from repro.apps import customers
from repro.core.chooser import choose_level
from repro.core.conditions import READ_UNCOMMITTED, check_transaction_at
from repro.core.interference import InterferenceChecker
from repro.core.state import DbState


@pytest.fixture(scope="module")
def app():
    return customers.make_application()


@pytest.fixture(scope="module")
def checker(app):
    return InterferenceChecker(app.spec, budget=4000, seed=5)


class TestStaticAnalysis:
    def test_mailing_list_runs_at_read_uncommitted(self, app, checker):
        """Example 1's claim: the weak-spec scan is RU-safe."""
        choice = choose_level(app, "Mailing_List_c", checker)
        assert choice.level == READ_UNCOMMITTED

    def test_mailing_list_survives_new_order_rollback(self, app, checker):
        result = check_transaction_at(
            app, app.transaction("Mailing_List_c"), READ_UNCOMMITTED, checker
        )
        rollback_obs = [ob for ob in result.obligations if ob.mode == "rollback"]
        assert rollback_obs and all(ob.ok for ob in rollback_obs)

    def test_every_obligation_discharged_by_disjointness(self, app, checker):
        # use_sdg=False so the disjoint obligations reach the checker's own
        # tier instead of being excused by SDG pre-pruning
        local_checker = InterferenceChecker(app.spec, budget=4000, seed=5, use_sdg=False)
        result = check_transaction_at(
            app, app.transaction("Mailing_List_c"), READ_UNCOMMITTED, local_checker
        )
        assert result.ok
        # the weak spec has an empty database footprint: everything is
        # discharged by the cheapest tier
        assert local_checker.stats["disjoint"] > 0
        assert local_checker.stats["bmc"] == 0

    def test_sdg_prunes_what_disjointness_would_discharge(self, app, checker):
        pruning_checker = InterferenceChecker(app.spec, budget=4000, seed=5)
        result = check_transaction_at(
            app, app.transaction("Mailing_List_c"), READ_UNCOMMITTED, pruning_checker
        )
        assert result.ok
        assert pruning_checker.stats["sdg_pruned"] > 0
        assert pruning_checker.stats["disjoint"] == 0


class TestModelSanity:
    def _initial(self):
        return DbState(
            arrays={
                "cust": {
                    0: {"valid": True, "name": "a"},
                    1: {"valid": False, "name": "b"},
                }
            }
        )

    def test_new_order_fills_free_slot(self):
        state = self._initial()
        customers.NEW_ORDER.run(state, {"slot": 1, "name": "b"})
        assert state.read_field("cust", 1, "valid") is True

    def test_new_order_skips_occupied_slot(self):
        state = self._initial()
        customers.NEW_ORDER.run(state, {"slot": 0, "name": "z"})
        assert state.read_field("cust", 0, "name") == "a"  # unchanged

    def test_mailing_list_scans_all_slots(self):
        from repro.core.terms import Local

        state = self._initial()
        env = customers.MAILING_LIST.run(state, {})
        assert env[Local("k")] == customers.SLOTS
