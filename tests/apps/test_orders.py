"""Integration tests: the Section 6 ordering application (Figures 2-5).

Pins the paper's per-transaction level table, statically and dynamically.
The full Theorem-1 sweep for New_Order is exercised by the benchmarks; the
tests here discharge the specific obligations the paper's argument hinges
on, which keeps the suite fast.
"""

import pytest

from repro.apps import orders
from repro.core.conditions import (
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    check_transaction_at,
    fcw_protected_reads,
    read_post_assertions,
)
from repro.core.interference import InterferenceChecker
from repro.core.state import DbState
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec, Simulator

BUDGET = 3000


@pytest.fixture(scope="module")
def app():
    return orders.make_application("no_gap")


@pytest.fixture(scope="module")
def checker(app):
    return InterferenceChecker(app.spec, budget=BUDGET, seed=3)


class TestMailingList:
    def test_runs_at_read_uncommitted(self, app, checker):
        result = check_transaction_at(
            app, app.transaction("Mailing_List"), READ_UNCOMMITTED, checker
        )
        assert result.ok

    def test_strengthened_fails_read_uncommitted(self):
        strengthened_app = orders.make_application("no_gap", strengthened_mailing=True)
        strengthened_checker = InterferenceChecker(strengthened_app.spec, budget=BUDGET, seed=3)
        target = strengthened_app.transaction("Mailing_List_strengthened")
        result = check_transaction_at(
            strengthened_app, target, READ_UNCOMMITTED, strengthened_checker
        )
        assert not result.ok
        # the paper's culprit: the New_Order rollback deleting the CUST row
        assert any(ob.mode == "rollback" and ob.source == "New_Order" for ob in result.failures)
        # and READ COMMITTED repairs it
        repaired = check_transaction_at(
            strengthened_app, target, READ_COMMITTED, strengthened_checker
        )
        assert repaired.ok


class TestNewOrder:
    def test_rollback_invalidates_maxdate_bound(self, app, checker):
        """The paper's READ UNCOMMITTED failure, checked directly."""
        from repro.core.formula import le
        from repro.core.terms import Item, Local

        target = app.transaction("New_Order")
        source = app.transaction("New_Order").rename_params("!2")
        bound_assertions = [
            assertion
            for _stmt, assertion in read_post_assertions(target)
            if set(assertion.formula.atoms()) >= {Local("maxdate"), Item("maximum_date")}
        ]
        assert bound_assertions, "the maxdate <= maximum_date conjunct must exist"
        verdict = checker.check_rollback(
            target, bound_assertions[0], source,
            assumption=app.assumption("New_Order", "New_Order"),
        )
        assert verdict.interferes
        assert verdict.witness is not None

    def test_passes_read_committed(self, app, checker):
        result = check_transaction_at(app, app.transaction("New_Order"), READ_COMMITTED, checker)
        assert result.ok


class TestNewOrderOneOrderPerDay:
    @pytest.fixture(scope="class")
    def strict_app(self):
        return orders.make_application("one_order")

    @pytest.fixture(scope="class")
    def strict_checker(self, strict_app):
        return InterferenceChecker(strict_app.spec, budget=BUDGET, seed=3)

    def test_fails_plain_read_committed(self, strict_app, strict_checker):
        result = check_transaction_at(
            strict_app, strict_app.transaction("New_Order"), READ_COMMITTED, strict_checker
        )
        assert not result.ok

    def test_passes_read_committed_fcw(self, strict_app, strict_checker):
        result = check_transaction_at(
            strict_app, strict_app.transaction("New_Order"), READ_COMMITTED_FCW, strict_checker
        )
        assert result.ok

    def test_maxdate_read_is_fcw_protected(self, strict_app):
        target = strict_app.transaction("New_Order")
        protected = fcw_protected_reads(target)
        reads = target.read_statements()
        # the first read (maximum_date) is followed by the bump
        assert id(reads[0]) in protected


class TestDelivery:
    def test_fails_read_committed(self, app, checker):
        result = check_transaction_at(app, app.transaction("Delivery"), READ_COMMITTED, checker)
        assert not result.ok
        # another Delivery is among the culprits (the paper's argument)
        assert any(ob.source == "Delivery" for ob in result.failures)

    def test_passes_repeatable_read(self, app, checker):
        result = check_transaction_at(app, app.transaction("Delivery"), REPEATABLE_READ, checker)
        assert result.ok
        # Theorem 6 condition 2 excused the delivery-vs-delivery update
        assert any(
            ob.excused is not None and "tuple read locks" in ob.excused
            for ob in result.obligations
        )


class TestAudit:
    def test_fails_repeatable_read_by_phantom(self, app, checker):
        result = check_transaction_at(app, app.transaction("Audit"), REPEATABLE_READ, checker)
        assert not result.ok
        # the failing statement is New_Order's INSERT (a phantom)
        from repro.core.program import Insert

        assert any(isinstance(ob.statement, Insert) for ob in result.failures)

    def test_passes_serializable(self, app, checker):
        result = check_transaction_at(app, app.transaction("Audit"), SERIALIZABLE, checker)
        assert result.ok and result.trivially_correct


class TestDynamicGapAnomaly:
    """The New_Order rollback scenario, executed on the engine."""

    def _initial(self):
        return DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
            },
        )

    def _specs(self, level):
        new_order = orders.make_new_order("no_gap")
        return [
            InstanceSpec(
                new_order, {"customer": "b", "address": "x", "order_info": 2}, level, "T1"
            ),
            InstanceSpec(
                new_order,
                {"customer": "c", "address": "x", "order_info": 3},
                "READ COMMITTED",
                "T2",
                abort_after=5,
            ),
        ]

    def test_gap_created_at_read_uncommitted(self, app):
        # T2 bumps MAXDATE and inserts, T1 dirty-reads the bumped value,
        # T2 rolls back, T1 inserts at a date leaving a gap
        sim = Simulator(
            self._initial(),
            self._specs("READ UNCOMMITTED"),
            script=[1, 1, 0, 1, 1, 1] + [0] * 8,
        )
        result = sim.run()
        t1 = result.outcome_by_name("T1")
        assert t1.status == "committed"
        dates = sorted(row["deliv_date"] for row in result.final.rows("ORDERS"))
        assert dates == [1, 3]  # nothing delivers on day 2: the gap
        report = check_semantic_correctness(result, orders.invariant("no_gap"))
        assert not report.correct

    def test_no_gap_at_read_committed(self, app):
        sim = Simulator(
            self._initial(),
            self._specs("READ COMMITTED"),
            script=[1, 1, 0, 1, 1, 1] + [0] * 8,
        )
        result = sim.run()
        report = check_semantic_correctness(result, orders.invariant("no_gap"))
        assert report.consistent
        dates = sorted(row["deliv_date"] for row in result.final.rows("ORDERS"))
        assert dates == [1, 2]


class TestModelSanity:
    def test_new_order_extends_dates_by_one(self):
        state = DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
            },
        )
        orders.make_new_order("no_gap").run(
            state, {"customer": "b", "address": "y", "order_info": 2}
        )
        assert state.read_item("maximum_date") == 2
        assert orders.invariant("no_gap").evaluate(state, {})

    def test_new_order_increments_existing_customer(self):
        state = DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
            },
        )
        orders.make_new_order("no_gap").run(
            state, {"customer": "a", "address": "x", "order_info": 2}
        )
        row = next(iter(state.rows("CUST")))
        assert row["num_orders"] == 2

    def test_delivery_marks_done(self):
        state = DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
            },
        )
        orders.make_delivery().run(state, {"today": 1})
        assert all(row["done"] for row in state.rows("ORDERS"))

    def test_audit_counts_match_on_consistent_state(self):
        state = DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
            },
        )
        env = orders.make_audit().run(state, {"customer": "a"})
        from repro.core.terms import Local

        assert env[Local("count1")] == env[Local("count2")] == 1

    def test_invariant_rejects_gap(self):
        state = DbState(
            items={"maximum_date": 3},
            tables={
                "ORDERS": [
                    {"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False},
                    {"order_info": 2, "cust_name": "a", "deliv_date": 3, "done": False},
                ],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 2}],
            },
        )
        assert not orders.invariant("no_gap").evaluate(state, {})

    def test_one_order_invariant_rejects_duplicates(self):
        state = DbState(
            items={"maximum_date": 1},
            tables={
                "ORDERS": [
                    {"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False},
                    {"order_info": 2, "cust_name": "a", "deliv_date": 1, "done": False},
                ],
                "CUST": [{"cust_name": "a", "address": "x", "num_orders": 2}],
            },
        )
        assert not orders.invariant("one_order").evaluate(state, {})
