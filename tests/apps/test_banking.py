"""Integration tests: the Figure 1 / Example 3 banking application.

These tests pin the paper's Example 3 claims end-to-end, both statically
(Theorem 5 analysis) and dynamically (simulated schedules).
"""

import pytest

from repro.apps import banking
from repro.core.conditions import SNAPSHOT, check_transaction_at
from repro.core.formula import conj, ge
from repro.core.interference import InterferenceChecker
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.semantic import check_semantic_correctness, validate_level
from repro.sched.simulator import InstanceSpec, Simulator


@pytest.fixture(scope="module")
def app():
    return banking.make_application()


@pytest.fixture(scope="module")
def checker(app):
    return InterferenceChecker(app.spec, budget=4000, seed=1)


@pytest.fixture(scope="module")
def snapshot_results(app, checker):
    return {
        name: check_transaction_at(app, app.transaction(name), SNAPSHOT, checker)
        for name in app.transaction_names()
    }


def invariant(accounts=1):
    return conj(
        *[
            ge(
                Field("acct_sav", IntConst(i), "bal") + Field("acct_ch", IntConst(i), "bal"),
                0,
            )
            for i in range(accounts)
        ]
    )


class TestStaticAnalysis:
    def test_withdrawals_fail_snapshot_against_each_other(self, snapshot_results):
        """Example 3: Withdraw_sav / Withdraw_ch exhibit write skew."""
        sav = snapshot_results["Withdraw_sav"]
        assert not sav.ok
        failing_sources = {ob.source for ob in sav.failures}
        assert failing_sources == {"Withdraw_ch"}

    def test_withdraw_safe_against_own_type(self, snapshot_results):
        """Example 3: two Withdraw_sav instances are saved by FCW."""
        sav = snapshot_results["Withdraw_sav"]
        own = [ob for ob in sav.obligations if ob.source == "Withdraw_sav"]
        assert own and all(ob.ok for ob in own)

    def test_deposits_pass_snapshot(self, snapshot_results):
        """Example 3: deposits never interfere with the withdrawals."""
        assert snapshot_results["Deposit_sav"].ok
        assert snapshot_results["Deposit_ch"].ok

    def test_withdraw_vs_deposit_obligations_discharged(self, snapshot_results):
        sav = snapshot_results["Withdraw_sav"]
        deposit_obs = [ob for ob in sav.obligations if ob.source.startswith("Deposit")]
        assert deposit_obs and all(ob.ok for ob in deposit_obs)

    def test_symmetric_verdict_for_withdraw_ch(self, snapshot_results):
        ch = snapshot_results["Withdraw_ch"]
        assert not ch.ok
        assert {ob.source for ob in ch.failures} == {"Withdraw_sav"}


class TestDynamicWriteSkew:
    def _specs(self, level):
        return [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, level, "T2"),
        ]

    def _initial(self):
        return DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})

    def test_write_skew_schedule_at_snapshot(self):
        """The scripted write-skew interleaving breaks the invariant."""
        sim = Simulator(self._initial(), self._specs("SNAPSHOT"), script=[0, 0, 1, 1] + [0, 1] * 4)
        result = sim.run()
        assert len(result.committed) == 2
        total = result.final.read_field("acct_sav", 0, "bal") + result.final.read_field(
            "acct_ch", 0, "bal"
        )
        assert total < 0
        report = check_semantic_correctness(result, invariant())
        assert not report.correct

    def test_no_violations_at_serializable(self):
        tally = validate_level(
            self._initial(), self._specs("SERIALIZABLE"), invariant(), rounds=40, seed=5
        )
        assert tally["violations"] == 0

    def test_violations_frequent_at_snapshot(self):
        tally = validate_level(
            self._initial(), self._specs("SNAPSHOT"), invariant(), rounds=40, seed=5
        )
        assert tally["violations"] > 10

    def test_same_account_withdrawals_safe_at_snapshot(self):
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        tally = validate_level(self._initial(), specs, invariant(), rounds=40, seed=5)
        assert tally["violations"] == 0

    def test_deposits_with_withdrawal_safe_at_snapshot(self):
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.DEPOSIT_CH, {"i": 0, "d": 2}, "SNAPSHOT", "T2"),
        ]
        tally = validate_level(self._initial(), specs, invariant(), rounds=40, seed=5)
        assert tally["violations"] == 0


class TestModelSanity:
    def test_withdraw_guard_respected(self):
        state = DbState(arrays={"acct_sav": {0: {"bal": 1}}, "acct_ch": {0: {"bal": 0}}})
        banking.WITHDRAW_SAV.run(state, {"i": 0, "w": 5})
        assert state.read_field("acct_sav", 0, "bal") == 1  # insufficient funds

    def test_withdraw_applies_when_covered(self):
        state = DbState(arrays={"acct_sav": {0: {"bal": 3}}, "acct_ch": {0: {"bal": 0}}})
        banking.WITHDRAW_SAV.run(state, {"i": 0, "w": 2})
        assert state.read_field("acct_sav", 0, "bal") == 1

    def test_combined_balance_guard(self):
        """The withdrawal may overdraw one account if the sum covers it."""
        state = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 5}}})
        banking.WITHDRAW_SAV.run(state, {"i": 0, "w": 3})
        assert state.read_field("acct_sav", 0, "bal") == -3

    def test_deposit_adds(self):
        state = DbState(arrays={"acct_sav": {0: {"bal": 1}}, "acct_ch": {0: {"bal": 0}}})
        banking.DEPOSIT_SAV.run(state, {"i": 0, "d": 4})
        assert state.read_field("acct_sav", 0, "bal") == 5

    def test_domain_spec_filters_inconsistent_states(self):
        spec = banking.domain_spec(accounts=1, max_balance=1)
        import random

        states = list(spec.iter_states(10_000, random.Random(0)))
        assert states
        for state in states:
            assert (
                state.read_field("acct_sav", 0, "bal") + state.read_field("acct_ch", 0, "bal")
                >= 0
            )

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            banking.make_withdraw("checking")
        with pytest.raises(ValueError):
            banking.make_deposit("savings")
