"""Integration tests: TPC-C-lite (the paper's Section 7 future work)."""

import pytest

from repro.apps import tpcc
from repro.core.state import DbState
from repro.core.terms import Local
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec, Simulator


class TestModelSanity:
    def test_new_order_bumps_counter_and_inserts(self):
        state = tpcc.initial_state()
        tpcc.NEW_ORDER.run(state, {"d": 0, "c": 0, "item": 0, "qty": 2})
        assert state.read_field("district", 0, "next_o_id") == 2
        assert state.table_size("ORDERS") == 1
        assert state.read_field("stock", 0, "quantity") == 18

    def test_new_order_restocks_when_short(self):
        state = tpcc.initial_state()
        state.write_field("stock", 0, "quantity", 1)
        tpcc.NEW_ORDER.run(state, {"d": 0, "c": 0, "item": 0, "qty": 3})
        assert state.read_field("stock", 0, "quantity") == 1 - 3 + tpcc.RESTOCK

    def test_payment_moves_money(self):
        state = tpcc.initial_state()
        tpcc.PAYMENT.run(state, {"c": 0, "d": 0, "amount": 4})
        assert state.read_field("customer", 0, "balance") == 6
        assert state.read_field("warehouse", 0, "ytd") == 4
        assert state.read_field("district", 0, "ytd") == 4

    def test_delivery_clears_district(self):
        state = tpcc.initial_state()
        tpcc.NEW_ORDER.run(state, {"d": 1, "c": 0, "item": 0, "qty": 1})
        tpcc.DELIVERY.run(state, {"d": 1})
        assert all(row["delivered"] for row in state.rows("ORDERS"))

    def test_order_status_reads_only(self):
        state = tpcc.initial_state()
        before = state.copy()
        tpcc.ORDER_STATUS.run(state, {"c": 0})
        assert state.same_as(before)

    def test_mix_weights_sum_to_one(self):
        assert abs(sum(tpcc.STANDARD_MIX.values()) - 1.0) < 1e-9


class TestMixedLevelExecution:
    def _specs(self, assignment):
        return [
            InstanceSpec(tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1},
                         assignment["TPCC_NewOrder"], "NO1"),
            InstanceSpec(tpcc.NEW_ORDER, {"d": 1, "c": 1, "item": 1, "qty": 1},
                         assignment["TPCC_NewOrder"], "NO2"),
            InstanceSpec(tpcc.PAYMENT, {"c": 0, "d": 0, "amount": 2},
                         assignment["TPCC_Payment"], "P1"),
            InstanceSpec(tpcc.DELIVERY, {"d": 0}, assignment["TPCC_Delivery"], "D1"),
            InstanceSpec(tpcc.ORDER_STATUS, {"c": 0}, assignment["TPCC_OrderStatus"], "OS1"),
        ]

    MIXED = {
        "TPCC_NewOrder": "READ COMMITTED FCW",
        "TPCC_Payment": "READ COMMITTED FCW",
        "TPCC_Delivery": "REPEATABLE READ",
        "TPCC_OrderStatus": "READ COMMITTED",
        "TPCC_StockLevel": "READ UNCOMMITTED",
    }

    def test_mixed_assignment_commits_everything(self):
        for seed in range(5):
            sim = Simulator(tpcc.initial_state(), self._specs(self.MIXED), seed=seed, retry=True)
            result = sim.run()
            assert len(result.committed) == 5, f"seed {seed}"

    def test_counters_consistent_after_mixed_run(self):
        for seed in range(5):
            sim = Simulator(tpcc.initial_state(), self._specs(self.MIXED), seed=seed, retry=True)
            result = sim.run()
            for district in range(tpcc.DISTRICTS):
                bound = result.final.read_field("district", district, "next_o_id")
                for row in result.final.rows("ORDERS"):
                    if row["d_id"] == district:
                        assert row["o_id"] < bound

    def test_fcw_prevents_counter_lost_update(self):
        """Two NewOrders on the same district never produce duplicate o_ids."""
        specs = [
            InstanceSpec(tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1},
                         "READ COMMITTED FCW", "A"),
            InstanceSpec(tpcc.NEW_ORDER, {"d": 0, "c": 1, "item": 1, "qty": 1},
                         "READ COMMITTED FCW", "B"),
        ]
        for seed in range(10):
            sim = Simulator(tpcc.initial_state(), specs, seed=seed, retry=True)
            result = sim.run()
            oids = [row["o_id"] for row in result.final.rows("ORDERS")]
            assert len(oids) == len(set(oids)), f"duplicate order ids at seed {seed}"

    def test_plain_rc_admits_duplicate_order_ids(self):
        """Without FCW the next_o_id read-modify-write races (lost update)."""
        specs = [
            InstanceSpec(tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1},
                         "READ COMMITTED", "A"),
            InstanceSpec(tpcc.NEW_ORDER, {"d": 0, "c": 1, "item": 1, "qty": 1},
                         "READ COMMITTED", "B"),
        ]
        # both read next_o_id before either writes
        sim = Simulator(tpcc.initial_state(), specs, script=[0, 1, 0, 1, 0, 1] + [0] * 6 + [1] * 8)
        result = sim.run()
        oids = [row["o_id"] for row in result.final.rows("ORDERS")]
        assert len(oids) == 2 and len(set(oids)) == 1
