"""Integration tests: Example 2 (emp array, Hours / Print_Record)."""

import pytest

from repro.apps import employees
from repro.core.chooser import choose_level
from repro.core.conditions import (
    READ_COMMITTED,
    READ_UNCOMMITTED,
    check_transaction_at,
)
from repro.core.interference import InterferenceChecker
from repro.core.state import DbState
from repro.sched.simulator import InstanceSpec, Simulator


@pytest.fixture(scope="module")
def app():
    return employees.make_application()


@pytest.fixture(scope="module")
def checker(app):
    return InterferenceChecker(app.spec, budget=6000, seed=5)


class TestStaticAnalysis:
    def test_print_record_fails_read_uncommitted(self, app, checker):
        """Reason: Hours' individual writes break I_sal mid-flight."""
        result = check_transaction_at(
            app, app.transaction("Print_Record"), READ_UNCOMMITTED, checker
        )
        assert not result.ok
        assert any(ob.source == "Hours" for ob in result.failures)

    def test_print_record_passes_read_committed(self, app, checker):
        """Theorem 2: Hours is one atomic unit at READ COMMITTED."""
        result = check_transaction_at(
            app, app.transaction("Print_Record"), READ_COMMITTED, checker
        )
        assert result.ok

    def test_print_record_needs_no_repeatable_read(self, app, checker):
        """The paper's point: RR's long read locks are unnecessary."""
        choice = choose_level(app, "Print_Record", checker)
        assert choice.level == READ_COMMITTED


class TestDynamicSnapshotConsistency:
    def _initial(self):
        return DbState(arrays={"emp": {0: {"rate": 2, "num_hrs": 3, "sal": 6}}})

    def test_inconsistent_snapshot_at_read_uncommitted(self):
        """Reading between Hours' two writes yields rate*hrs != sal."""
        from repro.core.terms import Local

        specs = [
            InstanceSpec(employees.PRINT_RECORD, {"i": 0}, "READ UNCOMMITTED", "P"),
            InstanceSpec(employees.HOURS, {"i": 0, "h": 2}, "READ COMMITTED", "H"),
        ]
        # H reads record, H writes num_hrs, P reads the half-updated record,
        # H writes sal, both commit
        sim = Simulator(self._initial(), specs, script=[1, 1, 0, 0, 1, 1])
        result = sim.run()
        env = result.outcome_by_name("P").env
        rate, hrs, sal = env[Local("R")], env[Local("H")], env[Local("S")]
        assert rate * hrs != sal  # the torn snapshot

    def test_consistent_snapshot_at_read_committed(self):
        from repro.core.terms import Local

        specs = [
            InstanceSpec(employees.PRINT_RECORD, {"i": 0}, "READ COMMITTED", "P"),
            InstanceSpec(employees.HOURS, {"i": 0, "h": 2}, "READ COMMITTED", "H"),
        ]
        sim = Simulator(self._initial(), specs, script=[1, 1, 0, 0, 1, 1] + [0, 1] * 4)
        result = sim.run()
        env = result.outcome_by_name("P").env
        rate, hrs, sal = env[Local("R")], env[Local("H")], env[Local("S")]
        assert rate * hrs == sal  # blocked until Hours finished


class TestModelSanity:
    def test_hours_preserves_i_sal(self):
        state = DbState(arrays={"emp": {0: {"rate": 2, "num_hrs": 3, "sal": 6}}})
        employees.HOURS.run(state, {"i": 0, "h": 2})
        assert state.read_field("emp", 0, "num_hrs") == 5
        assert state.read_field("emp", 0, "sal") == 10

    def test_domain_spec_enforces_i_sal(self):
        import random

        spec = employees.domain_spec(employees=1)
        for state in spec.iter_states(10_000, random.Random(0)):
            rate = state.read_field("emp", 0, "rate")
            hrs = state.read_field("emp", 0, "num_hrs")
            assert rate * hrs == state.read_field("emp", 0, "sal")
