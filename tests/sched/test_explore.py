"""Tests for exhaustive schedule exploration (source-set DPOR and lite)."""

from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.sched.explore import Explorer, explore, state_fingerprint
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer(item="x"):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
    )


def specs_for(items, level="READ COMMITTED"):
    return [
        InstanceSpec(incrementer(item), {}, level, f"T{i}")
        for i, item in enumerate(items)
    ]


def final_states(result):
    """The set of distinct outcomes reached — items plus commit census."""
    outcomes = set()
    for schedule in result.results:
        items = tuple(sorted(schedule.final.items.items()))
        committed = tuple(sorted(o.name for o in schedule.committed))
        outcomes.add((items, committed))
    return outcomes


class TestPruning:
    def test_pruned_visits_fewer_schedules_than_unpruned_dfs(self):
        """Acceptance: DPOR-lite pruning measurably shrinks the DFS."""
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"])
        full = explore(initial.copy(), specs, pruning=False)
        pruned = explore(initial.copy(), specs, pruning=True)
        assert pruned.runs < full.runs
        assert pruned.schedules < full.schedules
        # pruning must not lose outcomes: every reachable final state of the
        # full tree is reached by the pruned one as well
        assert final_states(pruned) == final_states(full)

    def test_disjoint_instances_prune_heavily(self):
        initial = DbState(items={"x": 0, "y": 0})
        specs = specs_for(["x", "y"], level="SERIALIZABLE")
        full = explore(initial.copy(), specs, pruning=False)
        pruned = explore(initial.copy(), specs, pruning=True, dpor="lite")
        assert pruned.runs < full.runs
        assert pruned.pruned_sleep + pruned.pruned_state > 0
        assert final_states(pruned) == final_states(full)

    def test_disjoint_instances_race_free_under_dpor(self):
        """Two instances on disjoint items have no races: one schedule."""
        initial = DbState(items={"x": 0, "y": 0})
        specs = specs_for(["x", "y"], level="SERIALIZABLE")
        full = explore(initial.copy(), specs, pruning=False)
        optimal = explore(initial.copy(), specs, dpor="optimal")
        assert optimal.runs == 1
        assert optimal.reversals == 0
        assert final_states(optimal) == final_states(full)

    def test_optimal_never_explores_more_runs_than_lite(self):
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"])
        lite = explore(initial.copy(), specs, dpor="lite")
        optimal = explore(initial.copy(), specs, dpor="optimal")
        assert optimal.runs <= lite.runs
        assert final_states(optimal) == final_states(lite)

    def test_lost_update_is_reached_at_read_committed(self):
        initial = DbState(items={"x": 0})
        result = explore(initial, specs_for(["x", "x"]), pruning=True)
        finals = {items for items, _ in final_states(result)}
        assert (("x", 1),) in finals  # the lost update
        assert (("x", 2),) in finals  # the serial outcome

    def test_serializable_commits_never_lose_an_update(self):
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"], level="SERIALIZABLE")
        result = explore(initial, specs, pruning=True, max_schedules=50)
        # an instance may still die to deadlock restarts — but whenever both
        # commit, the outcome must be the serial one
        both = {
            items
            for items, committed in final_states(result)
            if committed == ("T0", "T1")
        }
        assert both == {(("x", 2),)}


class TestBounds:
    def test_max_schedules_truncates(self):
        initial = DbState(items={"x": 0})
        result = explore(
            initial, specs_for(["x", "x"]), pruning=False, max_schedules=3
        )
        assert result.truncated
        assert result.runs <= 3

    def test_max_depth_counts_truncated_branches(self):
        initial = DbState(items={"x": 0})
        result = explore(initial, specs_for(["x", "x"]), pruning=False, max_depth=2)
        assert result.truncated_depth > 0
        assert result.schedules == 0

    def test_to_dict_shape(self):
        initial = DbState(items={"x": 0})
        payload = explore(initial, specs_for(["x", "x"])).to_dict()
        assert set(payload) == {
            "mode",
            "runs",
            "schedules",
            "pruned_sleep",
            "pruned_state",
            "races",
            "reversals",
            "truncated_depth",
            "truncated",
        }

    def test_mode_reflects_pruning_configuration(self):
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"])
        assert explore(initial.copy(), specs).to_dict()["mode"] == "optimal"
        assert explore(initial.copy(), specs, dpor="lite").to_dict()["mode"] == "lite"
        assert (
            explore(initial.copy(), specs, pruning=False).to_dict()["mode"] == "none"
        )

    def test_max_depth_zero_terminates_with_no_schedules(self):
        """Every run stops before its first decision; nothing completes."""
        initial = DbState(items={"x": 0})
        result = explore(
            initial, specs_for(["x", "x"]), pruning=False, max_depth=0
        )
        assert result.schedules == 0
        assert result.truncated_depth == result.runs > 0
        assert result.pruned_sleep == 0 and result.pruned_state == 0

    def test_max_schedules_one_runs_exactly_once(self):
        initial = DbState(items={"x": 0})
        result = explore(
            initial, specs_for(["x", "x"]), pruning=False, max_schedules=1
        )
        assert result.runs == 1
        assert result.truncated
        assert result.schedules <= 1

    def test_single_instance_yields_exactly_one_schedule(self):
        """One transaction has one interleaving — no pruning, no miscounts."""
        initial = DbState(items={"x": 0})
        for pruning in (False, True):
            result = explore(initial.copy(), specs_for(["x"]), pruning=pruning)
            assert result.schedules == 1
            assert result.runs == 1
            assert result.pruned_sleep == 0 and result.pruned_state == 0
            assert not result.truncated and result.truncated_depth == 0
            (finals,) = final_states(result)
            assert finals == ((("x", 1),), ("T0",))


class TestParallelFanOut:
    def test_workers_agree_with_sequential(self):
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"])
        sequential = explore(initial.copy(), specs, dpor="lite", workers=1)
        fanned = explore(initial.copy(), specs, dpor="lite", workers=4)
        assert final_states(fanned) == final_states(sequential)
        assert fanned.schedules == sequential.schedules

    def test_optimal_workers_reach_the_same_states(self):
        """Frontier stealing may race sibling launches, so worker runs can
        exceed the sequential count — but never lose an outcome."""
        initial = DbState(items={"x": 0})
        specs = specs_for(["x", "x"])
        sequential = explore(initial.copy(), specs, dpor="optimal", workers=1)
        fanned = explore(initial.copy(), specs, dpor="optimal", workers=4)
        assert final_states(fanned) == final_states(sequential)
        assert fanned.schedules >= sequential.schedules


class TestObservers:
    def test_observer_factory_runs_per_schedule(self):
        events = []

        class Recorder:
            def __init__(self):
                self.seen = []

            def __call__(self, simulator, runtime):
                self.seen.append(runtime.spec.name)

        def factory():
            recorder = Recorder()
            events.append(recorder)
            return recorder

        initial = DbState(items={"x": 0})
        result = explore(
            initial, specs_for(["x", "x"]), pruning=True, observer_factory=factory
        )
        assert len(events) == result.runs
        # completed schedules expose their own observers for inspection
        for schedule in result.results:
            assert len(schedule.observers) == 1

    def test_on_schedule_callback_fires_per_completed_schedule(self):
        count = [0]
        initial = DbState(items={"x": 0})
        result = explore(
            initial,
            specs_for(["x", "x"]),
            pruning=True,
            on_schedule=lambda schedule: count.__setitem__(0, count[0] + 1),
        )
        assert count[0] == result.schedules


class TestFingerprint:
    def test_identical_states_share_a_fingerprint(self):
        specs = specs_for(["x", "x"])
        sims = []
        for _ in range(2):
            sim = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0])
            sim.run()
            sims.append(sim)
        assert state_fingerprint(sims[0]) == state_fingerprint(sims[1])

    def test_different_schedules_differ(self):
        specs = specs_for(["x", "x"])
        a = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0])
        a.run()
        b = Simulator(DbState(items={"x": 0}), specs, script=[1, 1, 1])
        b.run()
        assert state_fingerprint(a) != state_fingerprint(b)
