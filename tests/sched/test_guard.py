"""Tests for the assertional concurrency control (AssertionGuard)."""

import pytest

from repro.apps import banking
from repro.core.formula import eq, ge
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local
from repro.sched.monitor import AssertionGuard, GuardVeto
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec, Simulator

INVARIANT = ge(
    Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
)


def skew_specs(level="SNAPSHOT"):
    return [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "T1"),
        InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, level, "T2"),
    ]


def skew_initial():
    return DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})


class TestGuardOnWriteSkew:
    def test_guard_eliminates_all_violations(self):
        """The unsafe SNAPSHOT pair is semantically correct under the guard."""
        for seed in range(30):
            guard = AssertionGuard()
            sim = Simulator(
                skew_initial(), skew_specs(), seed=seed, retry=True, observers=[guard]
            )
            result = sim.run()
            report = check_semantic_correctness(result, INVARIANT)
            assert report.correct, f"seed {seed}: {report.summary()}"

    def test_guard_vetoes_recorded(self):
        vetoes = 0
        for seed in range(20):
            guard = AssertionGuard()
            sim = Simulator(
                skew_initial(), skew_specs(), seed=seed, retry=True, observers=[guard]
            )
            result = sim.run()
            vetoes += result.stats.get("guard_vetoes", 0)
        assert vetoes > 0  # the guard actually did something

    def test_unguarded_baseline_violates(self):
        violations = 0
        for seed in range(20):
            sim = Simulator(skew_initial(), skew_specs(), seed=seed, retry=True)
            result = sim.run()
            if not check_semantic_correctness(result, INVARIANT).correct:
                violations += 1
        assert violations > 0

    def test_transactions_still_commit_under_guard(self):
        guard = AssertionGuard()
        sim = Simulator(skew_initial(), skew_specs(), seed=3, retry=True, observers=[guard])
        result = sim.run()
        assert len(result.committed) == 2


class TestGuardMechanics:
    def test_veto_aborts_only_the_actor(self):
        watcher = TransactionType(
            name="Watcher",
            body=(
                Read(Local("v"), Item("x"), post=eq(Local("v"), Item("x"))),
                Read(Local("w"), Item("y")),
            ),
        )
        setter = TransactionType(name="Setter", body=(Write(Item("x"), IntConst(9)),))
        guard = AssertionGuard()
        specs = [
            InstanceSpec(watcher, {}, "READ UNCOMMITTED", "W"),
            InstanceSpec(setter, {}, "READ COMMITTED", "S"),
        ]
        sim = Simulator(
            DbState(items={"x": 1, "y": 0}), specs, script=[0, 1, 0, 0, 1, 1],
            retry=True, observers=[guard],
        )
        result = sim.run()
        # the setter was vetoed mid-watcher, retried, and both committed
        assert result.stats.get("guard_vetoes", 0) >= 1
        assert {o.name for o in result.committed} == {"W", "S"}
        # the watcher's postcondition survived to its commit
        assert result.outcome_by_name("W").env[Local("v")] == 1

    def test_guard_veto_carries_event(self):
        from repro.sched.monitor import InvalidationEvent

        event = InvalidationEvent(1, "A", "Q_i", "B")
        veto = GuardVeto(event)
        assert veto.event is event
        assert "invalidated" in str(veto)

    def test_guard_without_conflicts_is_silent(self):
        guard = AssertionGuard()
        specs = [
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, "SNAPSHOT", "D1"),
            InstanceSpec(banking.DEPOSIT_CH, {"i": 0, "d": 2}, "SNAPSHOT", "D2"),
        ]
        sim = Simulator(skew_initial(), specs, seed=5, retry=True, observers=[guard])
        result = sim.run()
        assert result.stats.get("guard_vetoes", 0) == 0
        assert len(result.committed) == 2
