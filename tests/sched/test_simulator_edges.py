"""Simulator edge cases: stalls, script errors, step caps, observers."""

import pytest

from repro.core.formula import ge
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local, LogicalVar
from repro.errors import ScheduleError
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer():
    return TransactionType(
        name="Inc",
        body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1)),
    )


class TestScriptHandling:
    def test_out_of_range_script_index_rejected(self):
        sim = Simulator(DbState(items={"x": 0}), [InstanceSpec(incrementer(), {})], script=[5])
        with pytest.raises(ScheduleError):
            sim.run()

    def test_script_entries_for_finished_instances_skipped(self):
        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        sim = Simulator(DbState(items={"x": 0}), specs, script=[0] * 20)
        result = sim.run()
        assert result.committed and result.final.read_item("x") == 1

    def test_script_exhaustion_falls_back_to_random(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(DbState(items={"x": 0}), specs, script=[0])
        result = sim.run()
        assert len(result.committed) == 2


class TestCapsAndStalls:
    def test_max_steps_bounds_execution(self):
        blocked_writer = TransactionType(
            name="W", body=(Write(Item("x"), Local("v") * 0),)
        )
        # 'v' is unbound: executing raises, aborting the instance — but the
        # step budget must bound even pathological schedules
        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        sim = Simulator(DbState(items={"x": 0}), specs, max_steps=1)
        result = sim.run()
        assert result.stats["steps"] == 1
        assert result.outcomes[0].status in ("incomplete", "committed")

    def test_mutual_block_resolves_via_deadlock_abort(self):
        t_xy = TransactionType(
            name="XY",
            body=(
                Read(Local("a"), Item("x")), Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("y")), Write(Item("y"), Local("b") + 1),
            ),
        )
        t_yx = TransactionType(
            name="YX",
            body=(
                Read(Local("a"), Item("y")), Write(Item("y"), Local("a") + 1),
                Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1),
            ),
        )
        specs = [
            InstanceSpec(t_xy, {}, "READ COMMITTED", "A"),
            InstanceSpec(t_yx, {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(
            DbState(items={"x": 0, "y": 0}), specs, seed=1, retry=False, max_steps=500
        )
        result = sim.run()
        # no retry: the victim stays aborted, the survivor commits
        assert len(result.committed) == 1
        assert len(result.aborted) == 1
        assert result.stats["deadlocks"] == 1


class TestWouldBlockRetry:
    def test_blocked_operation_is_retried_until_the_lock_frees(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        # A takes the long write lock on x; B's read blocks twice before A
        # commits, then the very same operation succeeds on retry
        sim = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 1, 1, 0, 1, 1, 1])
        result = sim.run()
        assert result.stats["waits"] == 2
        assert len(result.committed) == 2
        # B's read landed after A's commit, so no update is lost
        assert result.final.read_item("x") == 2

    def test_blocked_instance_does_not_advance_its_program(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(
            DbState(items={"x": 0}), specs, script=[0, 0, 1], seed=3, collect_trace=True
        )
        sim.run()
        blocked = [event for event in sim.trace if event.kind == "blocked"]
        assert blocked and blocked[0].index == 1
        assert blocked[0].blockers  # the blocking txn is named

    def test_ghost_rebinds_to_observed_value_after_blocking(self):
        """The logical-variable snapshot follows the observed read, not the
        stale committed state the transaction happened to begin under."""
        reader = TransactionType(
            name="R",
            body=(Read(Local("v"), Item("x")),),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(reader, {}, "READ COMMITTED", "B"),
        ]
        envs = {}

        def capture(sim, rt):
            if rt.status == "committed":
                envs[rt.spec.name] = dict(rt.env)

        sim = Simulator(
            DbState(items={"x": 0}),
            specs,
            script=[0, 0, 1, 0, 1, 1],
            observers=[capture],
        )
        result = sim.run()
        assert len(result.committed) == 2
        # B began while x was still 0, blocked on A's write lock, and read 1
        # after A committed — the ghost must equal the observed 1
        assert envs["B"][LogicalVar("X0")] == 1


class TestRestartRebinding:
    def deadlock_pair(self):
        t_xy = TransactionType(
            name="XY",
            body=(
                Read(Local("a"), Item("x")), Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("y")), Write(Item("y"), Local("b") + 1),
            ),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )
        t_yx = TransactionType(
            name="YX",
            body=(
                Read(Local("a"), Item("y")), Write(Item("y"), Local("a") + 1),
                Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1),
            ),
            snapshot=((LogicalVar("X0"), Item("y")),),
        )
        return [
            InstanceSpec(t_xy, {}, "READ COMMITTED", "A"),
            InstanceSpec(t_yx, {}, "READ COMMITTED", "B"),
        ]

    # both instances take their first lock, then cross: deadlock.  The
    # victim (index 1) restarts; the script lets the survivor commit before
    # the victim's retry, which then runs to completion alone.
    DEADLOCK_THEN_RETRY = [0, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1]

    def test_deadlock_victim_retries_and_both_commit(self):
        sim = Simulator(
            DbState(items={"x": 0, "y": 0}),
            self.deadlock_pair(),
            script=self.DEADLOCK_THEN_RETRY,
            retry=True,
        )
        result = sim.run()
        assert result.stats["deadlocks"] == 1
        assert result.stats["restarts"] == 1
        assert len(result.committed) == 2
        assert result.final.read_item("x") == 2
        assert result.final.read_item("y") == 2

    def test_restarted_instance_rebinds_ghosts_to_fresh_state(self):
        envs = {}
        restarted = {}

        def capture(sim, rt):
            if rt.status == "committed":
                envs[rt.spec.name] = dict(rt.env)
                restarted[rt.spec.name] = rt.restarts

        sim = Simulator(
            DbState(items={"x": 0, "y": 0}),
            self.deadlock_pair(),
            script=self.DEADLOCK_THEN_RETRY,
            retry=True,
            observers=[capture],
        )
        result = sim.run()
        assert len(result.committed) == 2
        assert restarted == {"A": 0, "B": 1}
        # the survivor incremented both items before the victim's retry ran,
        # so the victim's snapshot ghost must see 1 — a stale rebinding
        # would still show the initial 0
        assert envs["B"][LogicalVar("X0")] == 1


class TestObserverContract:
    def test_observer_sees_every_operation(self):
        seen = []

        def observer(sim, rt):
            seen.append((rt.spec.label(rt.index), rt.ops_done, rt.status))

        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        Simulator(DbState(items={"x": 0}), specs, observers=[observer]).run()
        # two ops plus the commit notification
        labels = [entry[0] for entry in seen]
        assert labels.count("A") == 3

    def test_multiple_observers_all_invoked(self):
        counts = [0, 0]

        def first(sim, rt):
            counts[0] += 1

        def second(sim, rt):
            counts[1] += 1

        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        Simulator(DbState(items={"x": 0}), specs, observers=[first, second]).run()
        assert counts[0] == counts[1] > 0
