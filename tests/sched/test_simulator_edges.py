"""Simulator edge cases: stalls, script errors, step caps, observers."""

import pytest

from repro.core.formula import ge
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.errors import ScheduleError
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer():
    return TransactionType(
        name="Inc",
        body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1)),
    )


class TestScriptHandling:
    def test_out_of_range_script_index_rejected(self):
        sim = Simulator(DbState(items={"x": 0}), [InstanceSpec(incrementer(), {})], script=[5])
        with pytest.raises(ScheduleError):
            sim.run()

    def test_script_entries_for_finished_instances_skipped(self):
        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        sim = Simulator(DbState(items={"x": 0}), specs, script=[0] * 20)
        result = sim.run()
        assert result.committed and result.final.read_item("x") == 1

    def test_script_exhaustion_falls_back_to_random(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(DbState(items={"x": 0}), specs, script=[0])
        result = sim.run()
        assert len(result.committed) == 2


class TestCapsAndStalls:
    def test_max_steps_bounds_execution(self):
        blocked_writer = TransactionType(
            name="W", body=(Write(Item("x"), Local("v") * 0),)
        )
        # 'v' is unbound: executing raises, aborting the instance — but the
        # step budget must bound even pathological schedules
        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        sim = Simulator(DbState(items={"x": 0}), specs, max_steps=1)
        result = sim.run()
        assert result.stats["steps"] == 1
        assert result.outcomes[0].status in ("incomplete", "committed")

    def test_mutual_block_resolves_via_deadlock_abort(self):
        t_xy = TransactionType(
            name="XY",
            body=(
                Read(Local("a"), Item("x")), Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("y")), Write(Item("y"), Local("b") + 1),
            ),
        )
        t_yx = TransactionType(
            name="YX",
            body=(
                Read(Local("a"), Item("y")), Write(Item("y"), Local("a") + 1),
                Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1),
            ),
        )
        specs = [
            InstanceSpec(t_xy, {}, "READ COMMITTED", "A"),
            InstanceSpec(t_yx, {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(
            DbState(items={"x": 0, "y": 0}), specs, seed=1, retry=False, max_steps=500
        )
        result = sim.run()
        # no retry: the victim stays aborted, the survivor commits
        assert len(result.committed) == 1
        assert len(result.aborted) == 1
        assert result.stats["deadlocks"] == 1


class TestObserverContract:
    def test_observer_sees_every_operation(self):
        seen = []

        def observer(sim, rt):
            seen.append((rt.spec.label(rt.index), rt.ops_done, rt.status))

        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        Simulator(DbState(items={"x": 0}), specs, observers=[observer]).run()
        # two ops plus the commit notification
        labels = [entry[0] for entry in seen]
        assert labels.count("A") == 3

    def test_multiple_observers_all_invoked(self):
        counts = [0, 0]

        def first(sim, rt):
            counts[0] += 1

        def second(sim, rt):
            counts[1] += 1

        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        Simulator(DbState(items={"x": 0}), specs, observers=[first, second]).run()
        assert counts[0] == counts[1] > 0
