"""Differential tests: optimal DPOR vs lite vs unpruned DFS.

The reduction claims of the optimal explorer are only worth anything if
they are *sound*: for every bundled scenario and level assignment, the
set of reachable final states (state token + per-instance outcome census)
and the set of semantic-violation summaries must be identical across
pruning modes.  Small scenarios are additionally compared against the
unpruned DFS ground truth; the three-instance workloads compare optimal
against lite only (their full trees are too large for a test budget).
"""

import pytest

from repro.pipeline.scenarios import scenarios_for
from repro.sched.explore import _state_token, explore
from repro.sched.semantic import check_semantic_correctness

SMALL = [
    ("banking", "withdraw-race"),
    ("banking", "write-skew"),
    ("banking", "deposit-race"),
    ("banking", "deposit-vs-withdraw"),
    ("tpcc-lite", "new-order-race"),
    ("tpcc-lite", "payment-race"),
    ("tpcc-lite", "delivery-vs-new-order"),
]

LARGE = [
    ("banking", "withdraw-race-3", "READ COMMITTED"),
    ("banking", "withdraw-race-3", "SNAPSHOT"),
    ("tpcc-lite", "district-mix", "READ COMMITTED"),
    # the MVCC storage-stress workloads: a long-running snapshot reader
    # over committing writers (version retention + snapshot-read stability)
    ("mvcc-stress", "long-reader", "READ COMMITTED"),
    ("mvcc-stress", "long-reader", "SNAPSHOT"),
    ("mvcc-stress", "version-bloat", "SNAPSHOT"),
]

LEVELS = ("READ COMMITTED", "REPEATABLE READ", "SNAPSHOT")


def scenario(app, name):
    return next(s for s in scenarios_for(app) if s.name == name)


def run(scen, level, **kwargs):
    levels = {spec.txn_type.name: level for spec in scen.specs({})}
    return explore(
        scen.initial(), scen.specs(levels), retry=True, max_schedules=50_000, **kwargs
    )


def final_states(result):
    return {
        (
            _state_token(schedule.final),
            tuple(sorted((o.name, o.status) for o in schedule.outcomes)),
        )
        for schedule in result.results
    }


def violation_summaries(scen, result):
    summaries = set()
    for schedule in result.results:
        report = check_semantic_correctness(schedule, scen.invariant, scen.cumulative)
        if not report.correct:
            summaries.add(report.summary())
    return summaries


@pytest.mark.parametrize("app,name", SMALL, ids=[f"{a}:{n}" for a, n in SMALL])
@pytest.mark.parametrize("level", LEVELS)
def test_small_scenarios_agree_with_unpruned_dfs(app, name, level):
    scen = scenario(app, name)
    full = run(scen, level, pruning=False)
    lite = run(scen, level, dpor="lite")
    optimal = run(scen, level, dpor="optimal")
    assert not full.truncated
    truth = final_states(full)
    assert final_states(lite) == truth
    assert final_states(optimal) == truth
    witnesses = violation_summaries(scen, full)
    assert violation_summaries(scen, lite) == witnesses
    assert violation_summaries(scen, optimal) == witnesses
    assert optimal.runs <= full.runs


@pytest.mark.parametrize(
    "app,name,level", LARGE, ids=[f"{a}:{n}@{l}" for a, n, l in LARGE]
)
def test_large_scenarios_agree_across_pruning_modes(app, name, level):
    scen = scenario(app, name)
    lite = run(scen, level, dpor="lite")
    optimal = run(scen, level, dpor="optimal")
    assert not lite.truncated and not optimal.truncated
    assert final_states(optimal) == final_states(lite)
    assert violation_summaries(scen, optimal) == violation_summaries(scen, lite)
    assert optimal.runs < lite.runs  # the reduction must actually reduce
