"""Tests for the pluggable scheduling policies."""

import pytest

from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.errors import ScheduleError
from repro.sched.policy import (
    DEPENDENT,
    ExhaustivePolicy,
    RandomPolicy,
    ReplayPolicy,
    independent,
    op_signature,
)
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer(item="x"):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
    )


def two_incrementers(level="READ COMMITTED"):
    return [
        InstanceSpec(incrementer(), {}, level, "A"),
        InstanceSpec(incrementer(), {}, level, "B"),
    ]


class TestRandomPolicy:
    def test_matches_legacy_seeded_runs(self):
        """Simulator(seed=k) and Simulator(policy=RandomPolicy(k)) agree."""
        for seed in range(5):
            legacy = Simulator(DbState(items={"x": 0}), two_incrementers(), seed=seed).run()
            pluggable = Simulator(
                DbState(items={"x": 0}), two_incrementers(), policy=RandomPolicy(seed)
            ).run()
            assert legacy.script == pluggable.script
            assert legacy.final.same_as(pluggable.final)

    def test_different_seeds_vary_schedules(self):
        scripts = {
            tuple(
                Simulator(
                    DbState(items={"x": 0}), two_incrementers(), policy=RandomPolicy(seed)
                )
                .run()
                .script
            )
            for seed in range(20)
        }
        assert len(scripts) > 1


class TestReplayPolicy:
    def test_replays_script_exactly(self):
        script = [0, 0, 0, 1, 1, 1]
        result = Simulator(
            DbState(items={"x": 0}), two_incrementers(), policy=ReplayPolicy(script)
        ).run()
        assert result.script == script
        assert [o.name for o in result.committed] == ["A", "B"]

    def test_matches_legacy_script_argument(self):
        script = [1, 0, 1, 0, 1, 0]
        legacy = Simulator(DbState(items={"x": 0}), two_incrementers(), script=script).run()
        pluggable = Simulator(
            DbState(items={"x": 0}),
            two_incrementers(),
            policy=ReplayPolicy(script, seed=0),
        ).run()
        assert legacy.script == pluggable.script
        assert legacy.final.same_as(pluggable.final)

    def test_stop_mode_leaves_instances_incomplete(self):
        result = Simulator(
            DbState(items={"x": 0}),
            two_incrementers(),
            policy=ReplayPolicy([0], on_exhausted="stop"),
        ).run()
        assert result.script == [0]
        assert all(o.status == "incomplete" for o in result.outcomes)

    def test_random_mode_finishes_instances(self):
        result = Simulator(
            DbState(items={"x": 0}),
            two_incrementers(),
            policy=ReplayPolicy([0], on_exhausted="random"),
        ).run()
        assert len(result.committed) == 2

    def test_out_of_range_index_rejected(self):
        sim = Simulator(
            DbState(items={"x": 0}), two_incrementers(), policy=ReplayPolicy([7])
        )
        with pytest.raises(ScheduleError):
            sim.run()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ReplayPolicy([0], on_exhausted="explode")


class TestSignatures:
    def run_history(self, specs, script):
        sim = Simulator(DbState(items={"x": 0, "y": 0}), specs, script=script)
        sim.run()
        return sim.engine.history

    def test_read_and_write_signatures_conflict_on_same_item(self):
        read_sig = frozenset({(("item", "x"), False)})
        write_sig = frozenset({(("item", "x"), True)})
        assert independent(read_sig, frozenset({(("item", "y"), True)}))
        assert not independent(read_sig, write_sig)
        assert independent(read_sig, frozenset({(("item", "x"), False)}))

    def test_commit_is_dependent_on_everything(self):
        history = self.run_history(two_incrementers(), [0, 0, 0])
        commit_ops = [op for op in history if op.kind == "commit"]
        assert op_signature(commit_ops) == DEPENDENT
        assert not independent(DEPENDENT, frozenset())

    def test_empty_slice_is_dependent(self):
        assert op_signature([]) == DEPENDENT

    def test_table_and_row_keys_coarsen_to_table_granule(self):
        class Op:
            def __init__(self, kind, key):
                self.kind = kind
                self.key = key

        sig_row = op_signature([Op("w", ("row", "orders", 3))])
        sig_table = op_signature([Op("r", ("table", "orders"))])
        assert not independent(sig_row, sig_table)


class TestExhaustivePolicy:
    def test_prefix_is_followed_verbatim(self):
        policy = ExhaustivePolicy(prefix=[1, 0, 1])
        result = Simulator(
            DbState(items={"x": 0}), two_incrementers(), policy=policy
        ).run()
        assert result.script[:3] == [1, 0, 1]

    def test_extends_deterministically_lowest_first(self):
        policy = ExhaustivePolicy()
        result = Simulator(
            DbState(items={"x": 0}), two_incrementers(), policy=policy
        ).run()
        # no sleep entries, no pruning hooks: always picks instance 0 first
        assert result.script == [0, 0, 0, 1, 1, 1]
        assert [frame.choice for frame in policy.frames] == result.script

    def test_max_depth_stops_run(self):
        policy = ExhaustivePolicy(max_depth=2)
        result = Simulator(
            DbState(items={"x": 0}), two_incrementers(), policy=policy
        ).run()
        assert policy.stop_reason == "depth"
        assert len(result.script) == 2

    def test_frames_record_enabled_sets_and_signatures(self):
        policy = ExhaustivePolicy()
        Simulator(DbState(items={"x": 0}), two_incrementers(), policy=policy).run()
        first = policy.frames[0]
        assert first.enabled == (0, 1)
        index, signature = first.tried[0]
        assert index == 0
        # the first step begins a transaction: it reads x and claims a slot
        # in the global begin order (deadlock victims depend on it)
        assert signature == frozenset(
            {(("item", "x"), False), (("<txn-order>",), True)}
        )

    def test_visited_state_stops_run(self):
        class AlwaysSeen:
            def seen(self, fingerprint, sleep):
                return True

        policy = ExhaustivePolicy(
            prefix=[0], visited=AlwaysSeen(), fingerprint=lambda sim: "fp"
        )
        Simulator(DbState(items={"x": 0}), two_incrementers(), policy=policy).run()
        assert policy.stop_reason == "state"
