"""Unit tests for the anomaly detectors, driven by scripted schedules."""

import pytest

from repro.core.formula import eq, ge
from repro.core.program import Read, Select, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.sched.anomalies import (
    detect_all,
    detect_dirty_reads,
    detect_dirty_writes,
    detect_fuzzy_reads,
    detect_lost_updates,
    detect_phantoms,
    detect_read_skew,
    detect_write_skew,
)
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer(item="x"):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
    )


def reader(items):
    body = tuple(Read(Local(f"v{i}"), Item(name)) for i, name in enumerate(items))
    return TransactionType(name="Read_" + "_".join(items), body=body)


class TestDirtyRead:
    def test_detected_at_ru(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "W"),
            InstanceSpec(reader(["x"]), {}, "READ UNCOMMITTED", "R"),
        ]
        # W reads, W writes (uncommitted), R reads dirty, W commits
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 1, 1, 0]).run()
        assert detect_dirty_reads(result)

    def test_absent_in_serial_run(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "W"),
            InstanceSpec(reader(["x"]), {}, "READ UNCOMMITTED", "R"),
        ]
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0, 1, 1]).run()
        assert not detect_dirty_reads(result)


class TestLostUpdate:
    def test_detected_at_rc(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 1, 0, 0, 1, 1]).run()
        assert detect_lost_updates(result)

    def test_absent_when_sequential(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        assert not detect_lost_updates(result)


class TestFuzzyRead:
    def test_detected_at_rc(self):
        double_reader = TransactionType(
            name="RR2",
            body=(Read(Local("a"), Item("x")), Read(Local("b"), Item("x"))),
        )
        specs = [
            InstanceSpec(double_reader, {}, "READ COMMITTED", "R"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED", "W"),
        ]
        # R reads, W runs fully and commits, R reads again
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 1, 1, 1, 1, 0, 0]).run()
        assert detect_fuzzy_reads(result)


class TestPhantom:
    def test_insert_under_open_predicate(self):
        from repro.core.program import Insert, SelectCount
        from repro.core.formula import TRUE
        from repro.core.terms import IntConst

        counter = TransactionType(
            name="Counter",
            body=(SelectCount("T", Local("n1")), SelectCount("T", Local("n2"))),
        )
        inserter = TransactionType(
            name="Inserter", body=(Insert("T", (("k", IntConst(9)),)),)
        )
        specs = [
            InstanceSpec(counter, {}, "REPEATABLE READ", "C"),
            InstanceSpec(inserter, {}, "READ COMMITTED", "I"),
        ]
        result = Simulator(
            DbState(tables={"T": [{"k": 1}]}), specs, script=[0, 1, 1, 0, 0]
        ).run()
        assert detect_phantoms(result)


class TestSkews:
    def test_write_skew_detected_at_snapshot(self):
        from repro.apps import banking

        init = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        result = Simulator(init, specs, script=[0, 0, 1, 1, 0, 1, 0, 1, 0, 1]).run()
        assert detect_write_skew(result)

    def test_read_skew_detected(self):
        writer_xy = TransactionType(
            name="Wxy",
            body=(
                Read(Local("a"), Item("x")),
                Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("y")),
                Write(Item("y"), Local("b") + 1),
            ),
        )
        specs = [
            InstanceSpec(reader(["x", "y"]), {}, "READ COMMITTED", "R"),
            InstanceSpec(writer_xy, {}, "READ COMMITTED", "W"),
        ]
        # R reads x, W updates x and y and commits, R reads y
        result = Simulator(
            DbState(items={"x": 0, "y": 0}), specs, script=[0, 1, 1, 1, 1, 1, 1, 0, 0]
        ).run()
        assert detect_read_skew(result)

    def test_no_skew_in_serial(self):
        specs = [
            InstanceSpec(reader(["x", "y"]), {}, "READ COMMITTED", "R"),
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "W"),
        ]
        result = Simulator(
            DbState(items={"x": 0, "y": 0}), specs, script=[0, 0, 0, 1, 1, 1]
        ).run()
        assert not detect_read_skew(result)
        assert not detect_write_skew(result)


class TestDetectAll:
    def test_detect_all_shape(self):
        specs = [InstanceSpec(incrementer(), {}, "READ COMMITTED", "A")]
        result = Simulator(DbState(items={"x": 0}), specs).run()
        anomalies = detect_all(result)
        assert set(anomalies) == {
            "P0-dirty-write",
            "P1-dirty-read",
            "P2-fuzzy-read",
            "P3-phantom",
            "P4-lost-update",
            "A5A-read-skew",
            "A5B-write-skew",
        }
        assert all(v == [] for v in anomalies.values())
