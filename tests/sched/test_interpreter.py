"""Unit tests for the step interpreter."""

import pytest

from repro.core.formula import RowAttr, TRUE, eq, ge, lt
from repro.core.program import (
    Delete,
    ForEach,
    If,
    Insert,
    LocalAssign,
    Read,
    ReadRecord,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
    While,
    Write,
)
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local, LogicalVar, Param
from repro.engine.manager import Engine
from repro.sched.interpreter import bind_ghosts, steps


def drive(engine, txn, txn_type, args, env=None, observations=None):
    """Run an interpreter generator to completion, executing every thunk."""
    env = env if env is not None else bind_ghosts(txn_type, args, engine.committed_state())
    gen = steps(engine, txn, txn_type, args, env, observations)
    ops = 0
    try:
        thunk = next(gen)
        while True:
            result = thunk()
            ops += 1
            thunk = gen.send(result)
    except StopIteration:
        pass
    return env, ops


@pytest.fixture
def engine():
    return Engine(
        DbState(
            items={"x": 3},
            arrays={"emp": {0: {"rate": 2, "sal": 6}}},
            tables={"T": [{"k": 1, "done": False}, {"k": 2, "done": False}]},
        )
    )


class TestGhostBinding:
    def test_params_and_snapshot_bound(self, engine):
        txn_type = TransactionType(
            name="G",
            params=(Param("p"),),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )
        env = bind_ghosts(txn_type, {"p": 7}, engine.committed_state())
        assert env[Param("p")] == 7
        assert env[LogicalVar("X0")] == 3

    def test_missing_arg_rejected(self, engine):
        from repro.errors import ScheduleError

        txn_type = TransactionType(name="G", params=(Param("p"),))
        with pytest.raises(ScheduleError):
            bind_ghosts(txn_type, {}, engine.committed_state())

    def test_unevaluable_snapshot_binds_none(self, engine):
        txn_type = TransactionType(
            name="G", snapshot=((LogicalVar("X0"), Item("missing")),)
        )
        env = bind_ghosts(txn_type, {}, engine.committed_state())
        assert env[LogicalVar("X0")] is None


class TestConventionalStatements:
    def test_read_write_roundtrip(self, engine):
        txn_type = TransactionType(
            name="Inc",
            body=(
                Read(Local("v"), Item("x")),
                LocalAssign(Local("v"), Local("v") + 1),
                Write(Item("x"), Local("v")),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        env, ops = drive(engine, txn, txn_type, {})
        engine.commit(txn)
        assert ops == 2  # one read, one write; the local step is free
        reader = engine.begin("READ COMMITTED")
        assert engine.read_item(reader, "x") == 4

    def test_observations_recorded(self, engine):
        txn_type = TransactionType(name="R", body=(Read(Local("v"), Item("x")),))
        txn = engine.begin("READ COMMITTED")
        obs = {}
        drive(engine, txn, txn_type, {}, observations=obs)
        assert obs[("item", "x")] == 3

    def test_read_record(self, engine):
        txn_type = TransactionType(
            name="RR",
            params=(Param("i"),),
            body=(
                ReadRecord("emp", Param("i"), (("rate", Local("R")), ("sal", Local("S")))),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        obs = {}
        env, ops = drive(engine, txn, txn_type, {"i": 0}, observations=obs)
        assert ops == 1
        assert env[Local("R")] == 2
        assert obs[("field", "emp", 0, "sal")] == 6

    def test_if_and_while(self, engine):
        txn_type = TransactionType(
            name="Loop",
            body=(
                Read(Local("v"), Item("x")),
                LocalAssign(Local("n"), IntConst(0)),
                While(
                    lt(Local("n"), Local("v")),
                    body=(LocalAssign(Local("n"), Local("n") + 1),),
                ),
                If(ge(Local("n"), 3), then=(Write(Item("x"), Local("n") * 2),)),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        drive(engine, txn, txn_type, {})
        engine.commit(txn)
        reader = engine.begin("READ COMMITTED")
        assert engine.read_item(reader, "x") == 6


class TestRelationalStatements:
    def test_select_buffers(self, engine):
        txn_type = TransactionType(
            name="Sel",
            body=(Select("T", Local("b", "str"), where=TRUE, attrs=("k",)),),
        )
        txn = engine.begin("READ COMMITTED")
        env, _ops = drive(engine, txn, txn_type, {})
        rows = [dict(packed) for packed in env[Local("b", "str")]]
        assert sorted(row["k"] for row in rows) == [1, 2]

    def test_select_scalar_and_count(self, engine):
        txn_type = TransactionType(
            name="SC",
            body=(
                SelectScalar("T", "k", Local("first"), where=eq(RowAttr("r", "k"), 2)),
                SelectCount("T", Local("n"), where=TRUE),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        env, _ops = drive(engine, txn, txn_type, {})
        assert env[Local("first")] == 2
        assert env[Local("n")] == 2

    def test_insert_update_delete(self, engine):
        txn_type = TransactionType(
            name="IUD",
            body=(
                Insert("T", (("k", IntConst(3)), ("done", False))),
                Update("T", sets=(("done", True),), where=eq(RowAttr("r", "k"), 3)),
                Delete("T", where=eq(RowAttr("r", "k"), 1)),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        drive(engine, txn, txn_type, {})
        engine.commit(txn)
        reader = engine.begin("READ COMMITTED")
        rows = engine.select(reader, "T", lambda r: True)
        assert {row["k"] for row in rows} == {2, 3}
        assert any(row["k"] == 3 and row["done"] for row in rows)

    def test_foreach_drives_updates(self, engine):
        txn_type = TransactionType(
            name="FE",
            body=(
                Select("T", Local("b", "str"), attrs=("k",)),
                ForEach(
                    buffer=Local("b", "str"),
                    bind=(("k", Local("kk")),),
                    body=(
                        Update("T", sets=(("done", True),), where=eq(RowAttr("r", "k"), Local("kk"))),
                    ),
                ),
            ),
        )
        txn = engine.begin("READ COMMITTED")
        _env, ops = drive(engine, txn, txn_type, {})
        assert ops == 3  # select + two updates
        engine.commit(txn)
        reader = engine.begin("READ COMMITTED")
        assert all(row["done"] for row in engine.select(reader, "T", lambda r: True))
