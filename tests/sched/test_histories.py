"""Unit tests for the history DSL — the [2] anomaly matrix."""

import pytest

from repro.core.state import DbState
from repro.sched.histories import parse, replay

RC = "READ COMMITTED"
RU = "READ UNCOMMITTED"
RR = "REPEATABLE READ"
SER = "SERIALIZABLE"
FCW = "READ COMMITTED FCW"
SI = "SNAPSHOT"


class TestParsing:
    def test_token_shapes(self):
        tokens = parse("w1[x=1] r2[x] rp3[T:a=1] ins4[T:a=1,b=true] c1 a2")
        ops = [op for _raw, op, _n, _b in tokens]
        assert ops == ["w", "r", "rp", "ins", "c", "a"]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse("zap1[x]")


class TestDirtyReadHistory:
    HISTORY = "w1[x=1] r2[x] c1 c2"

    def test_permitted_at_ru(self):
        result = replay(self.HISTORY, {1: RC, 2: RU})
        assert result.executed_fully
        assert result.value_of("r2[x]") == 1

    def test_blocked_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        blocked = [s.token for s in result.blocked_steps]
        assert "r2[x]" in blocked


class TestLostUpdateHistory:
    HISTORY = "r1[x] r2[x] w2[x=2] c2 w1[x=3] c1"

    def test_permitted_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        assert result.executed_fully
        assert result.final.read_item("x") == 3

    def test_aborted_at_fcw(self):
        result = replay(self.HISTORY, {1: FCW, 2: RC})
        assert any(s.token == "w1[x=3]" for s in result.aborted_steps)
        assert result.final.read_item("x") == 2

    def test_blocked_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC})
        assert result.blocked_steps  # w2 blocks on the long read lock


class TestFuzzyReadHistory:
    HISTORY = "r1[x] w2[x=5] c2 r1[x] c1"

    def test_permitted_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        assert result.executed_fully
        assert result.value_of("r1[x]") == 0  # first read

    def test_blocked_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC})
        assert any(s.token == "w2[x=5]" for s in result.blocked_steps)


class TestPhantomHistory:
    HISTORY = "rp1[T:a=1] ins2[T:a=1] c2 rp1[T:a=1] c1"

    def _initial(self):
        return DbState(tables={"T": [{"a": 1}]})

    def test_permitted_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC}, initial=self._initial())
        assert result.executed_fully
        first, second = [s for s in result.steps if s.token == "rp1[T:a=1]"]
        assert len(second.value) == len(first.value) + 1

    def test_blocked_at_serializable(self):
        result = replay(self.HISTORY, {1: SER, 2: RC}, initial=self._initial())
        assert any(s.token == "ins2[T:a=1]" for s in result.blocked_steps)


class TestWriteSkewHistory:
    HISTORY = "r1[x] r1[y] r2[x] r2[y] w1[x=-1] w2[y=-1] c1 c2"

    def _initial(self):
        return DbState(items={"x": 1, "y": 1})

    def test_permitted_at_snapshot(self):
        result = replay(self.HISTORY, {1: SI, 2: SI}, initial=self._initial())
        assert result.executed_fully
        assert result.final.read_item("x") == -1
        assert result.final.read_item("y") == -1

    def test_same_item_fcw_aborts(self):
        history = "r1[x] r2[x] w1[x=5] w2[x=7] c1 c2"
        result = replay(history, {1: SI, 2: SI}, initial=DbState(items={"x": 1}))
        assert any(s.token == "c2" for s in result.aborted_steps)
        assert result.final.read_item("x") == 5

    def test_blocked_at_serializable(self):
        result = replay(self.HISTORY, {1: SER, 2: SER}, initial=self._initial())
        assert not result.executed_fully


class TestScriptedAbort:
    def test_abort_undoes_writes(self):
        result = replay("w1[x=9] a1", {1: RC})
        assert result.final.read_item("x") == 0

    def test_steps_after_abort_skipped(self):
        result = replay("w1[x=9] a1 w1[x=10]", {1: RC})
        statuses = [s.status for s in result.steps]
        assert statuses == ["ok", "ok", "skipped"]

    def test_dirty_read_of_rolled_back_write(self):
        result = replay("w1[x=1] r2[x] a1 r2[x] c2", {1: RC, 2: RU})
        values = [s.value for s in result.steps if s.token == "r2[x]"]
        assert values == [1, 0]  # the classic dirty read of doomed data
