"""Unit tests for the history DSL — the [2] anomaly matrix."""

import pytest

from repro.core.state import DbState
from repro.sched.histories import parse, replay

RC = "READ COMMITTED"
RU = "READ UNCOMMITTED"
RR = "REPEATABLE READ"
SER = "SERIALIZABLE"
FCW = "READ COMMITTED FCW"
SI = "SNAPSHOT"


class TestParsing:
    def test_token_shapes(self):
        tokens = parse("w1[x=1] r2[x] rp3[T:a=1] ins4[T:a=1,b=true] c1 a2")
        ops = [op for _raw, op, _n, _b in tokens]
        assert ops == ["w", "r", "rp", "ins", "c", "a"]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse("zap1[x]")


class TestDirtyReadHistory:
    HISTORY = "w1[x=1] r2[x] c1 c2"

    def test_permitted_at_ru(self):
        result = replay(self.HISTORY, {1: RC, 2: RU})
        assert result.executed_fully
        assert result.value_of("r2[x]") == 1

    def test_blocked_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        blocked = [s.token for s in result.blocked_steps]
        assert "r2[x]" in blocked


class TestLostUpdateHistory:
    HISTORY = "r1[x] r2[x] w2[x=2] c2 w1[x=3] c1"

    def test_permitted_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        assert result.executed_fully
        assert result.final.read_item("x") == 3

    def test_aborted_at_fcw(self):
        result = replay(self.HISTORY, {1: FCW, 2: RC})
        assert any(s.token == "w1[x=3]" for s in result.aborted_steps)
        assert result.final.read_item("x") == 2

    def test_blocked_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC})
        assert result.blocked_steps  # w2 blocks on the long read lock


class TestFuzzyReadHistory:
    HISTORY = "r1[x] w2[x=5] c2 r1[x] c1"

    def test_permitted_at_rc(self):
        result = replay(self.HISTORY, {1: RC, 2: RC})
        assert result.executed_fully
        assert result.value_of("r1[x]") == 0  # first read

    def test_blocked_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC})
        assert any(s.token == "w2[x=5]" for s in result.blocked_steps)


class TestPhantomHistory:
    HISTORY = "rp1[T:a=1] ins2[T:a=1] c2 rp1[T:a=1] c1"

    def _initial(self):
        return DbState(tables={"T": [{"a": 1}]})

    def test_permitted_at_rr(self):
        result = replay(self.HISTORY, {1: RR, 2: RC}, initial=self._initial())
        assert result.executed_fully
        first, second = [s for s in result.steps if s.token == "rp1[T:a=1]"]
        assert len(second.value) == len(first.value) + 1

    def test_blocked_at_serializable(self):
        result = replay(self.HISTORY, {1: SER, 2: RC}, initial=self._initial())
        assert any(s.token == "ins2[T:a=1]" for s in result.blocked_steps)


class TestWriteSkewHistory:
    HISTORY = "r1[x] r1[y] r2[x] r2[y] w1[x=-1] w2[y=-1] c1 c2"

    def _initial(self):
        return DbState(items={"x": 1, "y": 1})

    def test_permitted_at_snapshot(self):
        result = replay(self.HISTORY, {1: SI, 2: SI}, initial=self._initial())
        assert result.executed_fully
        assert result.final.read_item("x") == -1
        assert result.final.read_item("y") == -1

    def test_same_item_fcw_aborts(self):
        history = "r1[x] r2[x] w1[x=5] w2[x=7] c1 c2"
        result = replay(history, {1: SI, 2: SI}, initial=DbState(items={"x": 1}))
        assert any(s.token == "c2" for s in result.aborted_steps)
        assert result.final.read_item("x") == 5

    def test_blocked_at_serializable(self):
        result = replay(self.HISTORY, {1: SER, 2: SER}, initial=self._initial())
        assert not result.executed_fully


class TestScriptedAbort:
    def test_abort_undoes_writes(self):
        result = replay("w1[x=9] a1", {1: RC})
        assert result.final.read_item("x") == 0

    def test_steps_after_abort_skipped(self):
        result = replay("w1[x=9] a1 w1[x=10]", {1: RC})
        statuses = [s.status for s in result.steps]
        assert statuses == ["ok", "ok", "skipped"]

    def test_dirty_read_of_rolled_back_write(self):
        result = replay("w1[x=1] r2[x] a1 r2[x] c2", {1: RC, 2: RU})
        values = [s.value for s in result.steps if s.token == "r2[x]"]
        assert values == [1, 0]  # the classic dirty read of doomed data


class TestReplayViaPolicy:
    """replay() and replay_via_policy() must agree byte for byte."""

    CASES = [
        ("w1[x=1] r2[x] c1 c2", {1: RU, 2: RU}),
        ("w1[x=1] r2[x] c1 c2", {1: RC, 2: RC}),
        ("r1[x] r2[x] w2[x=2] c2 w1[x=3] c1", {1: RC, 2: RC}),
        ("r1[x] r2[x] w2[x=2] c2 w1[x=3] c1", {1: FCW, 2: FCW}),
        ("w1[x=1] r2[x] a1 c2", {1: RU, 2: RU}),
        ("w1[x=1] r2[x] a1 r2[x] c2", {1: RC, 2: RC}),
        ("w1[x=1] a1 w1[x=2]", {1: RC}),
        (
            "r1[acct_sav[0].bal] w2[acct_sav[0].bal=5] c2 w1[acct_sav[0].bal=9] c1",
            {1: RC, 2: RC},
        ),
        ("ins1[orders:id=1,status=open] rp2[orders:status=open] c1 c2", {1: RC, 2: SER}),
        ("ins1[orders:id=1,status=open] rp2[orders:status=open] c1 c2", {1: SER, 2: SER}),
        ("r1[x] w1[x=7] c1", {1: SI}),
        ("r1[x] r2[x] w1[x=1] w2[x=2] c1 c2", {1: SI, 2: SI}),
        ("w1[x=1] w2[y=2] r1[y] r2[x] c1 c2", {1: RR, 2: RR}),
    ]

    @pytest.mark.parametrize("history,levels", CASES)
    def test_step_outcomes_and_final_state_agree(self, history, levels):
        from repro.sched.histories import replay_via_policy

        direct = replay(history, levels)
        via_policy = replay_via_policy(history, levels)
        directly = [(s.token, s.status, s.value, s.detail) for s in direct.steps]
        policied = [(s.token, s.status, s.value, s.detail) for s in via_policy.steps]
        assert directly == policied
        assert direct.final.same_as(via_policy.final)


class TestHistoryRendering:
    def test_item_history_round_trips(self):
        from repro.sched.histories import history_string

        source = "w1[x=1] r2[x] c1 c2"
        result = replay(source, {1: RU, 2: RU})
        assert history_string(result.engine.history) == source

    def test_field_history_round_trips(self):
        from repro.sched.histories import history_string

        source = "r1[acct_sav[0].bal] w1[acct_sav[0].bal=9] c1"
        result = replay(source, {})
        assert history_string(result.engine.history) == source

    def test_numbering_follows_begin_order(self):
        from repro.sched.histories import history_numbering

        result = replay("w2[x=1] r1[x] c2 c1", {2: RU, 1: RU})
        numbering = history_numbering(result.engine.history)
        # DSL txn 2 begins first, so it renders as history transaction 1
        assert sorted(numbering.values()) == [1, 2]

    def test_numbering_matches_rendered_string(self):
        from repro.sched.histories import history_numbering, history_string

        result = replay("w1[x=1] r2[x] c1 c2", {1: RU, 2: RU})
        history = result.engine.history
        numbering = history_numbering(history)
        rendered = history_string(history)
        begin_order = [op.txn_id for op in history if op.kind == "begin"]
        assert [numbering[txn_id] for txn_id in begin_order] == [1, 2]
        assert rendered.startswith("w1[")


class TestRoundSeeds:
    def test_deterministic_and_prefix_stable(self):
        from repro.sched.simulator import round_seeds

        assert round_seeds(42, 5) == round_seeds(42, 5)
        # the stream property runner.py and semantic.py rely on: the first
        # k seeds do not depend on how many rounds are requested
        assert round_seeds(42, 10)[:5] == round_seeds(42, 5)

    def test_distinct_rounds_get_distinct_seeds(self):
        from repro.sched.simulator import round_seeds

        seeds = round_seeds(7, 20)
        assert len(set(seeds)) == 20
