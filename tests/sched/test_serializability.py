"""Unit tests for the conflict-serializability checker."""

import pytest

from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.sched.serializability import check_conflict_serializability
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer(item):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
    )


def reader_two(items):
    body = tuple(Read(Local(f"v{i}"), Item(item)) for i, item in enumerate(items))
    return TransactionType(name="Reader", body=body)


class TestSerializable:
    def test_sequential_schedule_serializable(self):
        specs = [
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        report = check_conflict_serializability(result)
        assert report.serializable
        assert report.serial_order is not None

    def test_disjoint_items_serializable(self):
        specs = [
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer("y"), {}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"x": 0, "y": 0}), specs, script=[0, 1, 0, 1, 0, 1]).run()
        assert check_conflict_serializability(result).serializable

    def test_serializable_levels_always_serializable(self):
        specs = [
            InstanceSpec(incrementer("x"), {}, "SERIALIZABLE", "A"),
            InstanceSpec(incrementer("x"), {}, "SERIALIZABLE", "B"),
        ]
        for seed in range(5):
            result = Simulator(DbState(items={"x": 0}), specs, seed=seed, retry=True).run()
            assert check_conflict_serializability(result).serializable


class TestNonSerializable:
    def test_lost_update_cycle_detected(self):
        specs = [
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "A"),
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "B"),
        ]
        # both read before either writes: rw edges both ways
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 1, 0, 0, 1, 1]).run()
        report = check_conflict_serializability(result)
        assert not report.serializable
        assert report.cycle is not None

    def test_write_skew_cycle_detected(self):
        from repro.apps import banking

        init = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        result = Simulator(init, specs, script=[0, 0, 1, 1, 0, 1, 0, 1, 0, 1]).run()
        report = check_conflict_serializability(result)
        assert not report.serializable

    def test_aborted_transactions_excluded(self):
        specs = [
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "A", abort_after=2),
            InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"x": 0}), specs, script=[0, 1, 0, 1, 1, 1]).run()
        report = check_conflict_serializability(result)
        # only B committed; a single transaction is trivially serializable
        assert report.serializable
