"""Unit tests for the schedule simulator."""

import pytest

from repro.core.formula import ge, eq
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local, LogicalVar, Param
from repro.sched.simulator import InstanceSpec, Simulator, run_random_schedules


def make_incrementer(item="x"):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
        snapshot=((LogicalVar("V0"), Item(item)),),
        result=ge(Item(item), 0),
    )


def make_transfer():
    """Reads x, writes y — creates read-write interplay across items."""
    return TransactionType(
        name="Copy",
        body=(Read(Local("v"), Item("x")), Write(Item("y"), Local("v"))),
    )


@pytest.fixture
def initial():
    return DbState(items={"x": 0, "y": 0})


class TestBasicRuns:
    def test_single_instance_commits(self, initial):
        sim = Simulator(initial, [InstanceSpec(make_incrementer(), {}, "READ COMMITTED")])
        result = sim.run()
        assert len(result.committed) == 1
        assert result.final.read_item("x") == 1

    def test_sequential_script(self, initial):
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "B"),
        ]
        # A fully, then B fully
        sim = Simulator(initial, specs, script=[0, 0, 0, 1, 1, 1])
        result = sim.run()
        assert result.final.read_item("x") == 2
        assert [o.name for o in result.committed] == ["A", "B"]

    def test_commit_order_recorded(self, initial):
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(make_transfer(), {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(initial, specs, script=[1, 1, 1, 0, 0, 0])
        result = sim.run()
        assert [o.name for o in result.committed] == ["B", "A"]

    def test_outcome_environments_exposed(self, initial):
        sim = Simulator(initial, [InstanceSpec(make_incrementer(), {}, "READ COMMITTED")])
        result = sim.run()
        outcome = result.committed[0]
        assert outcome.env[Local("v")] == 0  # the value read
        assert outcome.env[LogicalVar("V0")] == 0

    def test_committed_state_snapshots(self, initial):
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(initial, specs, script=[0, 0, 0, 1, 1, 1])
        result = sim.run()
        first, second = result.committed
        assert first.committed_state.read_item("x") == 1
        assert second.committed_state.read_item("x") == 2

    def test_random_seed_reproducible(self, initial):
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(make_transfer(), {}, "READ COMMITTED", "B"),
        ]
        first = Simulator(initial.copy(), specs, seed=42).run()
        second = Simulator(initial.copy(), specs, seed=42).run()
        assert first.script == second.script
        assert first.final.same_as(second.final)


class TestBlockingAndDeadlock:
    def test_write_conflict_blocks_and_resolves(self, initial):
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A"),
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "B"),
        ]
        # interleave: A reads, B reads (same value), A writes and commits,
        # B overwrites with its stale increment — the classic lost update
        sim = Simulator(initial, specs, script=[0, 1, 0, 0, 1, 1])
        result = sim.run()
        assert len(result.committed) == 2
        assert result.final.read_item("x") == 1  # the lost update!

    def test_deadlock_detected_and_victim_aborted(self):
        initial = DbState(items={"x": 0, "y": 0})
        t_xy = TransactionType(
            name="XY",
            body=(
                Read(Local("a"), Item("x")),
                Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("y")),
                Write(Item("y"), Local("b") + 1),
            ),
        )
        t_yx = TransactionType(
            name="YX",
            body=(
                Read(Local("a"), Item("y")),
                Write(Item("y"), Local("a") + 1),
                Read(Local("b"), Item("x")),
                Write(Item("x"), Local("b") + 1),
            ),
        )
        specs = [
            InstanceSpec(t_xy, {}, "READ COMMITTED", "XY"),
            InstanceSpec(t_yx, {}, "READ COMMITTED", "YX"),
        ]
        # both take their first lock, then each wants the other's
        sim = Simulator(initial, specs, script=[0, 0, 1, 1, 0, 0, 1, 1] * 4, retry=True)
        result = sim.run()
        assert result.stats["deadlocks"] >= 1
        assert len(result.committed) == 2  # the victim retried
        assert result.final.read_item("x") == 2

    def test_retry_disabled_leaves_abort(self):
        initial = DbState(items={"x": 0})
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED FCW", "A"),
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED FCW", "B"),
        ]
        # both read, A writes+commits, B's write hits FCW
        sim = Simulator(initial, specs, script=[0, 1, 0, 0, 1, 1], retry=False)
        result = sim.run()
        assert result.stats["fcw_aborts"] == 1
        assert len(result.aborted) == 1

    def test_retry_restarts_fcw_victim(self):
        initial = DbState(items={"x": 0})
        specs = [
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED FCW", "A"),
            InstanceSpec(make_incrementer(), {}, "READ COMMITTED FCW", "B"),
        ]
        sim = Simulator(initial, specs, script=[0, 1, 0, 0, 1, 1], retry=True)
        result = sim.run()
        assert len(result.committed) == 2
        assert result.final.read_item("x") == 2  # FCW repaired the lost update


class TestRollbackInjection:
    def test_abort_after_n_ops(self, initial):
        spec = InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A", abort_after=2)
        result = Simulator(initial, [spec]).run()
        assert result.stats["injected_aborts"] == 1
        assert result.aborted[0].name == "A"
        assert result.final.read_item("x") == 0  # the write was undone

    def test_injected_abort_not_retried(self, initial):
        spec = InstanceSpec(make_incrementer(), {}, "READ COMMITTED", "A", abort_after=1)
        result = Simulator(initial, [spec], retry=True).run()
        assert result.aborted and result.aborted[0].restarts == 0


class TestHelpers:
    def test_run_random_schedules_count(self, initial):
        specs = [InstanceSpec(make_incrementer(), {}, "READ COMMITTED")]
        results = run_random_schedules(initial, specs, rounds=3, seed=1)
        assert len(results) == 3
        assert all(r.final.read_item("x") == 1 for r in results)

    def test_summary_renders(self, initial):
        result = Simulator(initial, [InstanceSpec(make_incrementer(), {}, "READ COMMITTED")]).run()
        assert "committed" in result.summary()
