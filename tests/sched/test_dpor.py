"""Unit tests for the level-aware race analysis (repro.sched.dpor)."""

from repro.apps import banking
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Field, Item, Local, Param
from repro.engine.manager import HistoryOp
from repro.sched.dpor import (
    ANY_GRANULE,
    PROBE,
    RaceAnalyzer,
    accesses_conflict,
    may_deadlock,
    static_footprint,
)
from repro.sched.policy import DEPENDENT, ORDER_GRANULE, StepRecord, happens_before
from repro.sched.simulator import InstanceSpec


def incrementer(item="x"):
    return TransactionType(
        name=f"Inc_{item}",
        body=(Read(Local("v"), Item(item)), Write(Item(item), Local("v") + 1)),
    )


def rw_record(name="T", array="acct", index_param=True):
    """read field, write field — indices resolved from the parameter i."""
    i = Param("i")
    balance = Field(array, i, "bal")
    return TransactionType(
        name=name,
        params=(i,),
        body=(Read(Local("v"), balance), Write(balance, Local("v") + 1)),
    )


def op(kind, txn_id=1, key=None, **info):
    return HistoryOp(tick=0, txn_id=txn_id, kind=kind, key=key, info=info)


def step(depth, index, ops=(), txn_id=1, level="SERIALIZABLE", blocked_on=None):
    return StepRecord(
        depth=depth,
        index=index,
        txn_id=txn_id,
        level=level,
        ops=tuple(ops),
        blocked_on=blocked_on,
    )


class TestStaticFootprint:
    def test_item_incrementer_reads_and_writes_its_item(self):
        ghost, reads, writes = static_footprint(incrementer("x"), {})
        assert ghost == frozenset()
        assert reads == {("item", "x")}
        assert writes == {("item", "x")}

    def test_record_indices_resolve_from_params(self):
        _ghost, reads, writes = static_footprint(rw_record(), {"i": 3})
        assert reads == {("record", "acct", 3)}
        assert writes == {("record", "acct", 3)}

    def test_unresolvable_index_degrades_to_whole_array(self):
        _ghost, reads, _writes = static_footprint(rw_record(), {})
        assert ("record", "acct", None) in reads

    def test_banking_withdraw_has_ghost_granules(self):
        ghost, reads, writes = static_footprint(banking.WITHDRAW_SAV, {"i": 0, "w": 1})
        # the snapshot terms read both balances at begin
        assert ("record", "acct_sav", 0) in ghost
        assert ("record", "acct_ch", 0) in ghost
        assert ("record", "acct_sav", 0) in writes

    def test_table_statements_split_reads_from_writes(self):
        from repro.apps import tpcc

        _ghost, reads, writes = static_footprint(
            tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1}
        )
        assert ("table", "ORDERS") in writes  # Insert
        _ghost, reads, writes = static_footprint(tpcc.ORDER_STATUS, {"c": 0})
        assert ("table", "ORDERS") in reads  # Select
        assert ("table", "ORDERS") not in writes


class TestAccessConflict:
    def test_read_read_commutes(self):
        a = frozenset({(("item", "x"), False)})
        assert not accesses_conflict(a, a)

    def test_write_conflicts_with_read(self):
        r = frozenset({(("item", "x"), False)})
        w = frozenset({(("item", "x"), True)})
        assert accesses_conflict(r, w)

    def test_disjoint_granules_commute(self):
        a = frozenset({(("item", "x"), True)})
        b = frozenset({(("item", "y"), True)})
        assert not accesses_conflict(a, b)

    def test_probe_conflicts_with_write_but_not_probe(self):
        probe = frozenset({(("item", "x"), PROBE)})
        write = frozenset({(("item", "x"), True)})
        read = frozenset({(("item", "x"), False)})
        assert accesses_conflict(probe, write)
        assert accesses_conflict(probe, read)
        assert not accesses_conflict(probe, probe)

    def test_wildcard_conflicts_with_everything(self):
        any_w = frozenset({(ANY_GRANULE, True)})
        assert accesses_conflict(any_w, frozenset({(("item", "q"), False)}))

    def test_dependent_and_none_are_always_conflicting(self):
        a = frozenset({(("item", "x"), False)})
        assert accesses_conflict(DEPENDENT, a)
        assert accesses_conflict(None, a)

    def test_coarse_array_granule_overlaps_every_index(self):
        coarse = frozenset({(("record", "acct", None), True)})
        fine = frozenset({(("record", "acct", 7), False)})
        other = frozenset({(("record", "other", 7), True)})
        assert accesses_conflict(coarse, fine)
        assert not accesses_conflict(fine, other)


class TestMayDeadlock:
    def _specs(self, txn_types, levels, args=None):
        args = args or [{} for _ in txn_types]
        return [
            InstanceSpec(t, a, level, f"T{i}")
            for i, (t, a, level) in enumerate(zip(txn_types, args, levels))
        ]

    def _check(self, specs):
        footprints = [static_footprint(s.txn_type, s.args) for s in specs]
        return may_deadlock(specs, footprints)

    def test_same_item_upgrade_deadlocks_at_repeatable_read(self):
        # both hold S on x after the read, both then request X: the classic
        # single-granule upgrade deadlock
        specs = self._specs(
            [incrementer("x"), incrementer("x")],
            ["REPEATABLE READ", "REPEATABLE READ"],
        )
        assert self._check(specs)

    def test_disjoint_items_never_deadlock(self):
        specs = self._specs(
            [incrementer("x"), incrementer("y")],
            ["SERIALIZABLE", "SERIALIZABLE"],
        )
        assert not self._check(specs)

    def test_snapshot_holds_nothing(self):
        specs = self._specs(
            [incrementer("x"), incrementer("x")], ["SNAPSHOT", "SNAPSHOT"]
        )
        assert not self._check(specs)

    def test_read_committed_writers_cannot_upgrade_deadlock(self):
        # at RC the S lock is short: no hold-and-wait on a single granule
        specs = self._specs(
            [incrementer("x"), incrementer("x")],
            ["READ COMMITTED", "READ COMMITTED"],
        )
        assert not self._check(specs)


class TestOnlineSignature:
    def _analyzer(self, level="SERIALIZABLE"):
        specs = [
            InstanceSpec(incrementer("x"), {}, level, "T0"),
            InstanceSpec(incrementer("x"), {}, level, "T1"),
        ]
        return RaceAnalyzer(specs)

    def test_read_op_signature_is_a_read_access(self):
        analyzer = self._analyzer("READ COMMITTED")

        class FakeTxn:
            txn_id = 1

        class FakeRuntime:
            index = 0
            txn = FakeTxn()
            blocked = False
            last_block = None

            class spec:
                level = "READ COMMITTED"

        sig = analyzer.online_signature(FakeRuntime(), [op("r", key=("item", "x"))])
        assert sig == frozenset({(("item", "x"), False)})

    def test_empty_step_without_block_is_wildcard(self):
        analyzer = self._analyzer("READ COMMITTED")

        class FakeRuntime:
            index = 0
            txn = None
            blocked = False
            last_block = None

            class spec:
                level = "READ COMMITTED"

        assert analyzer.online_signature(FakeRuntime(), []) == frozenset(
            {(ANY_GRANULE, True)}
        )


class TestStepAccesses:
    def _analyzer(self, level="SERIALIZABLE"):
        return RaceAnalyzer(
            [
                InstanceSpec(incrementer("x"), {}, level, "T0"),
                InstanceSpec(incrementer("x"), {}, level, "T1"),
            ]
        )

    def test_snapshot_body_ops_are_private(self):
        analyzer = self._analyzer("SNAPSHOT")
        record = step(0, 0, [op("r", key=("item", "x"))], level="SNAPSHOT")
        assert analyzer.step_accesses(record, {}, False) == frozenset()

    def test_snapshot_begin_reads_the_whole_static_footprint(self):
        analyzer = self._analyzer("SNAPSHOT")
        record = step(0, 0, [op("begin")], level="SNAPSHOT")
        acc = analyzer.step_accesses(record, {}, False)
        assert (("item", "x"), False) in acc

    def test_begin_orders_only_when_deadlock_is_possible(self):
        analyzer = self._analyzer("SERIALIZABLE")
        record = step(0, 0, [op("begin")])
        with_order = analyzer.step_accesses(record, {}, True)
        without = analyzer.step_accesses(record, {}, False)
        assert (ORDER_GRANULE, True) in with_order
        assert (ORDER_GRANULE, True) not in without

    def test_commit_publishes_its_write_set(self):
        analyzer = self._analyzer()
        record = step(0, 0, [op("commit", writes=[("item", "x")])])
        acc = analyzer.step_accesses(record, {}, False)
        assert (("item", "x"), True) in acc

    def test_failed_si_commit_validation_reads_its_writes(self):
        analyzer = self._analyzer("SNAPSHOT")
        record = step(
            0,
            0,
            [op("abort", reason="first-committer-wins", writes=[("item", "x")])],
            level="SNAPSHOT",
        )
        acc = analyzer.step_accesses(record, {1: "SNAPSHOT"}, False)
        assert acc == frozenset({(("item", "x"), False)})

    def test_blocked_attempt_is_a_probe(self):
        analyzer = self._analyzer()
        record = step(0, 0, [], blocked_on=(("item", "x"), "X"))
        acc = analyzer.step_accesses(record, {}, False)
        assert acc == frozenset({(("item", "x"), PROBE)})


class TestHappensBefore:
    def test_program_order_is_always_inside(self):
        steps = [step(0, 0), step(1, 0)]
        pred = happens_before(steps, lambda i, j: False)
        assert pred[1] & 1  # step 0 precedes step 1

    def test_dependence_is_transitively_closed(self):
        steps = [step(0, 0), step(1, 1), step(2, 2)]
        dependent = lambda i, j: (i, j) in {(0, 1), (1, 2)}
        pred = happens_before(steps, dependent)
        assert pred[2] & 0b011 == 0b011  # both 0 and 1 precede 2

    def test_independent_steps_stay_unordered(self):
        steps = [step(0, 0), step(1, 1)]
        pred = happens_before(steps, lambda i, j: False)
        assert pred[1] & 1 == 0


class TestRaceDetection:
    def _analyzer(self):
        return RaceAnalyzer(
            [
                InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "T0"),
                InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "T1"),
            ]
        )

    def test_conflicting_writes_race(self):
        analyzer = self._analyzer()
        steps = [
            step(0, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
            step(1, 1, [op("w", txn_id=2, key=("item", "x"))], txn_id=2),
        ]
        races = analyzer.analyze(steps)
        assert len(races) == 1
        race = races[0]
        assert race.depth == 0
        assert race.preferred == 1
        assert race.initials == frozenset({1})

    def test_independent_steps_do_not_race(self):
        analyzer = RaceAnalyzer(
            [
                InstanceSpec(incrementer("x"), {}, "READ COMMITTED", "T0"),
                InstanceSpec(incrementer("y"), {}, "READ COMMITTED", "T1"),
            ]
        )
        steps = [
            step(0, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
            step(1, 1, [op("w", txn_id=2, key=("item", "y"))], txn_id=2),
        ]
        assert analyzer.analyze(steps) == []

    def test_shielded_pairs_are_not_immediate(self):
        # 0 -> 1 -> 2 all on x: (0, 2) is ordered through 1, only the
        # adjacent pairs are immediate races
        analyzer = self._analyzer()
        steps = [
            step(0, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
            step(1, 1, [op("w", txn_id=2, key=("item", "x"))], txn_id=2),
            step(2, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
        ]
        races = analyzer.analyze(steps)
        assert {(race.depth, race.preferred) for race in races} == {(0, 1), (1, 0)}

    def test_same_instance_never_races_with_itself(self):
        analyzer = self._analyzer()
        steps = [
            step(0, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
            step(1, 0, [op("w", txn_id=1, key=("item", "x"))], txn_id=1),
        ]
        assert analyzer.analyze(steps) == []

    def test_commit_commit_dependence_uses_full_footprints(self):
        # disjoint write sets, but T2 read what T1 wrote: commit order is
        # observable through the serial replay, so the commits race
        analyzer = self._analyzer()
        steps = [
            step(
                0,
                0,
                [op("commit", txn_id=1, writes=[("item", "x")])],
                txn_id=1,
            ),
            step(
                1,
                1,
                [op("commit", txn_id=2, writes=[("item", "y")], reads=[("item", "x")])],
                txn_id=2,
            ),
        ]
        races = analyzer.analyze(steps)
        assert len(races) == 1
