"""Unit tests for schedule result structures."""

import pytest

from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.sched.schedule import InstanceOutcome, ScheduleResult
from repro.sched.simulator import InstanceSpec, Simulator


def incrementer():
    return TransactionType(
        name="Inc",
        body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1)),
    )


@pytest.fixture
def result():
    specs = [
        InstanceSpec(incrementer(), {}, "READ COMMITTED", "A"),
        InstanceSpec(incrementer(), {}, "READ COMMITTED", "B", abort_after=1),
    ]
    return Simulator(DbState(items={"x": 0}), specs, script=[0, 0, 0, 1, 1]).run()


class TestScheduleResult:
    def test_committed_in_commit_order(self, result):
        assert [o.name for o in result.committed] == ["A"]

    def test_aborted_listed(self, result):
        assert [o.name for o in result.aborted] == ["B"]

    def test_outcome_by_name(self, result):
        assert result.outcome_by_name("A").committed
        with pytest.raises(KeyError):
            result.outcome_by_name("Z")

    def test_summary_mentions_counts(self, result):
        text = result.summary()
        assert "1 committed" in text and "1 aborted" in text

    def test_script_realised(self, result):
        assert result.script is not None
        assert all(index in (0, 1) for index in result.script)

    def test_initial_preserved(self, result):
        assert result.initial.read_item("x") == 0
        assert result.final.read_item("x") == 1


class TestInstanceOutcome:
    def test_committed_property(self):
        done = InstanceOutcome(0, "A", None, {}, "X", "committed")
        failed = InstanceOutcome(1, "B", None, {}, "X", "aborted")
        assert done.committed and not failed.committed

    def test_label_defaults(self):
        spec = InstanceSpec(incrementer(), {})
        assert spec.label(3) == "Inc#3"
        named = InstanceSpec(incrementer(), {}, name="Custom")
        assert named.label(3) == "Custom"

    def test_txn_ids_accumulate_across_restarts(self):
        specs = [
            InstanceSpec(incrementer(), {}, "READ COMMITTED FCW", "A"),
            InstanceSpec(incrementer(), {}, "READ COMMITTED FCW", "B"),
        ]
        result = Simulator(
            DbState(items={"x": 0}), specs, script=[0, 1, 0, 0, 1, 1] + [1] * 6,
            retry=True,
        ).run()
        restarted = result.outcome_by_name("B")
        assert restarted.restarts == 1
        assert len(restarted.txn_ids) == 2
