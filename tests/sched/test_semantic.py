"""Unit tests for the dynamic semantic-correctness checker."""

import pytest

from repro.core.formula import conj, eq, ge
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local, LogicalVar
from repro.sched.semantic import (
    check_semantic_correctness,
    serial_replay_matches,
    validate_level,
)
from repro.sched.simulator import InstanceSpec, Simulator


def deposit(amount_name="d"):
    """A deposit with the paper-style cumulative result bal >= BAL0 + d."""
    from repro.core.terms import Param

    d = Param(amount_name)
    return TransactionType(
        name="Deposit",
        params=(d,),
        body=(Read(Local("B"), Item("bal")), Write(Item("bal"), Local("B") + d)),
        consistency=ge(Item("bal"), 0),
        param_pre=ge(d, 0),
        result=ge(Item("bal"), LogicalVar("B0") + d),
        snapshot=((LogicalVar("B0"), Item("bal")),),
    )


INVARIANT = ge(Item("bal"), 0)


class TestSemanticCheck:
    def test_serial_schedule_correct(self):
        specs = [
            InstanceSpec(deposit(), {"d": 3}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 4}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"bal": 0}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        report = check_semantic_correctness(result, INVARIANT)
        assert report.correct
        assert report.serial_equivalent

    def test_lost_update_flagged(self):
        specs = [
            InstanceSpec(deposit(), {"d": 3}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 4}, "READ COMMITTED", "B"),
        ]
        # both read 0; B's deposit overwrites A's
        result = Simulator(DbState(items={"bal": 0}), specs, script=[0, 1, 0, 0, 1, 1]).run()
        report = check_semantic_correctness(result, INVARIANT)
        assert not report.correct
        assert any("Q_i" in v for v in report.result_violations)

    def test_invariant_violation_flagged(self):
        burn = TransactionType(
            name="Burn",
            body=(Write(Item("bal"), Local("z") - 1),),
        )
        # "z" unbound would fail; use a literal write instead
        from repro.core.terms import IntConst

        burn = TransactionType(
            name="Burn", body=(Write(Item("bal"), IntConst(-5)),)
        )
        result = Simulator(
            DbState(items={"bal": 0}), [InstanceSpec(burn, {}, "READ COMMITTED")]
        ).run()
        report = check_semantic_correctness(result, INVARIANT)
        assert not report.consistent
        assert "invariant violated" in report.summary()

    def test_violation_count_sums_all_clauses(self):
        from repro.sched.semantic import SemanticReport

        assert SemanticReport(consistent=True).violation_count == 0
        report = SemanticReport(
            consistent=False,
            result_violations=["a", "b"],
            cumulative_violations=["c"],
            serial_equivalent=False,  # informational, never counted
        )
        assert report.violation_count == 4

    def test_cumulative_hook_runs(self):
        def cumulative(initial, final, committed):
            expected = initial.read_item("bal") + sum(o.args["d"] for o in committed)
            if final.read_item("bal") != expected:
                return [f"balance {final.read_item('bal')} != sum {expected}"]
            return []

        specs = [
            InstanceSpec(deposit(), {"d": 3}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 4}, "READ COMMITTED", "B"),
        ]
        good = Simulator(DbState(items={"bal": 0}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        assert check_semantic_correctness(good, INVARIANT, cumulative).correct
        bad = Simulator(DbState(items={"bal": 0}), specs, script=[0, 1, 0, 0, 1, 1]).run()
        report = check_semantic_correctness(bad, INVARIANT, cumulative)
        assert report.cumulative_violations

    def test_q_checked_at_commit_time_not_final(self):
        # two sequential deposits: A's Q refers to its own start value and
        # must not be falsified by B's later deposit
        specs = [
            InstanceSpec(deposit(), {"d": 1}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 2}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"bal": 0}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        assert check_semantic_correctness(result, INVARIANT).correct


class TestSerialReplay:
    def test_matches_for_serial_run(self):
        specs = [
            InstanceSpec(deposit(), {"d": 2}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 5}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"bal": 1}), specs, script=[0, 0, 0, 1, 1, 1]).run()
        assert serial_replay_matches(result)

    def test_detects_divergence(self):
        specs = [
            InstanceSpec(deposit(), {"d": 3}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 4}, "READ COMMITTED", "B"),
        ]
        result = Simulator(DbState(items={"bal": 0}), specs, script=[0, 1, 0, 0, 1, 1]).run()
        assert not serial_replay_matches(result)


class TestValidateLevel:
    def test_zero_violations_at_serializable(self):
        specs = [
            InstanceSpec(deposit(), {"d": 2}, "SERIALIZABLE", "A"),
            InstanceSpec(deposit(), {"d": 5}, "SERIALIZABLE", "B"),
        ]
        tally = validate_level(DbState(items={"bal": 0}), specs, INVARIANT, rounds=20, seed=3)
        assert tally["violations"] == 0

    def test_violations_found_at_read_committed(self):
        specs = [
            InstanceSpec(deposit(), {"d": 2}, "READ COMMITTED", "A"),
            InstanceSpec(deposit(), {"d": 5}, "READ COMMITTED", "B"),
        ]
        tally = validate_level(
            DbState(items={"bal": 0}), specs, INVARIANT, rounds=30, seed=3, retry=False
        )
        assert tally["violations"] > 0
        assert tally["witnesses"]

    def test_fcw_repairs_lost_updates(self):
        specs = [
            InstanceSpec(deposit(), {"d": 2}, "READ COMMITTED FCW", "A"),
            InstanceSpec(deposit(), {"d": 5}, "READ COMMITTED FCW", "B"),
        ]
        tally = validate_level(DbState(items={"bal": 0}), specs, INVARIANT, rounds=20, seed=3)
        assert tally["violations"] == 0
