"""Tests for the run-time invalidation monitor."""

import pytest

from repro.apps import banking
from repro.core.formula import eq, ge, le
from repro.core.program import Read, TransactionType, Write
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.sched.monitor import AssertionMonitor, InvalidationEvent
from repro.sched.simulator import InstanceSpec, Simulator


def watcher():
    return TransactionType(
        name="Watcher",
        body=(
            Read(Local("v"), Item("x"), post=eq(Local("v"), Item("x"))),
            Read(Local("w"), Item("y")),  # keeps the instance running a step
        ),
    )


def setter(value):
    return TransactionType(name="Setter", body=(Write(Item("x"), value),))


class TestMonitorBasics:
    def test_invalidation_detected_and_attributed(self):
        from repro.core.terms import IntConst

        monitor = AssertionMonitor()
        specs = [
            InstanceSpec(watcher(), {}, "READ UNCOMMITTED", "W"),
            InstanceSpec(setter(IntConst(9)), {}, "READ COMMITTED", "S"),
        ]
        # W reads x (post active), S overwrites x, W finishes
        sim = Simulator(
            DbState(items={"x": 1, "y": 0}), specs, script=[0, 1, 0, 0, 1],
            observers=[monitor],
        )
        sim.run()
        assert monitor.events
        event = monitor.events[0]
        assert event.holder == "W"
        assert event.by == "S"
        assert "post(read#0" in event.assertion

    def test_no_invalidation_in_serial_run(self):
        from repro.core.terms import IntConst

        monitor = AssertionMonitor()
        specs = [
            InstanceSpec(watcher(), {}, "READ UNCOMMITTED", "W"),
            InstanceSpec(setter(IntConst(9)), {}, "READ COMMITTED", "S"),
        ]
        sim = Simulator(
            DbState(items={"x": 1, "y": 0}), specs, script=[0, 0, 0, 0, 1, 1],
            observers=[monitor],
        )
        sim.run()
        assert monitor.invalidations_of("W") == []

    def test_monotone_post_not_invalidated_by_increase(self):
        mono = TransactionType(
            name="Mono",
            body=(
                Read(Local("v"), Item("x"), post=le(Local("v"), Item("x"))),
                Read(Local("w"), Item("y")),
            ),
        )
        bump = TransactionType(
            name="Bump",
            body=(Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1)),
        )
        monitor = AssertionMonitor()
        specs = [
            InstanceSpec(mono, {}, "READ UNCOMMITTED", "M"),
            InstanceSpec(bump, {}, "READ COMMITTED", "B"),
        ]
        sim = Simulator(
            DbState(items={"x": 1, "y": 0}), specs, script=[0, 1, 1, 0, 0, 1],
            observers=[monitor],
        )
        sim.run()
        assert monitor.invalidations_of("M") == []

    def test_summary_renders(self):
        monitor = AssertionMonitor()
        assert monitor.summary() == "no invalidations observed"
        monitor.events.append(InvalidationEvent(1, "A", "Q_i", "B"))
        assert "invalidated" in monitor.summary()


class TestMonitorOnWriteSkew:
    def test_write_skew_invalidation_pinpointed(self):
        """The monitor shows T2's debit killing T1's read-step bound."""
        monitor = AssertionMonitor(include_results=False)
        initial = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        sim = Simulator(
            initial, specs,
            # T1 reads its snapshot; T2 runs to commit; T1 then finishes —
            # T2's published debit invalidates T1's still-active read bound
            script=[0, 0, 1, 1, 1, 1, 1, 0, 0, 0],
            observers=[monitor],
        )
        sim.run()
        t1_hits = monitor.invalidations_of("T1")
        assert t1_hits
        assert all(event.by == "T2" for event in t1_hits)
