"""Cross-module integration tests: analysis verdicts meet the engine.

Each test here stitches at least three subsystems together (static
analysis, engine simulation, dynamic checking) on scenarios the unit
suites cover only in isolation.
"""

import pytest

from repro import (
    AssertionGuard,
    DbState,
    InstanceSpec,
    InterferenceChecker,
    Simulator,
    check_semantic_correctness,
    choose_level,
)
from repro.core.conditions import EXTENDED_LADDER, READ_COMMITTED_FCW
from repro.sched.semantic import validate_level


class TestExtendedLadderChooser:
    def test_fcw_chosen_when_it_is_the_boundary(self):
        """A read-modify-write counter lands exactly on RC-FCW in the
        extended ladder (plain RC loses updates, FCW repairs them)."""
        from repro.core.application import Application
        from repro.core.domains import DomainSpec, ItemDomain
        from repro.core.formula import eq, ge
        from repro.core.program import Read, TransactionType, Write
        from repro.core.terms import Item, Local, LogicalVar

        counter = TransactionType(
            name="Counter",
            body=(
                Read(Local("v"), Item("x"), post=eq(Local("v"), Item("x"))),
                Write(Item("x"), Local("v") + 1),
            ),
            consistency=ge(Item("x"), 0),
            result=eq(Item("x"), LogicalVar("X0") + 1),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )
        app = Application(
            "counters", (counter,), spec=DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
        )
        checker = InterferenceChecker(app.spec, budget=2000, seed=0)
        choice = choose_level(app, "Counter", checker, ladder=EXTENDED_LADDER)
        assert choice.level == READ_COMMITTED_FCW

    def test_fcw_verdict_validates_dynamically(self):
        from repro.core.formula import eq, ge
        from repro.core.program import Read, TransactionType, Write
        from repro.core.terms import Item, Local, LogicalVar

        counter = TransactionType(
            name="Counter",
            body=(
                Read(Local("v"), Item("x")),
                Write(Item("x"), Local("v") + 1),
            ),
            consistency=ge(Item("x"), 0),
            result=eq(Item("x"), LogicalVar("X0") + 1),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )
        initial = DbState(items={"x": 0})
        for level, expect_clean in (("READ COMMITTED", False), ("READ COMMITTED FCW", True)):
            specs = [
                InstanceSpec(counter, {}, level, "A"),
                InstanceSpec(counter, {}, level, "B"),
            ]
            tally = validate_level(initial, specs, ge(Item("x"), 0), rounds=40, seed=2)
            if expect_clean:
                assert tally["violations"] == 0, level
            else:
                assert tally["violations"] > 0, level


class TestGuardedOrdersWorkload:
    def test_order_entry_mixed_assignment_is_clean(self):
        """The Section 6 chooser assignment survives a mixed workload."""
        from repro.apps import orders
        from repro.workloads.generator import (
            WorkloadConfig,
            order_entry_initial,
            order_entry_workload,
        )
        from repro.workloads.runner import run_workload

        assignment = {
            "Mailing_List": "READ UNCOMMITTED",
            "New_Order": "READ COMMITTED",
            "Delivery": "REPEATABLE READ",
            "Audit": "SERIALIZABLE",
        }
        specs = order_entry_workload(
            WorkloadConfig(size=8, hot_fraction=0.4, seed=5), levels=assignment
        )
        metrics = run_workload(
            order_entry_initial(), specs, rounds=4, seed=6,
            invariant=orders.invariant("no_gap"),
        )
        assert metrics.semantic_violations == 0
        assert metrics.committed > 0

    def test_order_entry_all_ru_violates(self):
        from repro.apps import orders
        from repro.workloads.generator import (
            WorkloadConfig,
            order_entry_initial,
            order_entry_workload,
        )
        from repro.sched.simulator import Simulator as Sim

        # inject a rolling-back New_Order into an otherwise RU workload
        new_order = orders.make_new_order("no_gap")
        specs = [
            InstanceSpec(
                new_order,
                {"customer": "b", "address": "x", "order_info": 50},
                "READ UNCOMMITTED",
                "T1",
            ),
            InstanceSpec(
                new_order,
                {"customer": "c", "address": "x", "order_info": 51},
                "READ COMMITTED",
                "T2",
                abort_after=5,
            ),
        ]
        sim = Sim(
            order_entry_initial(), specs, script=[1, 1, 0, 1, 1, 1] + [0] * 8
        )
        result = sim.run()
        report = check_semantic_correctness(result, orders.invariant("no_gap"))
        assert not report.correct


class TestMonitorAgreesWithStaticAnalysis:
    def test_static_witness_replays_as_invalidation(self):
        """A BMC interference witness and the run-time monitor agree."""
        from repro.apps import banking
        from repro.core.conditions import SNAPSHOT, check_transaction_at
        from repro.sched.monitor import AssertionMonitor

        app = banking.make_application()
        checker = InterferenceChecker(app.spec, budget=3000, seed=1)
        static = check_transaction_at(
            app, app.transaction("Withdraw_sav"), SNAPSHOT, checker
        )
        statically_unsafe = {ob.source for ob in static.failures}
        assert statically_unsafe == {"Withdraw_ch"}

        monitor = AssertionMonitor(include_results=False)
        initial = DbState(
            arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}}
        )
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        sim = Simulator(
            initial, specs, script=[0, 0, 1, 1, 1, 1, 1, 0, 0, 0], observers=[monitor]
        )
        sim.run()
        dynamically_unsafe = {e.by for e in monitor.invalidations_of("T1")}
        assert dynamically_unsafe == {"T2"}
