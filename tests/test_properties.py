"""Property-based tests (hypothesis) for the core invariants.

These cover the algebraic laws everything else leans on:

* substitution and simplification preserve evaluation;
* the prover's models genuinely satisfy/falsify their formulas;
* strongest postconditions are sound w.r.t. concrete execution;
* whole-transaction symbolic stores agree with concrete runs;
* engine aborts restore the pre-transaction state exactly;
* serial engine execution agrees with the direct interpreter;
* two-phase-locked (SERIALIZABLE) schedules are conflict-serializable.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import formula as fm
from repro.core import terms as tm
from repro.core.formula import FALSE, Not, TRUE, conj, disj
from repro.core.prover import Verdict, is_satisfiable, is_valid, simplify, simplify_term
from repro.core.state import DbState

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

ITEM_NAMES = ("x", "y", "z")
LOCAL_NAMES = ("u", "v")

small_ints = st.integers(min_value=-4, max_value=4)


def atom_terms():
    return st.one_of(
        small_ints.map(tm.IntConst),
        st.sampled_from(ITEM_NAMES).map(tm.Item),
        st.sampled_from(LOCAL_NAMES).map(tm.Local),
    )


def int_terms(depth=2):
    if depth == 0:
        return atom_terms()
    sub = int_terms(depth - 1)
    return st.one_of(
        atom_terms(),
        st.builds(tm.Add, sub, sub),
        st.builds(tm.Sub, sub, sub),
        st.builds(tm.Neg, sub),
    )


def comparisons():
    ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])
    return st.builds(fm.Cmp, ops, int_terms(), int_terms())


def formulas(depth=2):
    if depth == 0:
        return comparisons()
    sub = formulas(depth - 1)
    return st.one_of(
        comparisons(),
        st.builds(Not, sub),
        st.builds(lambda a, b: conj(a, b), sub, sub),
        st.builds(lambda a, b: disj(a, b), sub, sub),
        st.builds(fm.Implies, sub, sub),
    )


def environments():
    return st.fixed_dictionaries(
        {tm.Local(name): small_ints for name in LOCAL_NAMES}
    )


def states():
    return st.fixed_dictionaries({name: small_ints for name in ITEM_NAMES}).map(
        lambda items: DbState(items=dict(items))
    )


# ---------------------------------------------------------------------------
# evaluation laws
# ---------------------------------------------------------------------------


@given(formulas(), states(), environments())
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_evaluation(formula, state, env):
    assert formula.evaluate(state, env) == simplify(formula).evaluate(state, env)


@given(int_terms(), states(), environments())
@settings(max_examples=150, deadline=None)
def test_simplify_term_preserves_evaluation(term, state, env):
    assert term.evaluate(state, env) == simplify_term(term).evaluate(state, env)


@given(int_terms(), small_ints, states(), environments())
@settings(max_examples=100, deadline=None)
def test_substitution_agrees_with_environment_update(term, value, state, env):
    """term[u := c] evaluated == term evaluated with u bound to c."""
    target = tm.Local("u")
    substituted = term.substitute({target: tm.IntConst(value)})
    env_updated = dict(env)
    env_updated[target] = value
    assert substituted.evaluate(state, env) == term.evaluate(state, env_updated)


@given(formulas(), small_ints, states(), environments())
@settings(max_examples=100, deadline=None)
def test_formula_substitution_agrees_with_environment(formula, value, state, env):
    target = tm.Local("u")
    substituted = formula.substitute({target: tm.IntConst(value)})
    env_updated = dict(env)
    env_updated[target] = value
    assert substituted.evaluate(state, env) == formula.evaluate(state, env_updated)


# ---------------------------------------------------------------------------
# prover soundness
# ---------------------------------------------------------------------------


def _model_env(model):
    env = {}
    state = DbState(items={name: 0 for name in ITEM_NAMES})
    for term, value in (model or {}).items():
        if isinstance(term, tm.Item):
            state.write_item(term.name, value)
        else:
            env[term] = value
    for name in LOCAL_NAMES:
        env.setdefault(tm.Local(name), 0)
    return state, env


@given(formulas())
@settings(max_examples=120, deadline=None)
def test_sat_models_satisfy(formula):
    result = is_satisfiable(formula)
    if result.verdict == Verdict.SAT:
        state, env = _model_env(result.model)
        assert formula.evaluate(state, env)


@given(formulas())
@settings(max_examples=120, deadline=None)
def test_invalid_counterexamples_falsify(formula):
    result = is_valid(formula)
    if result.verdict == Verdict.INVALID:
        state, env = _model_env(result.model)
        assert not formula.evaluate(state, env)


@given(formulas(), states(), environments())
@settings(max_examples=120, deadline=None)
def test_valid_formulas_hold_everywhere(formula, state, env):
    if is_valid(formula).verdict == Verdict.VALID:
        assert formula.evaluate(state, env)


@given(formulas(), states(), environments())
@settings(max_examples=120, deadline=None)
def test_unsat_formulas_hold_nowhere(formula, state, env):
    if is_satisfiable(formula).verdict == Verdict.UNSAT:
        assert not formula.evaluate(state, env)


# ---------------------------------------------------------------------------
# strongest postconditions vs concrete execution
# ---------------------------------------------------------------------------


@given(formulas(depth=1), states(), environments(), st.sampled_from(ITEM_NAMES))
@settings(max_examples=100, deadline=None)
def test_sp_sound_for_reads(pre, state, env, item):
    """If P holds before a read, sp(P, read) holds after."""
    from repro.core.program import Read
    from repro.core.sp import sp_statement

    if not pre.evaluate(state, env):
        return
    stmt = Read(tm.Local("u"), tm.Item(item))
    post = sp_statement(pre, stmt).formula
    env_after = dict(env)
    stmt.execute(state, env_after)
    # skolem ghosts: bind them to the overwritten value so the witness works
    ghosts = {
        atom: env[tm.Local("u")]
        for atom in post.atoms()
        if isinstance(atom, tm.LogicalVar) and atom.name.startswith("v!")
    }
    env_after.update(ghosts)
    assert post.evaluate(state, env_after)


@given(formulas(depth=1), states(), environments(), st.sampled_from(ITEM_NAMES))
@settings(max_examples=100, deadline=None)
def test_sp_sound_for_writes(pre, state, env, item):
    from repro.core.program import Write
    from repro.core.sp import sp_statement

    if not pre.evaluate(state, env):
        return
    stmt = Write(tm.Item(item), tm.Local("u"))
    post = sp_statement(pre, stmt).formula
    old_value = state.read_item(item)
    env_after = dict(env)
    stmt.execute(state, env_after)
    ghosts = {
        atom: old_value
        for atom in post.atoms()
        if isinstance(atom, tm.LogicalVar) and atom.name.startswith("v!")
    }
    env_after.update(ghosts)
    assert post.evaluate(state, env_after)


# ---------------------------------------------------------------------------
# symbolic effects vs concrete execution
# ---------------------------------------------------------------------------


@given(states(), small_ints)
@settings(max_examples=80, deadline=None)
def test_symbolic_store_matches_concrete_run(state, delta):
    from repro.core.effects import symbolic_paths
    from repro.core.formula import ge
    from repro.core.program import If, Read, TransactionType, Write

    txn = TransactionType(
        name="T",
        body=(
            Read(tm.Local("u"), tm.Item("x")),
            If(
                ge(tm.Local("u"), 0),
                then=(Write(tm.Item("x"), tm.Local("u") + delta),),
                orelse=(Write(tm.Item("y"), tm.Local("u") - delta),),
            ),
        ),
    )
    initial = state.copy()
    concrete = state.copy()
    txn.run(concrete, {})
    paths = symbolic_paths(txn)
    # exactly one path condition is satisfied by the initial state
    matching = [
        p
        for p in paths
        if _eval_condition(p.condition, initial)
    ]
    assert len(matching) == 1
    store = matching[0].store
    for target, value in store.items():
        assert isinstance(target, tm.Item)
        assert concrete.read_item(target.name) == value.evaluate(initial, {})


def _eval_condition(condition, state):
    try:
        return condition.evaluate(state, {})
    except Exception:
        return False


# ---------------------------------------------------------------------------
# engine invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.sampled_from(ITEM_NAMES), small_ints), min_size=1, max_size=6
    ),
    states(),
)
@settings(max_examples=80, deadline=None)
def test_abort_restores_state_exactly(writes, initial):
    from repro.engine.manager import Engine

    engine = Engine(initial.copy())
    txn = engine.begin("READ COMMITTED")
    for item, value in writes:
        engine.write_item(txn, item, value)
    engine.abort(txn)
    assert engine.committed_state().same_as(initial)
    assert engine.live_state().same_as(initial)


@given(states(), st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_serial_engine_run_matches_interpreter(initial, bump):
    """One transaction through the engine == TransactionType.run."""
    from repro.core.program import Read, TransactionType, Write
    from repro.engine.manager import Engine
    from repro.sched.simulator import InstanceSpec, Simulator

    txn_type = TransactionType(
        name="T",
        body=(
            Read(tm.Local("u"), tm.Item("x")),
            Write(tm.Item("x"), tm.Local("u") + bump),
            Read(tm.Local("w"), tm.Item("y")),
            Write(tm.Item("z"), tm.Local("w")),
        ),
    )
    direct = initial.copy()
    txn_type.run(direct, {})
    result = Simulator(initial.copy(), [InstanceSpec(txn_type, {}, "SERIALIZABLE")]).run()
    assert result.final.same_as(direct)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_serializable_schedules_are_conflict_serializable(seed):
    from repro.core.program import Read, TransactionType, Write
    from repro.sched.serializability import check_conflict_serializability
    from repro.sched.simulator import InstanceSpec, Simulator

    def rw(read_item, write_item):
        return TransactionType(
            name=f"T_{read_item}{write_item}",
            body=(
                Read(tm.Local("u"), tm.Item(read_item)),
                Write(tm.Item(write_item), tm.Local("u") + 1),
            ),
        )

    specs = [
        InstanceSpec(rw("x", "y"), {}, "SERIALIZABLE", "A"),
        InstanceSpec(rw("y", "z"), {}, "SERIALIZABLE", "B"),
        InstanceSpec(rw("z", "x"), {}, "SERIALIZABLE", "C"),
    ]
    initial = DbState(items={"x": 0, "y": 0, "z": 0})
    result = Simulator(initial, specs, seed=seed, retry=True).run()
    assert check_conflict_serializability(result).serializable


# ---------------------------------------------------------------------------
# parser round trips
# ---------------------------------------------------------------------------


@given(formulas(), states(), environments())
@settings(max_examples=150, deadline=None)
def test_parser_round_trips_generated_formulas(formula, state, env):
    """Round-tripped formulas are structurally equal after normalisation
    (the parser folds ``- 1`` into the literal ``-1``) and always agree on
    evaluation."""
    from repro.core.parser import parse_formula, unparse_formula

    round_tripped = parse_formula(unparse_formula(formula))
    assert simplify(round_tripped) == simplify(formula)
    assert round_tripped.evaluate(state, env) == formula.evaluate(state, env)


@given(int_terms(), states(), environments())
@settings(max_examples=150, deadline=None)
def test_parser_round_trips_generated_terms(term, state, env):
    from repro.core.parser import parse_term, unparse_term

    round_tripped = parse_term(unparse_term(term))
    assert simplify_term(round_tripped) == simplify_term(term)
    assert round_tripped.evaluate(state, env) == term.evaluate(state, env)
