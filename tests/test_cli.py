"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "banking"])
        assert args.app == "banking"
        assert args.budget == 3000
        assert args.ladder == "ansi"


class TestCommands:
    def test_apps_lists_bundled(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("banking", "customers", "employees", "orders", "tpcc"):
            assert name in out

    def test_levels_ordered(self, capsys):
        assert main(["levels"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "READ UNCOMMITTED"
        assert lines[-1] == "SERIALIZABLE"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nope"])

    def test_replay_prints_steps(self, capsys):
        code = main(["replay", "w1[x=1] r2[x] c1 c2", "--levels", "2=READ UNCOMMITTED"])
        assert code == 0
        out = capsys.readouterr().out
        assert "r2[x]" in out and "-> 1" in out

    def test_replay_blocked_step_reported(self, capsys):
        main(["replay", "w1[x=1] r2[x] c1 c2"])  # both default READ COMMITTED
        out = capsys.readouterr().out
        assert "blocked" in out

    def test_simulate_banking(self, capsys):
        code = main(
            ["simulate", "banking", "--level", "READ COMMITTED", "--size", "4",
             "--rounds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_analyze_single_transaction(self, capsys):
        code = main(
            ["analyze", "employees", "--transaction", "Print_Record",
             "--level", "READ COMMITTED", "--budget", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Print_Record" in out

    def test_analyze_failing_transaction_exit_code(self, capsys):
        code = main(
            ["analyze", "banking", "--transaction", "Withdraw_sav",
             "--level", "SNAPSHOT", "--budget", "2000"]
        )
        assert code == 1
        assert "INTERFERES" in capsys.readouterr().out

    def test_analyze_full_app(self, capsys):
        code = main(["analyze", "employees", "--budget", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Print_Record" in out and "lowest correct level" in out


class TestGuardOption:
    def test_simulate_with_guard(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            ["simulate", "banking", "--level", "SNAPSHOT", "--size", "4",
             "--rounds", "2", "--guard"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "assertional concurrency control: ON" in out


class TestLevelOverrides:
    def test_simulate_with_mixed_levels(self, capsys):
        code = main(
            ["simulate", "banking", "--level", "REPEATABLE READ",
             "--levels", "Deposit_sav=READ COMMITTED",
             "--levels", "Deposit_ch=READ COMMITTED",
             "--size", "4", "--rounds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "READ COMMITTED" in out and "REPEATABLE READ" in out

    def test_malformed_level_assignment_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "banking", "--levels", "Withdraw_sav", "--size", "2"])

    def test_unknown_level_name_rejected(self):
        with pytest.raises(SystemExit, match="unknown isolation level"):
            main(["simulate", "banking", "--levels", "Withdraw_sav=READ COMITTED",
                  "--size", "2"])

    def test_unknown_transaction_type_rejected(self):
        with pytest.raises(SystemExit, match="unknown transaction type"):
            main(["simulate", "banking", "--levels", "Withdraw=READ COMMITTED",
                  "--size", "2"])

    def test_unknown_uniform_level_rejected(self):
        with pytest.raises(SystemExit, match="unknown isolation level"):
            main(["simulate", "banking", "--level", "SNAPSHOTISH", "--size", "2"])

    def test_explore_validates_override_names(self):
        with pytest.raises(SystemExit, match="unknown transaction type"):
            main(["explore", "banking", "--scenario", "withdraw-race",
                  "--levels", "Withdrew_sav=READ COMMITTED"])

    def test_explore_validates_override_levels(self):
        with pytest.raises(SystemExit, match="unknown isolation level"):
            main(["explore", "banking", "--scenario", "withdraw-race",
                  "--levels", "Withdraw_sav=RC"])

    def test_replay_validates_levels(self):
        with pytest.raises(SystemExit, match="unknown isolation level"):
            main(["replay", "w1[x=1] c1", "--levels", "1=NOPE"])
        with pytest.raises(SystemExit, match="numeric"):
            main(["replay", "w1[x=1] c1", "--levels", "one=READ COMMITTED"])


class TestExhaustiveSimulate:
    def test_simulate_policy_exhaustive(self, capsys):
        code = main(
            ["simulate", "banking", "--policy", "exhaustive",
             "--level", "READ COMMITTED", "--size", "2", "--max-schedules", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy:     exhaustive" in out
        assert "schedules:" in out


class TestExploreCommand:
    def test_explore_finds_rc_lost_update(self, capsys):
        code = main(
            ["explore", "banking", "--scenario", "withdraw-race",
             "--level", "READ COMMITTED"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "semantic violations:" in out
        assert "repro replay" in out

    def test_explore_clean_at_repeatable_read(self, capsys):
        code = main(
            ["explore", "banking", "--scenario", "withdraw-race",
             "--level", "REPEATABLE READ"]
        )
        assert code == 0
        assert "semantic violations: 0" in capsys.readouterr().out

    def test_explore_json_payload(self, capsys):
        import json as json_module

        code = main(
            ["explore", "banking", "--scenario", "withdraw-race",
             "--level", "READ COMMITTED", "--json"]
        )
        assert code == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload[0]["scenario"] == "withdraw-race"
        assert payload[0]["violations"] > 0
        assert payload[0]["witnesses"][0]["history"]

    def test_explore_requires_scenario_choice(self):
        with pytest.raises(SystemExit):
            main(["explore", "banking"])

    def test_explore_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "banking", "--scenario", "nope"])

    def test_explore_app_without_scenarios_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "employees"])


class TestJsonOutput:
    def test_analyze_single_transaction_json(self, capsys):
        import json as json_module

        code = main(
            ["analyze", "employees", "--transaction", "Print_Record",
             "--level", "READ COMMITTED", "--budget", "3000", "--json"]
        )
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["transaction"] == "Print_Record"
        assert payload["ok"] is True

    def test_analyze_full_app_json(self, capsys):
        import json as json_module

        code = main(["analyze", "employees", "--budget", "3000", "--json"])
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["application"] == "employees"
        assert "levels" in payload and "tiers" in payload and "cache" in payload


class TestCertifyCommand:
    def test_certify_parser_defaults(self):
        args = build_parser().parse_args(["certify", "banking"])
        assert args.app == "banking"
        assert args.ladder == "ansi"
        assert args.max_schedules == 500

    def test_certify_banking_agreement(self, capsys):
        import json as json_module

        code = main(["certify", "banking", "--json"])
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["agreement"] is True
        assert {v["transaction"] for v in payload["verdicts"]} == {
            "Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch",
        }
        assert payload["sdg"]["disagreements"] == []


class TestSdgFlag:
    def test_analyze_prunes_by_default(self, capsys):
        import json as json_module

        code = main(["analyze", "employees", "--budget", "2000", "--no-cache",
                     "--json"])
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["tiers"]["sdg_pruned"] > 0

    def test_no_sdg_disables_pruning_same_levels(self, capsys):
        import json as json_module

        main(["analyze", "employees", "--budget", "2000", "--no-cache", "--json"])
        with_sdg = json_module.loads(capsys.readouterr().out)
        code = main(["analyze", "employees", "--budget", "2000", "--no-cache",
                     "--no-sdg", "--json"])
        assert code == 0
        without = json_module.loads(capsys.readouterr().out)
        assert without["tiers"]["sdg_pruned"] == 0
        assert without["tiers"]["disjoint"] > 0
        assert with_sdg["levels"] == without["levels"]


class TestLintCommand:
    def test_lint_bundled_apps_clean(self, capsys):
        code = main(["lint"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("banking", "customers", "employees", "orders", "tpcc"):
            assert f"lint {name}" in out

    def test_lint_single_app_json(self, capsys):
        import json as json_module

        code = main(["lint", "banking", "--json"])
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["application"] == "banking"
        assert payload[0]["ok"] is True
        rules = {f["rule"] for f in payload[0]["findings"]}
        assert "sdg-write-skew" in rules

    def test_lint_unknown_app_rejected(self):
        with pytest.raises(SystemExit, match="unknown application"):
            main(["lint", "nope"])


class TestVersionAndExitCodes:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_repro_error_maps_to_usage_exit(self, capsys, monkeypatch):
        from repro.errors import ReproError

        def explode(args):
            raise ReproError("bad input")

        monkeypatch.setattr("repro.cli.cmd_apps", explode)
        code = main(["apps"])
        assert code == 2
        assert "repro: error: bad input" in capsys.readouterr().err

    def test_internal_error_maps_to_exit_3(self, capsys, monkeypatch):
        def explode(args):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr("repro.cli.cmd_apps", explode)
        code = main(["apps"])
        assert code == 3
        err = capsys.readouterr().err
        assert "repro: internal error: RuntimeError: wires crossed" in err
        assert "Traceback" not in err

    def test_submit_unreachable_server_exit_4(self, capsys):
        code = main(["submit", "lint", "banking", "--port", "1", "--timeout", "2"])
        assert code == 4
        assert "cannot reach repro service" in capsys.readouterr().err


class TestServeAndFleetFlags:
    def test_serve_defaults_to_single_process(self):
        args = build_parser().parse_args(["serve"])
        assert args.fleet == 0
        assert args.max_inflight == 32
        assert args.persist_interval is None

    def test_fleet_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--fleet", "4", "--max-inflight", "8",
             "--persist-interval", "2.5"]
        )
        assert args.fleet == 4
        assert args.max_inflight == 8
        assert args.persist_interval == 2.5

    def test_serve_rejects_zero_queue_limit(self, capsys):
        code = main(["serve", "--queue-limit", "0"])
        assert code == 2
        assert "max_pending" in capsys.readouterr().err

    def test_serve_rejects_zero_workers(self, capsys):
        code = main(["serve", "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_serve_rejects_persist_interval_with_no_persist(self, capsys):
        code = main(["serve", "--no-persist", "--persist-interval", "5"])
        assert code == 2
        assert "persist_interval" in capsys.readouterr().err

    def test_fleet_rejects_nonpositive_max_inflight(self, capsys):
        code = main(["serve", "--fleet", "2", "--max-inflight", "0"])
        assert code == 2
        assert "max_inflight" in capsys.readouterr().err


class TestCompactCommand:
    def _seed_segments(self, directory, count=3):
        from repro.core.cache import FORMULA_SCOPE, VerdictCache
        from repro.core.interference import InterferenceVerdict
        from repro.core.persist import PersistentStore

        for i in range(count):
            cache = VerdictCache()
            cache.store(
                FORMULA_SCOPE,
                f"key-{i}",
                InterferenceVerdict(
                    interferes=False, confidence="proved", method="symbolic"
                ),
            )
            PersistentStore(directory).flush(cache)

    def test_compact_merges_segments(self, tmp_path, capsys):
        from repro.core.cache import VerdictCache
        from repro.core.persist import PersistentStore

        self._seed_segments(tmp_path, count=3)
        code = main(["compact", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "compacted 3 segments into 1" in out
        store = PersistentStore(tmp_path)
        assert store.segment_count() == 1
        cache = VerdictCache()
        assert store.load(cache) == 3

    def test_compact_empty_directory_is_a_noop(self, tmp_path, capsys):
        code = main(["compact", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "no verdict segments" in capsys.readouterr().out

    def test_compact_env_fallback(self, tmp_path, capsys, monkeypatch):
        self._seed_segments(tmp_path, count=2)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["compact"])
        assert code == 0
        assert "compacted 2 segments" in capsys.readouterr().out


class TestInferCommand:
    def test_infer_seed_range_expands_to_one_report_per_seed(self, capsys):
        import json

        code = main(["infer", "appgen:0..2", "--json"])
        assert code == 0
        payloads = json.loads(capsys.readouterr().out)
        assert isinstance(payloads, list)
        assert len(payloads) == 2
        for payload in payloads:
            assert "levels" in payload
            assert "disagreements" in payload

    def test_infer_single_ref_emits_one_object(self, capsys):
        import json

        code = main(["infer", "appgen:0", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, dict)
        assert payload["disagreements"] == []

    def test_declared_apps_report_disagreements_structurally(self, capsys):
        import json

        main(["infer", "banking", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "agreement" in payload
        for entry in payload["disagreements"]:
            assert set(entry) == {"transaction", "declared", "inferred"}

    def test_generator_knobs_rejected_for_registry_apps(self, capsys):
        code = main(["infer", "banking", "--txns", "3..5"])
        assert code == 2
        assert "appgen" in capsys.readouterr().err


class TestFuzzCommand:
    def test_fuzz_parser_defaults(self):
        args = build_parser().parse_args(["fuzz", "--seeds", "10"])
        assert args.app is None
        assert args.seeds == 10
        assert args.corpus_dir == ".repro-corpus"
        assert args.budget == 1500
        assert args.pairs == 3
        assert args.max_schedules == 96
        assert args.inflight == 8
        assert not args.no_shrink

    def test_fuzz_requires_exactly_one_seed_source(self, tmp_path, capsys):
        assert main(["fuzz", "--corpus-dir", str(tmp_path)]) == 2
        assert "either" in capsys.readouterr().err
        code = main(
            ["fuzz", "appgen:0..2", "--seeds", "3", "--corpus-dir", str(tmp_path)]
        )
        assert code == 2

    def test_fuzz_rejects_registry_apps(self, tmp_path, capsys):
        code = main(["fuzz", "banking", "--corpus-dir", str(tmp_path)])
        assert code == 2
        assert "appgen" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_force_level(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["fuzz", "appgen:0", "--force-level", "CASUAL",
                 "--corpus-dir", str(tmp_path)]
            )

    def test_fuzz_json_summary_and_warm_rerun(self, tmp_path, capsys):
        import json

        argv = ["fuzz", "appgen:0..1", "--corpus-dir", str(tmp_path), "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["summary"]["explored"] == 1
        assert cold["summary"]["verdicts"]["UNSOUND"] == 0
        assert cold["findings"] == []

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["summary"]["explored"] == 0
        assert warm["summary"]["skip_rate"] == 1.0

    def test_fuzz_unsound_exit_code_and_witness(self, tmp_path, capsys):
        code = main(
            ["fuzz", "appgen:0", "--force-level", "READ COMMITTED",
             "--corpus-dir", str(tmp_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "UNSOUND" in out
        assert "repro replay" in out
