"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "banking"])
        assert args.app == "banking"
        assert args.budget == 3000
        assert args.ladder == "ansi"


class TestCommands:
    def test_apps_lists_bundled(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("banking", "customers", "employees", "orders", "tpcc"):
            assert name in out

    def test_levels_ordered(self, capsys):
        assert main(["levels"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "READ UNCOMMITTED"
        assert lines[-1] == "SERIALIZABLE"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nope"])

    def test_replay_prints_steps(self, capsys):
        code = main(["replay", "w1[x=1] r2[x] c1 c2", "--levels", "2=READ UNCOMMITTED"])
        assert code == 0
        out = capsys.readouterr().out
        assert "r2[x]" in out and "-> 1" in out

    def test_replay_blocked_step_reported(self, capsys):
        main(["replay", "w1[x=1] r2[x] c1 c2"])  # both default READ COMMITTED
        out = capsys.readouterr().out
        assert "blocked" in out

    def test_simulate_banking(self, capsys):
        code = main(
            ["simulate", "banking", "--level", "READ COMMITTED", "--size", "4",
             "--rounds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_analyze_single_transaction(self, capsys):
        code = main(
            ["analyze", "employees", "--transaction", "Print_Record",
             "--level", "READ COMMITTED", "--budget", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Print_Record" in out

    def test_analyze_failing_transaction_exit_code(self, capsys):
        code = main(
            ["analyze", "banking", "--transaction", "Withdraw_sav",
             "--level", "SNAPSHOT", "--budget", "2000"]
        )
        assert code == 1
        assert "INTERFERES" in capsys.readouterr().out

    def test_analyze_full_app(self, capsys):
        code = main(["analyze", "employees", "--budget", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Print_Record" in out and "lowest correct level" in out


class TestGuardOption:
    def test_simulate_with_guard(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            ["simulate", "banking", "--level", "SNAPSHOT", "--size", "4",
             "--rounds", "2", "--guard"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "assertional concurrency control: ON" in out
