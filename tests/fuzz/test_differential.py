"""Tests for the differential check: classify one seed end to end.

These run real inference + exploration, so they pin small budgets; the
interesting seeds (0 = clean, 5 = inference over-claim) were picked by
running the corpus once and are stable — the generator is deterministic.
"""

import pytest

from repro.core.conditions import ANSI_LADDER, SERIALIZABLE
from repro.fuzz.case import LOOSE, SOUND, TIGHT, UNSOUND, UNSTABLE
from repro.fuzz.differential import probe_sets, run_case, weaker_level
from repro.workloads.appgen import AppGenConfig, generate_application


class TestWeakerLevel:
    def test_walks_down_the_ansi_ladder(self):
        assert weaker_level("SERIALIZABLE") == "REPEATABLE READ"
        assert weaker_level("REPEATABLE READ") == "READ COMMITTED"
        assert weaker_level("READ COMMITTED") == "READ UNCOMMITTED"

    def test_floor_has_no_weaker_level(self):
        assert weaker_level(ANSI_LADDER[0]) is None

    def test_unknown_levels_have_no_weaker_level(self):
        assert weaker_level("CHAOS") is None


class TestProbeSets:
    def test_deterministic_for_equal_configs(self):
        config = AppGenConfig(seed=2)
        app = generate_application(config)

        def render(probes):
            return [
                (label, [(t.name, args, name) for t, args, name in instances])
                for label, instances in probes
            ]

        assert render(probe_sets(app, config)) == render(probe_sets(app, config))

    def test_probes_are_writer_pairs(self):
        config = AppGenConfig(seed=2)
        app = generate_application(config)
        for _label, instances in probe_sets(app, config):
            assert len(instances) == 2
            for txn, args, name in instances:
                assert txn.written_resources()
                assert set(args) == {p.name for p in txn.params}
                assert name.startswith(txn.name)

    def test_same_type_pairs_come_first(self):
        config = AppGenConfig(seed=2)
        app = generate_application(config)
        probes = probe_sets(app, config, pairs=1)
        (_label, instances), = probes
        assert instances[0][0] is instances[1][0]  # shared TransactionType

    def test_pair_budget_respected(self):
        config = AppGenConfig(seed=2)
        app = generate_application(config)
        assert len(probe_sets(app, config, pairs=2)) <= 2


class TestRunCase:
    def test_clean_seed_is_sound_and_tight(self):
        case = run_case(0)
        assert case.verdict == SOUND
        assert case.tightness == TIGHT
        assert case.schedules > 0
        assert case.probes > 0
        # TIGHT means the one-rung-weaker assignment has a witness — the
        # comparison evidence rides along in the violation field
        assert case.violation is not None
        assert case.violation["levels"] != case.levels
        assert set(case.levels) == {
            t.name for t in generate_application(0).transactions
        }

    def test_rows_byte_identical_across_runs(self):
        import json

        first = run_case(0).to_row()
        second = run_case(0).to_row()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_weakened_chooser_is_unsound_with_replayable_witness(self):
        # the acceptance fixture: force READ COMMITTED everywhere and the
        # harness must catch the lost update the real chooser forbids
        case = run_case(0, force_level="READ COMMITTED")
        assert case.verdict == UNSOUND
        assert case.tightness is None
        assert set(case.levels.values()) == {"READ COMMITTED"}
        witness = case.violation
        assert witness["history"], "witness must be replayable"
        assert witness["committed"]

        from repro.sched.histories import replay

        result = replay(witness["history"], {}, default_level="READ COMMITTED")
        assert all(step.status == "ok" for step in result.steps)
        # the lost update is visible in the replayed final state: the second
        # committed write clobbers the first
        assert result.final.arrays

    def test_unsound_case_carries_a_shrunk_reproducer(self):
        case = run_case(0, force_level="READ COMMITTED")
        assert case.shrunk is not None
        assert case.shrunk["instances"]
        assert case.shrunk["history"]
        assert case.shrunk["summary"]

    def test_shrink_can_be_disabled(self):
        case = run_case(0, force_level="READ COMMITTED", shrink=False)
        assert case.verdict == UNSOUND
        assert case.shrunk is None

    def test_overclaimed_invariant_is_unstable_not_unsound(self):
        # seed 5's inferred invariant fails even at SERIALIZABLE: the case
        # must blame inference (UNSTABLE), never the chooser (UNSOUND)
        case = run_case(5)
        assert case.verdict == UNSTABLE
        assert case.tightness is None
        assert case.violation is not None
        assert set(case.violation["levels"].values()) == {SERIALIZABLE}

    def test_serializable_everywhere_forced_is_sound(self):
        # SERIALIZABLE admits only serial-equivalent schedules; with the
        # one-rung weakening this yields a tightness comparison as well
        case = run_case(0, force_level=SERIALIZABLE)
        assert case.verdict == SOUND
        assert case.tightness in (TIGHT, LOOSE)

    def test_floor_levels_have_no_tightness(self):
        case = run_case(0, force_level="READ UNCOMMITTED")
        if case.verdict == SOUND:  # nothing below the floor to compare against
            assert case.tightness is None

    def test_fingerprint_depends_on_force_level(self):
        plain = run_case(0)
        forced = run_case(0, force_level="READ COMMITTED")
        assert plain.fingerprint != forced.fingerprint


class TestConfigForms:
    def test_int_config_accepted(self):
        assert run_case(1).seed == 1

    def test_knobbed_config_respected(self):
        config = AppGenConfig.from_knobs(3, "txns=3..3")
        case = run_case(config)
        assert case.knobs == config.knobs()
        assert len(case.levels) == 3
