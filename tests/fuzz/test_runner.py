"""Tests for the corpus runner: resume, skip accounting, interruption.

The interrupt tests kill a real ``repro fuzz`` subprocess mid-corpus —
once politely (SIGTERM: finish the case in flight, exit cleanly) and
once brutally (SIGKILL: no goodbye at all) — then resume and assert the
final ledger is byte-identical to an uninterrupted run's.  That equality
is the whole resumability contract: per-case segment flushes plus
deterministic rows mean a crash can lose at most the case in flight,
and re-running settles exactly the remainder.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.fuzz.case import SOUND, UNSOUND, UNSTABLE
from repro.fuzz.ledger import CorpusLedger
from repro.fuzz.runner import FuzzRunner

SEEDS = range(0, 5)


def _src_path() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _fuzz_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_path() + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_fuzz(corpus_dir) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "fuzz",
            f"appgen:{SEEDS.start}..{SEEDS.stop}", "--corpus-dir", str(corpus_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_fuzz_env(),
    )


def _wait_for_progress(proc: subprocess.Popen, cases: int) -> None:
    """Block until ``cases`` per-case progress lines have been printed."""
    seen = 0
    while seen < cases:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("runner exited before reaching the kill point")
        if line.startswith("appgen:"):
            seen += 1


def _canonical(corpus_dir) -> bytes:
    ledger = CorpusLedger(corpus_dir)
    ledger.load()
    return ledger.canonical_bytes()


class TestLocalLoop:
    def test_run_settles_every_seed(self, tmp_path):
        summary = FuzzRunner(SEEDS, corpus_dir=tmp_path).run()
        assert summary["explored"] == len(SEEDS)
        assert summary["skipped"] == 0
        assert summary["open"] == 0
        assert summary["interrupted"] is False
        verdicts = summary["verdicts"]
        assert sum(verdicts.values()) == len(SEEDS)
        assert verdicts[UNSOUND] == 0

    def test_second_run_answers_everything_from_the_ledger(self, tmp_path):
        FuzzRunner(SEEDS, corpus_dir=tmp_path).run()
        rerun = FuzzRunner(SEEDS, corpus_dir=tmp_path)
        summary = rerun.run()
        assert summary["explored"] == 0
        assert summary["skipped"] == len(SEEDS)
        assert summary["skip_rate"] == 1.0

    def test_rows_are_deterministic_across_directories(self, tmp_path):
        FuzzRunner(SEEDS, corpus_dir=tmp_path / "a").run()
        FuzzRunner(SEEDS, corpus_dir=tmp_path / "b").run()
        assert _canonical(tmp_path / "a") == _canonical(tmp_path / "b")

    def test_probe_knobs_reopen_seeds(self, tmp_path):
        FuzzRunner(range(0, 1), corpus_dir=tmp_path).run()
        forced = FuzzRunner(
            range(0, 1), corpus_dir=tmp_path, force_level="READ COMMITTED"
        )
        summary = forced.run()
        assert summary["explored"] == 1  # same seed, different experiment
        assert summary["verdicts"][UNSOUND] == 1

    def test_request_stop_finishes_the_case_in_flight(self, tmp_path):
        runner = FuzzRunner(SEEDS, corpus_dir=tmp_path)
        cases = []

        def note(message):
            cases.append(message)
            runner.request_stop()

        runner.progress = note
        summary = runner.run()
        assert summary["interrupted"] is True
        assert summary["explored"] == 1
        assert len(runner.ledger) == 1  # the in-flight case was recorded

    def test_findings_surface_non_sound_cases(self, tmp_path):
        runner = FuzzRunner(
            range(0, 1), corpus_dir=tmp_path, force_level="READ COMMITTED"
        )
        runner.run()
        findings = runner.findings()
        assert len(findings) == 1
        assert findings[0]["rule"] == "fuzz-unsound"
        assert findings[0]["witness"]

    def test_weakened_chooser_acceptance_fixture(self, tmp_path):
        # the issue's acceptance criterion: forcing READ COMMITTED yields
        # >= 1 UNSOUND with a shrunk, replayable witness
        runner = FuzzRunner(
            range(0, 2), corpus_dir=tmp_path, force_level="READ COMMITTED"
        )
        summary = runner.run()
        assert summary["verdicts"][UNSOUND] >= 1
        finding = runner.findings()[0]
        assert finding["shrunk"] is not None
        from repro.sched.histories import replay

        result = replay(finding["witness"], {}, default_level="READ COMMITTED")
        assert all(step.status == "ok" for step in result.steps)


class TestInterruptResume:
    @pytest.fixture(scope="class")
    def uninterrupted(self, tmp_path_factory):
        corpus = tmp_path_factory.mktemp("uninterrupted")
        FuzzRunner(SEEDS, corpus_dir=corpus).run()
        return _canonical(corpus)

    def test_sigterm_then_resume_matches_uninterrupted(self, tmp_path, uninterrupted):
        proc = _spawn_fuzz(tmp_path)
        _wait_for_progress(proc, cases=2)
        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60)
        assert "INTERRUPTED" in output
        assert proc.returncode == 0  # graceful: summary printed, exit clean

        interrupted = CorpusLedger(tmp_path)
        interrupted.load()
        assert 0 < len(interrupted) < len(SEEDS)

        summary = FuzzRunner(SEEDS, corpus_dir=tmp_path).run()
        assert summary["explored"] + summary["skipped"] == len(SEEDS)
        assert summary["skipped"] == len(interrupted)  # nothing re-explored
        assert _canonical(tmp_path) == uninterrupted

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path, uninterrupted):
        proc = _spawn_fuzz(tmp_path)
        _wait_for_progress(proc, cases=2)
        proc.kill()
        proc.communicate(timeout=60)
        assert proc.returncode != 0

        survived = CorpusLedger(tmp_path)
        survived.load()
        # per-case segment flushes: every announced case survived the kill
        assert len(survived) >= 2

        summary = FuzzRunner(SEEDS, corpus_dir=tmp_path).run()
        assert summary["skipped"] >= len(survived)
        assert summary["open"] == 0
        assert _canonical(tmp_path) == uninterrupted

    def test_resume_after_interrupt_reports_full_tallies(self, tmp_path):
        proc = _spawn_fuzz(tmp_path)
        _wait_for_progress(proc, cases=1)
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)

        summary = FuzzRunner(SEEDS, corpus_dir=tmp_path).run()
        verdicts = summary["verdicts"]
        assert sum(verdicts.values()) == len(SEEDS)
        assert verdicts[SOUND] + verdicts[UNSTABLE] == len(SEEDS)
