"""Tests for the corpus row schema and case fingerprints."""

from repro.fuzz.case import (
    FUZZ_VERSION,
    FuzzCase,
    LOOSE,
    SOUND,
    TIGHT,
    UNSOUND,
    UNSTABLE,
    case_fingerprint,
    probe_knobs,
)
from repro.workloads.appgen import AppGenConfig, generate_application


def _case(**overrides) -> FuzzCase:
    base = dict(
        seed=3,
        fingerprint="abc123",
        knobs="txns=3..5;accounts=2;balance=2;stmts=-;profile=-",
        verdict=SOUND,
        tightness=TIGHT,
        levels={"Deposit": "REPEATABLE READ"},
        probes=3,
        schedules=42,
    )
    base.update(overrides)
    return FuzzCase(**base)


class TestFingerprint:
    def test_stable_across_calls(self):
        config = AppGenConfig(seed=5)
        app = generate_application(config)
        assert case_fingerprint(app, config) == case_fingerprint(app, config)

    def test_distinct_seeds_distinct_fingerprints(self):
        prints = set()
        for seed in range(6):
            config = AppGenConfig(seed=seed)
            prints.add(case_fingerprint(generate_application(config), config))
        assert len(prints) == 6

    def test_probe_knobs_reopen_the_seed(self):
        config = AppGenConfig(seed=0)
        app = generate_application(config)
        plain = case_fingerprint(app, config, probe_knobs(1500, 3, 96, None))
        forced = case_fingerprint(
            app, config, probe_knobs(1500, 3, 96, "READ COMMITTED")
        )
        assert plain != forced

    def test_generator_knobs_reopen_the_seed(self):
        a = AppGenConfig(seed=0)
        b = AppGenConfig(seed=0, max_stmts=10)
        assert case_fingerprint(generate_application(a), a) != case_fingerprint(
            generate_application(b), b
        )

    def test_version_in_every_fingerprint(self):
        # bumping FUZZ_VERSION must change the digest: it's an input
        config = AppGenConfig(seed=1)
        app = generate_application(config)
        from repro.core.cache import fingerprint_many

        assert case_fingerprint(app, config) == fingerprint_many(
            FUZZ_VERSION, config.knobs(), "", repr(app.transactions)
        )


class TestRowRoundTrip:
    def test_round_trips_losslessly(self):
        case = _case(
            verdict=UNSOUND,
            tightness=None,
            violation={"probe": "a+b@0", "history": "r1[x] c1"},
            shrunk={"instances": ["a#1"]},
        )
        decoded = FuzzCase.from_row(case.to_row())
        assert decoded == case

    def test_levels_sorted_in_row(self):
        case = _case(levels={"Z": "SERIALIZABLE", "A": "READ COMMITTED"})
        assert list(case.to_row()["levels"]) == ["A", "Z"]

    def test_row_has_no_wallclock_fields(self):
        row = _case().to_row()
        assert not any("time" in key or "seconds" in key for key in row)

    def test_rejects_bad_rows(self):
        good = _case().to_row()
        bad_rows = [
            None,
            [],
            {},
            {**good, "seed": "3"},
            {**good, "seed": True},
            {**good, "fingerprint": 7},
            {**good, "verdict": "MAYBE"},
            {**good, "tightness": "SNUG"},
        ]
        for row in bad_rows:
            assert FuzzCase.from_row(row) is None

    def test_accepts_every_verdict(self):
        for verdict in (SOUND, UNSOUND, UNSTABLE):
            row = _case(verdict=verdict, tightness=None).to_row()
            assert FuzzCase.from_row(row).verdict == verdict

    def test_accepts_every_tightness(self):
        for tightness in (TIGHT, LOOSE, None):
            row = _case(tightness=tightness).to_row()
            assert FuzzCase.from_row(row).tightness == tightness


class TestFindings:
    def test_sound_cases_yield_nothing(self):
        assert _case(verdict=SOUND).finding() is None

    def test_unsound_finding_is_an_error_with_witness(self):
        case = _case(
            verdict=UNSOUND,
            tightness=None,
            violation={"history": "r1[x] w2[x=1] c1 c2", "summary": "boom"},
            shrunk={"instances": ["Deposit#1"]},
        )
        finding = case.finding()
        assert finding["rule"] == "fuzz-unsound"
        assert finding["severity"] == "error"
        assert finding["witness"] == "r1[x] w2[x=1] c1 c2"
        assert finding["shrunk"] == {"instances": ["Deposit#1"]}
        assert finding["seed"] == case.seed

    def test_unstable_finding_is_a_warning(self):
        case = _case(verdict=UNSTABLE, tightness=None, violation={"history": "c1"})
        finding = case.finding()
        assert finding["rule"] == "fuzz-unstable-invariant"
        assert finding["severity"] == "warning"
        assert "excluded from" in finding["message"]
