"""Tests for the append-only corpus ledger."""

import json

import pytest

from repro.fuzz.case import FuzzCase, SOUND, UNSOUND
from repro.fuzz.ledger import COMPACT_THRESHOLD, CorpusLedger, ledger_salt


def _row(seed: int, fingerprint: str = "fp", verdict: str = SOUND, **extra) -> dict:
    row = FuzzCase(
        seed=seed,
        fingerprint=fingerprint,
        knobs="k",
        verdict=verdict,
        levels={"T": "SERIALIZABLE"},
        probes=1,
        schedules=7,
    ).to_row()
    row.update(extra)
    return row


class TestRecordAndLoad:
    def test_round_trip_across_instances(self, tmp_path):
        first = CorpusLedger(tmp_path)
        assert first.record(_row(0)) is True
        assert first.record(_row(1)) is True

        second = CorpusLedger(tmp_path)
        assert second.load() == 2
        assert second.settled(0, "fp")["seed"] == 0
        assert second.settled(9, "fp") is None
        assert len(second) == 2

    def test_one_segment_per_case(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        for seed in range(5):
            ledger.record(_row(seed))
        assert ledger.segment_count() == 5

    def test_settled_keys_never_rewritten(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        assert ledger.record(_row(0, verdict=SOUND)) is True
        assert ledger.record(_row(0, verdict=UNSOUND)) is False
        assert ledger.settled(0, "fp")["verdict"] == SOUND
        assert ledger.segment_count() == 1

    def test_same_seed_different_fingerprint_is_open(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        ledger.record(_row(0, fingerprint="old"))
        assert ledger.settled(0, "new") is None
        assert ledger.record(_row(0, fingerprint="new")) is True

    def test_invalid_rows_rejected_loudly_on_record(self, tmp_path):
        with pytest.raises(ValueError):
            CorpusLedger(tmp_path).record({"seed": "zero"})

    def test_invalid_rows_skipped_quietly_on_load(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        ledger.record(_row(0))
        ledger._log.write_segment([{"not": "a case"}])
        fresh = CorpusLedger(tmp_path)
        assert fresh.load() == 1
        assert fresh.stats["lines_skipped"] == 1

    def test_foreign_salt_segments_miss_cleanly(self, tmp_path):
        CorpusLedger(tmp_path, salt="old-algorithm").record(_row(0))
        fresh = CorpusLedger(tmp_path)
        assert fresh.load() == 0
        assert fresh.stats["segments_skipped"] == 1

    def test_refresh_absorbs_only_new_segments(self, tmp_path):
        writer = CorpusLedger(tmp_path)
        reader = CorpusLedger(tmp_path)
        writer.record(_row(0))
        assert reader.load() == 1
        writer.record(_row(1))
        assert reader.refresh() == 1
        assert reader.stats["segments_loaded"] == 2

    def test_salt_binds_store_and_fuzz_versions(self):
        from repro.core.persist import store_salt
        from repro.fuzz.case import FUZZ_VERSION

        assert store_salt() in ledger_salt()
        assert FUZZ_VERSION in ledger_salt()


class TestCompaction:
    def test_compact_merges_everything_into_one_segment(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        for seed in range(6):
            ledger.record(_row(seed))
        summary = ledger.compact()
        assert summary["compacted"] is True
        assert summary["segments_in"] == 6
        assert summary["entries"] == 6
        assert ledger.segment_count() == 1

        fresh = CorpusLedger(tmp_path)
        assert fresh.load() == 6

    def test_record_compacts_past_the_threshold(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        for seed in range(COMPACT_THRESHOLD + 1):
            ledger.record(_row(seed))
        assert ledger.segment_count() <= COMPACT_THRESHOLD
        fresh = CorpusLedger(tmp_path)
        assert fresh.load() == COMPACT_THRESHOLD + 1

    def test_cases_decoded_in_canonical_order(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        for seed in (5, 1, 3):
            ledger.record(_row(seed))
        assert [case.seed for case in ledger.cases()] == [1, 3, 5]


class TestCanonicalBytes:
    def test_independent_of_segment_layout(self, tmp_path):
        split = CorpusLedger(tmp_path / "split")
        for seed in (2, 0, 1):
            split.record(_row(seed))

        merged = CorpusLedger(tmp_path / "merged")
        for seed in (2, 0, 1):
            merged.record(_row(seed))
        merged.compact()

        reload_split = CorpusLedger(tmp_path / "split")
        reload_split.load()
        reload_merged = CorpusLedger(tmp_path / "merged")
        reload_merged.load()
        assert reload_split.canonical_bytes() == reload_merged.canonical_bytes()
        assert reload_split.canonical_bytes() == split.canonical_bytes()

    def test_one_sorted_json_object_per_line(self, tmp_path):
        ledger = CorpusLedger(tmp_path)
        ledger.record(_row(1))
        ledger.record(_row(0))
        lines = ledger.canonical_bytes().decode().splitlines()
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert [row["seed"] for row in decoded] == [0, 1]
        for line, row in zip(lines, decoded):
            assert line == json.dumps(row, sort_keys=True)

    def test_empty_ledger_is_empty_bytes(self, tmp_path):
        assert CorpusLedger(tmp_path).canonical_bytes() == b""
