"""Tests for the greedy UNSOUND-witness shrinker."""

import json

from repro.core.conditions import SERIALIZABLE
from repro.core.formula import TRUE
from repro.core.program import Read, TransactionType, Write
from repro.core.terms import Field, Local, Param
from repro.fuzz.differential import probe_sets, run_case
from repro.fuzz.shrink import (
    _bound_locals,
    _deletable,
    _distinct_txns,
    _without_statement,
    shrink_unsound,
)
from repro.workloads.appgen import AppGenConfig, generate_application, initial_state


def _deposit() -> TransactionType:
    i = Param("i")
    d = Param("d")
    bal = Local("Bal")
    return TransactionType(
        name="Deposit",
        params=(i, d),
        body=(
            Read(bal, Field("acct", i, "bal"), label="read balance"),
            Write(Field("acct", i, "bal"), bal + d, label="deposit"),
        ),
    )


class TestDataflowGuards:
    def test_read_binds_its_local(self):
        txn = _deposit()
        assert _bound_locals(txn.body[0]) == {Local("Bal")}

    def test_read_not_deletable_while_write_uses_it(self):
        txn = _deposit()
        assert not _deletable(txn.body, 0)

    def test_last_statement_deletable(self):
        txn = _deposit()
        assert _deletable(txn.body, 1)

    def test_without_statement_rebuilds_the_type(self):
        txn = _deposit()
        shrunk = _without_statement(txn, 1)
        assert len(shrunk.body) == 1
        assert shrunk.name == txn.name
        assert shrunk.result is TRUE
        assert shrunk.snapshot == ()

    def test_distinct_txns_dedupes_by_identity(self):
        txn = _deposit()
        other = _deposit()
        instances = [(txn, {}, "a"), (txn, {}, "b"), (other, {}, "c")]
        assert _distinct_txns(instances) == [txn, other]


class TestShrinkUnsound:
    def _unsound_probe(self):
        """The seed-0 lost-update probe at forced READ COMMITTED."""
        config = AppGenConfig(seed=0)
        app = generate_application(config)
        from repro.core.infer import infer_application

        inferred, report = infer_application(app, seed=0)
        levels = {t.name: "READ COMMITTED" for t in inferred.transactions}
        invariant = report.closed_invariant(app.spec)
        initial = initial_state(config, balance=1)
        probes = probe_sets(inferred, config)
        # the Deposit+Deposit probe carries the lost update
        label, instances = next(
            (label, instances)
            for label, instances in probes
            if instances[0][0].name.startswith("Deposit")
        )
        return inferred, instances, levels, invariant, initial

    def test_shrunk_reproducer_still_reproduces(self):
        inferred, instances, levels, invariant, initial = self._unsound_probe()
        shrunk = shrink_unsound(
            inferred, instances, levels, invariant, initial, probe_schedules=96
        )
        assert shrunk is not None
        assert shrunk["history"]
        assert shrunk["summary"]
        assert len(shrunk["instances"]) >= 1
        assert len(shrunk["bodies"]) >= 1
        for statements in shrunk["bodies"].values():
            assert len(statements) >= 1

    def test_shrinking_is_deterministic(self):
        inferred, instances, levels, invariant, initial = self._unsound_probe()
        first = shrink_unsound(
            inferred, instances, levels, invariant, initial, probe_schedules=96
        )
        second = shrink_unsound(
            inferred, instances, levels, invariant, initial, probe_schedules=96
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_non_reproducing_input_returns_none(self):
        inferred, instances, _levels, invariant, initial = self._unsound_probe()
        serial = {t.name: SERIALIZABLE for t in inferred.transactions}
        assert (
            shrink_unsound(
                inferred, instances, serial, invariant, initial, probe_schedules=96
            )
            is None
        )

    def test_counts_report_what_was_deleted(self):
        case = run_case(0, force_level="READ COMMITTED")
        shrunk = case.shrunk
        assert shrunk["removed_instances"] >= 0
        assert shrunk["removed_statements"] >= 0
        # whatever was removed, the reproducer must keep a runnable core
        assert shrunk["instances"]
        assert shrunk["committed"]
