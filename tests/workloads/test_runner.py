"""Integration tests for the workload runners — the paper's shapes."""

import pytest

from repro.core.formula import conj, ge
from repro.core.terms import Field, IntConst
from repro.workloads.generator import (
    WorkloadConfig,
    banking_initial,
    banking_workload,
)
from repro.workloads.runner import compare_assignments, run_workload, sweep_contention, sweep_levels

ACCOUNTS = 3
NAMES = ("Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch")


def invariant():
    return conj(
        *[
            ge(
                Field("acct_sav", IntConst(i), "bal") + Field("acct_ch", IntConst(i), "bal"),
                0,
            )
            for i in range(ACCOUNTS)
        ]
    )


def make_specs(assignment):
    return banking_workload(
        WorkloadConfig(size=6, hot_fraction=0.8, seed=4), accounts=ACCOUNTS, levels=assignment
    )


class TestRunWorkload:
    def test_metrics_populated(self):
        specs = make_specs({name: "READ COMMITTED" for name in NAMES})
        metrics = run_workload(banking_initial(ACCOUNTS), specs, rounds=3, seed=1,
                               invariant=invariant())
        assert metrics.runs == 3
        assert metrics.committed > 0
        assert metrics.steps > 0

    def test_surfaces_actual_violation_count(self, monkeypatch):
        """One round with several failed clauses must count each of them."""
        from repro.sched.semantic import SemanticReport
        import repro.workloads.runner as runner_module

        reports = iter([
            SemanticReport(consistent=False,
                           result_violations=["t0: Q_i false at commit", "t1: Q_i false at commit"]),
            SemanticReport(consistent=True),
            SemanticReport(consistent=True, cumulative_violations=["double delivery"]),
        ])
        monkeypatch.setattr(
            runner_module, "check_semantic_correctness", lambda result, inv: next(reports)
        )
        specs = make_specs({name: "READ COMMITTED" for name in NAMES})
        metrics = run_workload(banking_initial(ACCOUNTS), specs, rounds=3, seed=1,
                               invariant=invariant())
        assert metrics.semantic_violations == 4


class TestSweeps:
    @pytest.fixture(scope="class")
    def level_sweep(self):
        return sweep_levels(
            make_specs,
            banking_initial(ACCOUNTS),
            ["READ UNCOMMITTED", "READ COMMITTED", "SERIALIZABLE"],
            NAMES,
            rounds=3,
            seed=2,
            invariant=invariant(),
        )

    def test_sweep_covers_levels(self, level_sweep):
        assert set(level_sweep) == {"READ UNCOMMITTED", "READ COMMITTED", "SERIALIZABLE"}

    def test_weak_levels_at_least_as_fast(self, level_sweep):
        """The paper's performance direction: RU throughput >= SER."""
        assert (
            level_sweep["READ UNCOMMITTED"].throughput
            >= level_sweep["SERIALIZABLE"].throughput
        )

    def test_serializable_never_violates(self, level_sweep):
        assert level_sweep["SERIALIZABLE"].semantic_violations == 0

    def test_contention_sweep_monotone_waits(self):
        def specs_at(config):
            return banking_workload(
                config, accounts=ACCOUNTS,
                levels={name: "SERIALIZABLE" for name in NAMES},
            )

        out = sweep_contention(
            specs_at,
            banking_initial(ACCOUNTS),
            hot_fractions=[0.0, 1.0],
            rounds=3,
            seed=3,
            size=6,
            invariant=invariant(),
        )
        assert out[1.0].wait_rate >= out[0.0].wait_rate

    def test_compare_assignments(self):
        out = compare_assignments(
            make_specs,
            banking_initial(ACCOUNTS),
            {
                "all-ser": {name: "SERIALIZABLE" for name in NAMES},
                "all-rc": {name: "READ COMMITTED" for name in NAMES},
            },
            rounds=2,
            seed=5,
            invariant=invariant(),
        )
        assert set(out) == {"all-ser", "all-rc"}
