"""Tests for generated unannotated applications (``appgen``)."""

import pytest

from repro.core.formula import TRUE
from repro.core.program import Read
from repro.errors import AnalysisError
from repro.workloads.appgen import (
    AppGenConfig,
    generate_application,
    initial_state,
    make_inferred_scenario,
    resolve_app_ref,
)


def _render(app) -> bytes:
    return repr((app.name, app.description, app.transactions, app.spec)).encode()


class TestGeneration:
    def test_equal_seeds_byte_identical(self):
        assert _render(generate_application(5)) == _render(generate_application(5))

    def test_distinct_seeds_differ(self):
        renders = {_render(generate_application(seed)) for seed in range(6)}
        assert len(renders) > 1

    def test_unannotated(self):
        app = generate_application(2)
        for txn in app.transactions:
            assert txn.consistency is TRUE
            assert txn.param_pre is TRUE
            assert txn.result is TRUE
            for stmt in txn.statements():
                assert getattr(stmt, "post", "absent") in (None, "absent")

    def test_always_has_writer_and_reader(self):
        for seed in range(8):
            app = generate_application(seed)
            assert any(t.written_resources() for t in app.transactions)
            assert any(
                not t.written_resources() and t.read_resources()
                for t in app.transactions
            )

    def test_transaction_count_in_bounds(self):
        config = AppGenConfig(seed=3, min_transactions=3, max_transactions=5)
        app = generate_application(config)
        assert 3 <= len(app.transactions) <= 5

    def test_names_unique(self):
        for seed in range(8):
            names = [t.name for t in generate_application(seed).transactions]
            assert len(names) == len(set(names))

    def test_spec_covers_every_param(self):
        app = generate_application(4)
        for txn in app.transactions:
            for param in txn.params:
                assert tuple(app.spec.values_for(param))


class TestResolveRef:
    def test_round_trip(self):
        assert resolve_app_ref("appgen:7").name == "appgen-7"

    def test_rejects_non_integer_seed(self):
        with pytest.raises(AnalysisError):
            resolve_app_ref("appgen:banana")

    def test_rejects_other_prefixes(self):
        with pytest.raises(AnalysisError):
            resolve_app_ref("banking")


class TestScenario:
    def test_specs_deterministic_across_calls(self):
        app = generate_application(1)
        scenario = make_inferred_scenario(app, TRUE, seed=1)
        levels = {t.name: "SERIALIZABLE" for t in app.transactions}
        first = [(s.txn_type.name, s.args, s.level) for s in scenario.make_specs(levels)]
        second = [(s.txn_type.name, s.args, s.level) for s in scenario.make_specs(levels)]
        assert first == second

    def test_two_copies_of_every_writer(self):
        app = generate_application(1)
        scenario = make_inferred_scenario(app, TRUE, seed=1)
        specs = scenario.make_specs({})
        writers = [t.name for t in app.transactions if t.written_resources()]
        for name in writers:
            assert sum(s.txn_type.name == name for s in specs) == 2

    def test_initial_state_readable(self):
        state = initial_state(1, balance=3)
        assert state.read_field("acct", 0, "bal") == 3


class TestEndToEnd:
    """The pipeline the tentpole promises: appgen -> infer -> analyze -> certify."""

    def test_infer_analyze_certify_non_vacuous(self):
        from repro.core.chooser import analyze_application
        from repro.core.infer import infer_application
        from repro.core.interference import InterferenceChecker
        from repro.pipeline.certify import certify
        from repro.pipeline.context import RunContext

        app = generate_application(1)
        inferred, report = infer_application(app)
        # inference found a real guard invariant to certify against
        assert report.candidates

        checker = InterferenceChecker(inferred.spec, budget=2000, seed=0)
        levels = analyze_application(inferred, checker).levels()
        assert set(levels) == {t.name for t in app.transactions}

        scenario = make_inferred_scenario(
            inferred, report.closed_invariant(app.spec), seed=0
        )
        context = RunContext(seed=0, budget=2000, max_schedules=200)
        certificate = certify(inferred, context=context, scenarios=[scenario])
        assert certificate.agreement, certificate.to_dict()
        # non-vacuous: the probe actually explored schedules and checked
        # the inferred invariant against them
        probes = [
            probe
            for verdict in certificate.verdicts
            for probe in verdict.chosen_probes
        ]
        assert probes
        assert any(probe.schedules > 0 for probe in probes)
