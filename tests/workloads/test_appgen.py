"""Tests for generated unannotated applications (``appgen``)."""

import pytest

from repro.core.formula import TRUE
from repro.core.program import Read
from repro.errors import AnalysisError
from repro.workloads.appgen import (
    PROFILES,
    SHAPE_COSTS,
    AppGenConfig,
    generate_application,
    initial_state,
    make_inferred_scenario,
    parse_seed_range,
    parse_span,
    resolve_app_ref,
)


def _render(app) -> bytes:
    return repr((app.name, app.description, app.transactions, app.spec)).encode()


class TestGeneration:
    def test_equal_seeds_byte_identical(self):
        assert _render(generate_application(5)) == _render(generate_application(5))

    def test_distinct_seeds_differ(self):
        renders = {_render(generate_application(seed)) for seed in range(6)}
        assert len(renders) > 1

    def test_unannotated(self):
        app = generate_application(2)
        for txn in app.transactions:
            assert txn.consistency is TRUE
            assert txn.param_pre is TRUE
            assert txn.result is TRUE
            for stmt in txn.statements():
                assert getattr(stmt, "post", "absent") in (None, "absent")

    def test_always_has_writer_and_reader(self):
        for seed in range(8):
            app = generate_application(seed)
            assert any(t.written_resources() for t in app.transactions)
            assert any(
                not t.written_resources() and t.read_resources()
                for t in app.transactions
            )

    def test_transaction_count_in_bounds(self):
        config = AppGenConfig(seed=3, min_transactions=3, max_transactions=5)
        app = generate_application(config)
        assert 3 <= len(app.transactions) <= 5

    def test_names_unique(self):
        for seed in range(8):
            names = [t.name for t in generate_application(seed).transactions]
            assert len(names) == len(set(names))

    def test_spec_covers_every_param(self):
        app = generate_application(4)
        for txn in app.transactions:
            for param in txn.params:
                assert tuple(app.spec.values_for(param))


class TestKnobs:
    def test_default_config_knobs_round_trip(self):
        config = AppGenConfig(seed=9)
        assert AppGenConfig.from_knobs(9, config.knobs()) == config

    def test_every_knob_round_trips(self):
        config = AppGenConfig(
            seed=3, accounts=4, min_transactions=2, max_transactions=6,
            max_balance=5, max_stmts=12, profile="write-heavy",
        )
        assert AppGenConfig.from_knobs(3, config.knobs()) == config

    def test_none_knobs_means_defaults(self):
        assert AppGenConfig.from_knobs(7, None) == AppGenConfig(seed=7)
        assert AppGenConfig.from_knobs(7, "") == AppGenConfig(seed=7)

    def test_unset_knobs_keep_legacy_byte_identity(self):
        # the shaping knobs must not perturb the historical draw sequence
        for seed in range(6):
            legacy = _render(generate_application(seed))
            assert _render(generate_application(AppGenConfig(seed=seed))) == legacy

    def test_equal_knobs_byte_identical(self):
        config = AppGenConfig(seed=4, max_stmts=10, profile="read-heavy")
        assert _render(generate_application(config)) == _render(
            generate_application(AppGenConfig.from_knobs(4, config.knobs()))
        )

    def test_profile_changes_the_shape_mix(self):
        renders = {
            profile: [
                _render(generate_application(AppGenConfig(seed=s, profile=profile)))
                for s in range(12)
            ]
            for profile in ("write-heavy", "read-heavy")
        }
        assert renders["write-heavy"] != renders["read-heavy"]

    def test_max_stmts_bounds_the_statement_total(self):
        for seed in range(8):
            app = generate_application(AppGenConfig(seed=seed, max_stmts=8))
            total = sum(sum(1 for _ in t.walk()) for t in app.transactions)
            # the mandatory writer+reader pair may alone exceed tiny budgets;
            # beyond that the generator must respect the bound
            floor = max(SHAPE_COSTS.values()) + min(SHAPE_COSTS.values())
            assert total <= max(8, floor)

    def test_unknown_profile_rejected(self):
        with pytest.raises(AnalysisError):
            AppGenConfig.from_knobs(0, "profile=bogus")
        assert "bogus" not in PROFILES

    def test_malformed_knobs_rejected(self):
        for knobs in ("txns", "txns=0..2", "accounts=x", "mystery=1"):
            with pytest.raises(AnalysisError):
                AppGenConfig.from_knobs(0, knobs)


class TestSpans:
    def test_single_value(self):
        assert parse_span("4") == (4, 4)

    def test_inclusive_range(self):
        assert parse_span("3..5") == (3, 5)

    def test_rejects_bad_bounds(self):
        for text in ("0", "5..3", "a..b", ""):
            with pytest.raises(AnalysisError):
                parse_span(text)


class TestSeedRanges:
    def test_single_seed(self):
        assert parse_seed_range("appgen:7") == range(7, 8)

    def test_half_open_range(self):
        assert parse_seed_range("appgen:100..200") == range(100, 200)

    def test_adjacent_ranges_tile_without_overlap(self):
        left = set(parse_seed_range("appgen:0..100"))
        right = set(parse_seed_range("appgen:100..200"))
        assert not (left & right)
        assert left | right == set(range(200))

    def test_rejects_empty_and_malformed(self):
        for ref in ("appgen:5..5", "appgen:9..3", "appgen:a..b", "banking"):
            with pytest.raises(AnalysisError):
                parse_seed_range(ref)


class TestResolveRef:
    def test_round_trip(self):
        assert resolve_app_ref("appgen:7").name == "appgen-7"

    def test_rejects_non_integer_seed(self):
        with pytest.raises(AnalysisError):
            resolve_app_ref("appgen:banana")

    def test_rejects_multi_seed_ranges(self):
        with pytest.raises(AnalysisError, match="names 3 seeds"):
            resolve_app_ref("appgen:1..4")

    def test_knobs_shape_the_resolved_app(self):
        shaped = resolve_app_ref("appgen:2", knobs="txns=6..6")
        assert len(shaped.transactions) == 6

    def test_rejects_other_prefixes(self):
        with pytest.raises(AnalysisError):
            resolve_app_ref("banking")


class TestScenario:
    def test_specs_deterministic_across_calls(self):
        app = generate_application(1)
        scenario = make_inferred_scenario(app, TRUE, seed=1)
        levels = {t.name: "SERIALIZABLE" for t in app.transactions}
        first = [(s.txn_type.name, s.args, s.level) for s in scenario.make_specs(levels)]
        second = [(s.txn_type.name, s.args, s.level) for s in scenario.make_specs(levels)]
        assert first == second

    def test_two_copies_of_every_writer(self):
        app = generate_application(1)
        scenario = make_inferred_scenario(app, TRUE, seed=1)
        specs = scenario.make_specs({})
        writers = [t.name for t in app.transactions if t.written_resources()]
        for name in writers:
            assert sum(s.txn_type.name == name for s in specs) == 2

    def test_initial_state_readable(self):
        state = initial_state(1, balance=3)
        assert state.read_field("acct", 0, "bal") == 3


class TestEndToEnd:
    """The pipeline the tentpole promises: appgen -> infer -> analyze -> certify."""

    def test_infer_analyze_certify_non_vacuous(self):
        from repro.core.chooser import analyze_application
        from repro.core.infer import infer_application
        from repro.core.interference import InterferenceChecker
        from repro.pipeline.certify import certify
        from repro.pipeline.context import RunContext

        app = generate_application(1)
        inferred, report = infer_application(app)
        # inference found a real guard invariant to certify against
        assert report.candidates

        checker = InterferenceChecker(inferred.spec, budget=2000, seed=0)
        levels = analyze_application(inferred, checker).levels()
        assert set(levels) == {t.name for t in app.transactions}

        scenario = make_inferred_scenario(
            inferred, report.closed_invariant(app.spec), seed=0
        )
        context = RunContext(seed=0, budget=2000, max_schedules=200)
        certificate = certify(inferred, context=context, scenarios=[scenario])
        assert certificate.agreement, certificate.to_dict()
        # non-vacuous: the probe actually explored schedules and checked
        # the inferred invariant against them
        probes = [
            probe
            for verdict in certificate.verdicts
            for probe in verdict.chosen_probes
        ]
        assert probes
        assert any(probe.schedules > 0 for probe in probes)
