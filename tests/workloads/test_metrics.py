"""Unit tests for performance metrics."""

from repro.sched.schedule import InstanceOutcome, ScheduleResult
from repro.core.state import DbState
from repro.workloads.metrics import RunMetrics, merge


def fake_result(committed=3, aborted=1, steps=100, waits=5):
    outcomes = []
    for index in range(committed):
        outcomes.append(
            InstanceOutcome(
                index=index, name=f"C{index}", txn_type=None, args={}, level="X",
                status="committed", commit_tick=index + 1,
            )
        )
    for index in range(aborted):
        outcomes.append(
            InstanceOutcome(
                index=committed + index, name=f"A{index}", txn_type=None, args={},
                level="X", status="aborted",
            )
        )
    return ScheduleResult(
        initial=DbState(), final=DbState(), outcomes=outcomes,
        stats={"steps": steps, "waits": waits, "deadlocks": 0, "fcw_aborts": 0, "restarts": 0},
    )


class TestRunMetrics:
    def test_add_accumulates(self):
        metrics = RunMetrics()
        metrics.add(fake_result())
        metrics.add(fake_result())
        assert metrics.runs == 2
        assert metrics.committed == 6
        assert metrics.aborted == 2
        assert metrics.steps == 200

    def test_throughput(self):
        metrics = RunMetrics()
        metrics.add(fake_result(committed=10, steps=1000))
        assert metrics.throughput == 10.0

    def test_throughput_zero_steps(self):
        assert RunMetrics().throughput == 0.0

    def test_abort_rate(self):
        metrics = RunMetrics()
        metrics.add(fake_result(committed=3, aborted=1))
        assert metrics.abort_rate == 0.25

    def test_wait_rate(self):
        metrics = RunMetrics()
        metrics.add(fake_result(steps=100, waits=5))
        assert metrics.wait_rate == 0.05

    def test_violations_counted(self):
        metrics = RunMetrics()
        metrics.add(fake_result(), violations=1)
        assert metrics.semantic_violations == 1

    def test_row_shape(self):
        metrics = RunMetrics()
        metrics.add(fake_result())
        assert len(metrics.row()) == 5


    def test_multiple_violations_per_round(self):
        metrics = RunMetrics()
        metrics.add(fake_result(), violations=3)
        metrics.add(fake_result(), violations=2)
        assert metrics.semantic_violations == 5


class TestMerge:
    def test_merge_sums(self):
        a, b = RunMetrics(), RunMetrics()
        a.add(fake_result())
        b.add(fake_result())
        total = merge([a, b])
        assert total.runs == 2
        assert total.committed == 6

    def test_merge_covers_every_counter(self):
        a = RunMetrics()
        a.add(fake_result(), violations=2)
        a.deadlocks, a.fcw_aborts, a.restarts = 1, 2, 3
        total = merge([a, a])
        assert total.as_dict() == {
            **{k: 2 * v for k, v in a.as_dict().items()
               if k not in ("throughput", "abort_rate", "wait_rate")},
            "throughput": a.as_dict()["throughput"],
            "abort_rate": a.as_dict()["abort_rate"],
            "wait_rate": a.as_dict()["wait_rate"],
        }

    def test_merge_empty(self):
        assert merge([]).runs == 0


class TestDictRoundTrip:
    def test_as_dict_includes_rates(self):
        metrics = RunMetrics()
        metrics.add(fake_result(committed=10, steps=1000, waits=50))
        data = metrics.as_dict()
        assert data["throughput"] == 10.0
        assert data["wait_rate"] == 0.05
        assert data["committed"] == 10

    def test_round_trip(self):
        metrics = RunMetrics()
        metrics.add(fake_result(), violations=4)
        rebuilt = RunMetrics.from_dict(metrics.as_dict())
        assert rebuilt == metrics
        assert rebuilt.as_dict() == metrics.as_dict()

    def test_from_dict_ignores_derived_keys(self):
        rebuilt = RunMetrics.from_dict({"runs": 1, "committed": 2, "throughput": 99.0})
        assert rebuilt.runs == 1
        assert rebuilt.committed == 2
        assert rebuilt.steps == 0
