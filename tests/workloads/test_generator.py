"""Unit tests for workload generation."""

import random

import pytest

from repro.sched.simulator import InstanceSpec
from repro.workloads.generator import (
    WorkloadConfig,
    banking_initial,
    banking_workload,
    order_entry_initial,
    order_entry_workload,
    pick_weighted,
    skewed_index,
    tpcc_workload,
)


class TestPrimitives:
    def test_pick_weighted_respects_weights(self):
        rng = random.Random(0)
        weights = {"a": 0.0, "b": 1.0}
        picks = {pick_weighted(rng, weights) for _ in range(50)}
        assert picks == {"b"}

    def test_pick_weighted_covers_support(self):
        rng = random.Random(0)
        weights = {"a": 0.5, "b": 0.5}
        picks = {pick_weighted(rng, weights) for _ in range(200)}
        assert picks == {"a", "b"}

    def test_skewed_index_full_heat(self):
        rng = random.Random(0)
        assert all(skewed_index(rng, 10, 1.0) == 0 for _ in range(20))

    def test_skewed_index_uniform(self):
        rng = random.Random(0)
        seen = {skewed_index(rng, 4, 0.0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestBankingWorkload:
    def test_size_and_types(self):
        specs = banking_workload(WorkloadConfig(size=12, seed=1), accounts=2)
        assert len(specs) == 12
        assert all(isinstance(spec, InstanceSpec) for spec in specs)

    def test_levels_applied(self):
        levels = {"Withdraw_sav": "SNAPSHOT"}
        specs = banking_workload(WorkloadConfig(size=30, seed=1), levels=levels)
        withdraw_specs = [s for s in specs if s.txn_type.name == "Withdraw_sav"]
        assert withdraw_specs
        assert all(s.level == "SNAPSHOT" for s in withdraw_specs)

    def test_deterministic_given_seed(self):
        first = banking_workload(WorkloadConfig(size=10, seed=7))
        second = banking_workload(WorkloadConfig(size=10, seed=7))
        assert [(s.txn_type.name, s.args) for s in first] == [
            (s.txn_type.name, s.args) for s in second
        ]

    def test_initial_state_shape(self):
        state = banking_initial(3)
        assert state.read_field("acct_sav", 2, "bal") == 5


class TestTpccWorkload:
    def test_mix_has_all_types_on_large_sample(self):
        specs = tpcc_workload(WorkloadConfig(size=300, seed=2))
        names = {s.txn_type.name for s in specs}
        assert "TPCC_NewOrder" in names and "TPCC_Payment" in names

    def test_args_match_type(self):
        specs = tpcc_workload(WorkloadConfig(size=100, seed=2))
        for spec in specs:
            if spec.txn_type.name == "TPCC_NewOrder":
                assert set(spec.args) == {"d", "c", "item", "qty"}
            elif spec.txn_type.name == "TPCC_Delivery":
                assert set(spec.args) == {"d"}


class TestOrderEntryWorkload:
    def test_order_infos_unique(self):
        specs = order_entry_workload(WorkloadConfig(size=50, seed=3))
        infos = [
            s.args["order_info"] for s in specs if s.txn_type.name == "New_Order"
        ]
        assert len(infos) == len(set(infos))

    def test_initial_state_consistent(self):
        from repro.apps import orders

        state = order_entry_initial()
        assert orders.invariant("no_gap").evaluate(state, {})


class TestSeedThreading:
    """Equal seeds must give byte-identical workloads, across all consumers.

    Each generator call gets its own ``config.rng()`` instance, so running
    one generator never perturbs another and a fresh config always
    reproduces the same sequence — there is no module-level RNG to leak
    state between calls.  Labelled ``config.rng(consumer)`` streams exist
    for new consumers that must not replay the default draws.
    """

    @staticmethod
    def _render(specs):
        return "\n".join(
            f"{s.txn_type.name}|{s.level}|{sorted(s.args.items())!r}" for s in specs
        ).encode()

    @pytest.mark.parametrize(
        "generate",
        [banking_workload, tpcc_workload, order_entry_workload],
        ids=["banking", "tpcc", "order_entry"],
    )
    def test_equal_seeds_byte_identical(self, generate):
        first = self._render(generate(WorkloadConfig(size=40, seed=11)))
        second = self._render(generate(WorkloadConfig(size=40, seed=11)))
        assert first == second

    def test_consumers_are_independent_streams(self):
        # interleaving other generators between two banking calls must not
        # change the banking stream (the old module-level RNG bug)
        config = WorkloadConfig(size=25, seed=4)
        lone = self._render(banking_workload(config))
        tpcc_workload(WorkloadConfig(size=25, seed=4))
        order_entry_workload(WorkloadConfig(size=25, seed=4))
        assert self._render(banking_workload(WorkloadConfig(size=25, seed=4))) == lone

    def test_distinct_seeds_differ(self):
        a = self._render(banking_workload(WorkloadConfig(size=40, seed=0)))
        b = self._render(banking_workload(WorkloadConfig(size=40, seed=1)))
        assert a != b

    def test_rng_streams_keyed_by_consumer(self):
        config = WorkloadConfig(size=1, seed=9)
        assert config.rng("a").random() != config.rng("b").random()
        assert config.rng("a").random() == config.rng("a").random()
