"""Unit tests for the telemetry primitives and the service metric set."""

import pytest

from repro.service.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    ServiceTelemetry,
)


class TestCounter:
    def test_unlabeled(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labeled_split(self):
        counter = Counter("c")
        counter.inc(endpoint="/analyze", status="200")
        counter.inc(endpoint="/analyze", status="200")
        counter.inc(endpoint="/lint", status="400")
        assert counter.value(endpoint="/analyze", status="200") == 2
        assert counter.value(endpoint="/lint", status="400") == 1
        assert counter.value() == 3

    def test_render_prometheus_lines(self):
        counter = Counter("repro_requests_total", "requests")
        counter.inc(endpoint="/lint", status="200")
        lines = counter.render()
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_requests_total{endpoint="/lint",status="200"} 1' in lines

    def test_render_empty_emits_zero_sample(self):
        assert "c 0" in Counter("c").render()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_render(self):
        gauge = Gauge("repro_queue_depth")
        gauge.set(3)
        assert "repro_queue_depth 3" in gauge.render()


class TestHistogram:
    def test_observe_updates_count_sum_mean(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        assert histogram.count == 2
        assert histogram.sum == 2.0
        assert histogram.mean == 1.0

    def test_render_buckets_are_cumulative(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(99.0)
        lines = histogram.render()
        assert 'h_bucket{le="1.0"} 1' in lines
        assert 'h_bucket{le="2.0"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines

    def test_quantile_interpolates(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(100):
            histogram.observe(1.5)
        # all mass inside (1.0, 2.0]: the median interpolates inside it
        assert 1.0 < histogram.quantile(0.5) <= 2.0

    def test_quantile_empty(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_snapshot_keys(self):
        histogram = Histogram("h")
        histogram.observe(0.01)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum", "mean", "p50", "p99"}
        assert snap["count"] == 1


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = Registry()
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_render_ends_with_newline(self):
        registry = Registry()
        registry.counter("c").inc()
        assert registry.render().endswith("\n")

    def test_collector_polled_at_render_time(self):
        registry = Registry()
        box = {"n": 1}
        registry.add_collector(lambda: {"repro_box": box["n"]})
        assert "repro_box 1" in registry.render()
        box["n"] = 7
        assert "repro_box 7" in registry.render()
        assert registry.snapshot()["repro_box"] == {"value": 7}


class TestServiceTelemetry:
    def test_metric_set_rendered(self):
        telemetry = ServiceTelemetry()
        text = telemetry.registry.render()
        for name in (
            "repro_requests_total",
            "repro_request_seconds",
            "repro_jobs_total",
            "repro_job_seconds",
            "repro_batches_total",
            "repro_batch_size",
            "repro_coalesced_total",
            "repro_rejected_total",
            "repro_deadline_timeouts_total",
            "repro_queue_depth",
            "repro_inflight_requests",
        ):
            assert name in text

    def test_track_cache_exposes_counters(self):
        from repro.core.cache import VerdictCache

        telemetry = ServiceTelemetry()
        cache = VerdictCache()
        telemetry.track_cache(cache)
        cache.store("formula", "k", "verdict")
        cache.lookup("k", "other")
        text = telemetry.registry.render()
        assert "repro_verdict_cache_hits 1" in text
        assert "repro_verdict_cache_entries 1" in text

    def test_track_storage_exposes_counters_and_histograms(self):
        from repro.engine.storage import StorageStats

        stats = StorageStats()
        stats.record_capture(0.000004, inflight=2)
        stats.record_capture(0.000006, inflight=0)
        stats.record_vacuum(0.00002, reclaimed=3)
        telemetry = ServiceTelemetry()
        telemetry.track_storage(stats)
        text = telemetry.registry.render()
        assert "repro_storage_snapshot_captures_total 2" in text
        assert "repro_storage_vacuum_passes_total 1" in text
        assert "repro_storage_vacuum_reclaimed_total 3" in text
        # histogram-shaped collected values render as real histograms
        assert "# TYPE repro_storage_snapshot_capture_seconds histogram" in text
        assert 'repro_storage_snapshot_capture_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_storage_snapshot_capture_seconds_count 2" in text
        assert 'repro_storage_vacuum_seconds_bucket{le="+Inf"} 1' in text

    def test_track_storage_snapshot_summarises_histograms(self):
        from repro.engine.storage import StorageStats

        stats = StorageStats()
        stats.record_capture(0.000004, inflight=1)
        telemetry = ServiceTelemetry()
        telemetry.track_storage(stats)
        snap = telemetry.registry.snapshot()
        assert snap["repro_storage_snapshot_captures_total"] == {"value": 1}
        capture = snap["repro_storage_snapshot_capture_seconds"]
        assert capture["count"] == 1
        assert capture["sum"] == pytest.approx(0.000004)
        assert capture["mean"] == pytest.approx(0.000004)

    def test_track_storage_defaults_to_engine_global_stats(self):
        from repro.core.state import DbState
        from repro.engine.manager import Engine
        from repro.engine.storage import STORAGE_STATS

        STORAGE_STATS.reset()
        try:
            telemetry = ServiceTelemetry()
            telemetry.track_storage()
            engine = Engine(DbState(items={"x": 1}))
            txn = engine.begin("SNAPSHOT")
            engine.write_item(txn, "x", 2)
            engine.commit(txn)
            text = telemetry.registry.render()
            assert "repro_storage_snapshot_captures_total 1" in text
            assert "repro_storage_vacuum_passes_total 1" in text
        finally:
            STORAGE_STATS.reset()
