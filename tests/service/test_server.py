"""End-to-end tests of the analysis service over real sockets.

Each test boots a :class:`ReproService` on an ephemeral port inside its own
event loop and talks to it with the blocking :class:`ServiceClient` moved
off-loop via ``asyncio.to_thread`` — the exact client/server pair that
``repro submit`` / ``repro serve`` use.
"""

import asyncio
import json
import threading

import pytest

from repro.pipeline.jobs import JobSpec, run_job
from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from repro.service.server import ReproService, ServiceConfig


def serve_test(handler, **config_overrides):
    """Boot a service, run ``handler(service, client)``, drain, return."""
    config_overrides.setdefault("port", 0)
    config_overrides.setdefault("no_persist", True)
    config_overrides.setdefault("window", 0.0)

    async def main():
        service = ReproService(ServiceConfig(**config_overrides))
        await service.start()
        client = ServiceClient(port=service.port, timeout=60)
        try:
            return await handler(service, client)
        finally:
            service.begin_drain()
            await asyncio.wait_for(service._stopped.wait(), timeout=30)

    return asyncio.run(main())


def gate_runner(batcher, gate):
    """Replace the batcher's runner with one that blocks until ``gate`` set."""

    def runner(spec):
        gate.wait(30)
        return run_job(spec)

    batcher._runner = runner


class TestEndpoints:
    def test_healthz(self):
        async def handler(service, client):
            health = await asyncio.to_thread(client.health)
            assert health["http_status"] == 200
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            assert "uptime_seconds" in health and "cache_entries" in health

        serve_test(handler)

    def test_lint_round_trip(self):
        async def handler(service, client):
            response = await asyncio.to_thread(client.lint, "banking")
            assert response["kind"] == "lint"
            assert response["timed_out"] is False
            (entry,) = response["results"]
            assert entry["app"] == "banking"
            assert entry["exit_code"] == 0
            assert entry["coalesced"] is False
            assert entry["result"]["ok"] is True

        serve_test(handler)

    def test_analyze_matches_batch_byte_for_byte(self):
        spec = JobSpec(kind="analyze", app="banking", budget=150)
        batch = run_job(spec, no_persist=True)

        async def handler(service, client):
            response = await asyncio.to_thread(client.analyze, "banking", budget=150)
            (entry,) = response["results"]
            assert entry["fingerprint"] == spec.fingerprint()
            assert json.dumps(entry["result"], indent=2) == json.dumps(
                batch.payload, indent=2
            )
            assert entry["exit_code"] == batch.exit_code
            assert set(entry["meta"]) >= {"tiers", "cache"}

        serve_test(handler)

    def test_infer_appgen_matches_batch_byte_for_byte(self):
        spec = JobSpec(kind="infer", app="appgen:1", budget=300)
        batch = run_job(spec, no_persist=True)

        async def handler(service, client):
            response = await asyncio.to_thread(client.infer, "appgen:1", budget=300)
            (entry,) = response["results"]
            assert entry["fingerprint"] == spec.fingerprint()
            assert json.dumps(entry["result"]) == json.dumps(batch.payload)
            assert entry["exit_code"] == 0
            assert entry["result"]["levels"]

        serve_test(handler)

    def test_certify_matches_batch_byte_for_byte(self):
        spec = JobSpec(kind="certify", app="banking", budget=200, max_schedules=200)
        batch = run_job(spec, no_persist=True)

        async def handler(service, client):
            response = await asyncio.to_thread(
                client.certify, "banking", budget=200, max_schedules=200
            )
            (entry,) = response["results"]
            assert json.dumps(entry["result"], indent=2) == json.dumps(
                batch.payload, indent=2
            )
            assert entry["exit_code"] == batch.exit_code
            assert "stats" in entry["meta"]

        serve_test(handler)

    def test_multi_app_coalesces_duplicates(self):
        async def handler(service, client):
            response = await asyncio.to_thread(
                client.lint, ["banking", "banking", "employees"]
            )
            entries = response["results"]
            assert [e["app"] for e in entries] == ["banking", "banking", "employees"]
            assert entries[0]["coalesced"] is False
            assert entries[1]["coalesced"] is True
            assert entries[0]["result"] == entries[1]["result"]
            assert service.telemetry.coalesced.value() == 1

        serve_test(handler)

    def test_metrics_exposition(self):
        async def handler(service, client):
            await asyncio.to_thread(client.lint, "banking")
            text = await asyncio.to_thread(client.metrics)
            assert "# TYPE repro_requests_total counter" in text
            assert 'repro_requests_total{endpoint="/lint",status="200"} 1' in text
            assert "repro_job_seconds_bucket" in text
            assert "repro_verdict_cache_hits" in text
            assert "repro_queue_depth 0" in text

        serve_test(handler)


class TestRequestValidation:
    def test_invalid_json_is_400(self):
        async def handler(service, client):
            status, _ = await asyncio.to_thread(
                client.request, "POST", "/lint", {"app": "banking"}
            )
            assert status == 200
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(client.request_json, "POST", "/lint", {})
            assert err.value.status == 400

        serve_test(handler)

    def test_unknown_app_is_400(self):
        async def handler(service, client):
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(client.lint, "nope")
            assert err.value.status == 400
            assert "unknown application" in str(err.value)

        serve_test(handler)

    def test_unknown_field_is_400(self):
        async def handler(service, client):
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(client.lint, "banking", bananas=2)
            assert err.value.status == 400
            assert "unknown request fields" in str(err.value)

        serve_test(handler)

    def test_unknown_route_and_method(self):
        async def handler(service, client):
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(client.request_json, "GET", "/nope")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(client.request_json, "GET", "/lint")
            assert err.value.status == 405

        serve_test(handler)

    def test_oversized_body_is_413(self):
        async def handler(service, client):
            with pytest.raises(ServiceError) as err:
                await asyncio.to_thread(
                    client.request_json, "POST", "/lint",
                    {"app": "banking", "level": "x" * 200},
                )
            assert err.value.status == 413

        serve_test(handler, max_body=64)

    def test_bad_request_does_not_kill_the_server(self):
        async def handler(service, client):
            for _ in range(3):
                with pytest.raises(ServiceError):
                    await asyncio.to_thread(client.lint, "nope")
            response = await asyncio.to_thread(client.lint, "banking")
            assert response["results"][0]["exit_code"] == 0

        serve_test(handler)


class TestBackpressure:
    def test_flood_gets_fast_429(self):
        gate = threading.Event()

        async def handler(service, client):
            gate_runner(service.batcher, gate)
            first = asyncio.create_task(
                asyncio.to_thread(client.lint, "banking")
            )
            while service.batcher.admitted < 1:
                await asyncio.sleep(0.005)
            with pytest.raises(ServiceBusyError) as err:
                await asyncio.to_thread(client.lint, "employees")
            assert err.value.status == 429
            assert service.telemetry.rejected.value() == 1
            gate.set()
            response = await first
            assert response["results"][0]["exit_code"] == 0

        serve_test(handler, max_pending=1)

    def test_deadline_returns_partial_with_marker(self):
        gate = threading.Event()

        async def handler(service, client):
            gate_runner(service.batcher, gate)
            response = await asyncio.to_thread(
                client.lint, "banking", deadline_ms=100
            )
            assert response["timed_out"] is True
            (entry,) = response["results"]
            assert entry["timed_out"] is True
            assert "result" not in entry
            assert service.telemetry.timeouts.value() == 1
            gate.set()
            # the job kept running; once finished a retry is served normally
            while service.batcher.admitted > 0:
                await asyncio.sleep(0.01)
            retry = await asyncio.to_thread(client.lint, "banking")
            assert retry["results"][0]["exit_code"] == 0

        serve_test(handler)


class TestLifecycle:
    def test_drain_completes_and_rejects_new_work(self):
        async def handler(service, client):
            await asyncio.to_thread(client.lint, "banking")
            service.begin_drain()
            await asyncio.wait_for(service._stopped.wait(), timeout=30)
            assert service.draining
            # listener is closed: new connections fail fast
            from repro.service.client import ServiceConnectionError

            with pytest.raises((ServiceConnectionError, ServiceError)):
                await asyncio.to_thread(client.lint, "banking")

        serve_test(handler)

    def test_store_flushed_on_drain_and_warmed_on_boot(self, tmp_path):
        cache_dir = str(tmp_path / "verdicts")

        async def first_run(service, client):
            await asyncio.to_thread(client.analyze, "banking", budget=150)
            assert len(service.cache) > 0

        serve_test(first_run, no_persist=False, cache_dir=cache_dir)

        async def second_run(service, client):
            assert service.warmed_entries > 0
            health = await asyncio.to_thread(client.health)
            assert health["cache_entries"] == service.warmed_entries

        serve_test(second_run, no_persist=False, cache_dir=cache_dir)
