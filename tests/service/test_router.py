"""Tests for the fleet router: hash ring units and multi-process e2e.

The e2e tests boot a real :class:`FleetRouter` in the test's event loop,
which spawns real ``repro serve`` worker subprocesses — the exact
topology ``repro serve --fleet N`` runs — and talk to it with the
blocking client moved off-loop, mirroring ``tests/service/test_server.py``.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.errors import ReproError
from repro.pipeline.jobs import JobSpec, run_job
from repro.service.client import ServiceBusyError, ServiceClient
from repro.service.router import (
    FleetConfig,
    FleetRouter,
    HashRing,
    _relabel,
)
from repro.service.server import ServiceConfig


class TestHashRing:
    def test_spreads_keys_across_workers(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        owners = {ring.lookup(f"key-{i}") for i in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_lookup_is_deterministic(self):
        a, b = HashRing(), HashRing()
        for wid in (0, 1, 2):
            a.add(wid)
            b.add(wid)
        keys = [f"key-{i}" for i in range(500)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_removal_moves_only_the_dead_workers_keys(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        after = {k: ring.lookup(k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        assert moved == {k for k in keys if before[k] == 2}
        assert all(after[k] != 2 for k in keys)

    def test_respawn_restores_the_original_mapping(self):
        ring = HashRing()
        for wid in range(3):
            ring.add(wid)
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_raises(self):
        with pytest.raises(ReproError, match="no healthy workers"):
            HashRing().lookup("anything")

    def test_members_tracks_the_live_set(self):
        ring = HashRing(vnodes=8)
        ring.add(0)
        ring.add(5)
        assert ring.members() == {0, 5}
        assert len(ring) == 2
        ring.remove(0)
        assert ring.members() == {5}


class TestMetricRelabeling:
    def test_labelled_sample_gains_worker_label_first(self):
        line = 'repro_requests_total{endpoint="/analyze",status="200"} 7'
        assert _relabel(line, 3) == (
            'repro_requests_total{worker="3",endpoint="/analyze",status="200"} 7'
        )

    def test_bare_sample_gains_a_label_set(self):
        assert _relabel("repro_queue_depth 2", 0) == 'repro_queue_depth{worker="0"} 2'


def fleet_test(handler, fleet=2, router_overrides=None, **worker_overrides):
    """Boot a router + real worker subprocesses, run ``handler``, drain."""
    worker_overrides.setdefault("no_persist", True)
    worker_overrides.setdefault("window", 0.0)
    worker_overrides.setdefault("workers", 1)

    async def main():
        config = FleetConfig(
            port=0,
            fleet=fleet,
            worker=ServiceConfig(port=0, **worker_overrides),
            health_interval=0.1,
            respawn_backoff=0.05,
            **(router_overrides or {}),
        )
        router = FleetRouter(config)
        await router.start()
        client = ServiceClient(port=router.port, timeout=60)
        try:
            return await handler(router, client)
        finally:
            router.begin_drain()
            await asyncio.wait_for(router._stopped.wait(), timeout=60)

    return asyncio.run(main())


class TestFleetEndToEnd:
    def test_healthz_reports_the_whole_fleet(self):
        async def handler(router, client):
            health = await asyncio.to_thread(client.health)
            assert health["http_status"] == 200
            assert health["status"] == "ok"
            assert health["role"] == "router"
            assert health["fleet"] == 2
            assert health["healthy_workers"] == 2
            assert len(health["workers"]) == 2
            for entry in health["workers"]:
                assert entry["healthy"] is True
                assert isinstance(entry["pid"], int)
                assert isinstance(entry["port"], int)

        fleet_test(handler)

    def test_analyze_byte_identical_to_batch_and_single_server(self):
        spec = JobSpec(kind="analyze", app="banking", budget=150)
        batch = run_job(spec, no_persist=True)

        async def handler(router, client):
            response = await asyncio.to_thread(client.analyze, "banking", budget=150)
            (entry,) = response["results"]
            assert entry["fingerprint"] == spec.fingerprint()
            assert json.dumps(entry["result"], indent=2) == json.dumps(
                batch.payload, indent=2
            )
            assert entry["exit_code"] == batch.exit_code

        fleet_test(handler)

    def test_duplicate_specs_land_on_one_shard_and_coalesce(self):
        async def handler(router, client):
            response = await asyncio.to_thread(
                client.analyze, ["banking", "banking"], budget=150, seed=7
            )
            first, second = response["results"]
            assert first["fingerprint"] == second["fingerprint"]
            assert first["exit_code"] == second["exit_code"] == 0
            # fingerprint routing sends duplicates to the same worker, whose
            # batcher coalesces them — the second entry rides the first
            assert second["coalesced"] is True

        fleet_test(handler)

    def test_multi_app_batch_preserves_request_order(self):
        async def handler(router, client):
            apps = ["banking", "employees", "customers", "banking"]
            response = await asyncio.to_thread(client.lint, apps)
            assert [e["app"] for e in response["results"]] == apps
            assert all(e["exit_code"] == 0 for e in response["results"])

        fleet_test(handler)

    def test_metrics_aggregates_workers_with_labels(self):
        async def handler(router, client):
            await asyncio.to_thread(client.lint, "banking")
            text = await asyncio.to_thread(client.metrics)
            assert "repro_router_requests_total" in text
            assert 'worker="0"' in text and 'worker="1"' in text
            # worker HELP/TYPE lines are deduplicated across the fleet
            type_lines = [
                line for line in text.splitlines()
                if line.startswith("# TYPE repro_requests_total ")
            ]
            assert len(type_lines) == 1

        fleet_test(handler)

    def test_shard_backpressure_answers_429_before_forwarding(self):
        async def handler(router, client):
            spec = JobSpec(kind="lint", app="banking")
            owner = router.ring.lookup(spec.fingerprint())
            router.workers[owner].inflight = router.config.max_inflight
            with pytest.raises(ServiceBusyError):
                await asyncio.to_thread(client.lint, "banking")
            router.workers[owner].inflight = 0
            response = await asyncio.to_thread(client.lint, "banking")
            assert response["results"][0]["exit_code"] == 0
            assert router.telemetry.rejected.value() >= 1

        fleet_test(handler, router_overrides={"max_inflight": 2})

    def test_worker_kill_rebalances_then_respawns(self):
        async def handler(router, client):
            # kill the shard that owns the lint fingerprint, so the follow-up
            # request provably re-routes instead of landing on the survivor
            spec = JobSpec(kind="lint", app="banking")
            owner = router.ring.lookup(spec.fingerprint())
            victim = router.workers[owner].pid
            os.kill(victim, signal.SIGKILL)
            # requests issued right after the kill re-route to the survivor —
            # graceful degradation, never a 5xx
            response = await asyncio.to_thread(client.lint, "banking")
            assert response["results"][0]["exit_code"] == 0
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = await asyncio.to_thread(client.health)
                if health["healthy_workers"] == 2 and any(
                    w["restarts"] for w in health["workers"]
                ):
                    break
                await asyncio.sleep(0.2)
            assert health["healthy_workers"] == 2
            assert any(w["restarts"] == 1 for w in health["workers"])
            assert victim not in {w["pid"] for w in health["workers"]}

        fleet_test(handler)

    def test_draining_router_answers_503(self):
        async def handler(router, client):
            router._draining = True
            try:
                status, text = await asyncio.to_thread(
                    client.request, "POST", "/analyze", {"app": "banking"}
                )
            finally:
                router._draining = False
            assert status == 503
            assert "draining" in text

        fleet_test(handler)


class TestFleetConfigValidation:
    @pytest.mark.parametrize(
        ("kwargs", "fragment"),
        [
            ({"fleet": 0}, "fleet"),
            ({"fleet": "two"}, "fleet"),
            ({"max_inflight": 0}, "max_inflight"),
            ({"vnodes": 0}, "vnodes"),
            ({"pool_size": 0}, "pool_size"),
            ({"health_interval": 0}, "health_interval"),
            ({"boot_timeout": -1}, "boot_timeout"),
            ({"drain_timeout": 0}, "drain_timeout"),
            ({"forward_timeout": 0}, "forward_timeout"),
        ],
    )
    def test_nonsense_knobs_rejected(self, kwargs, fragment):
        with pytest.raises(ReproError, match=fragment):
            FleetConfig(**kwargs)

    def test_defaults_validate(self):
        config = FleetConfig()
        assert config.fleet == 2
        assert config.worker.workers >= 1
