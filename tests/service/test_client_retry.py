"""Client retry/backoff behaviour against scripted fake sockets.

Nothing here runs a real analysis: the "server" is a socket that replays
canned HTTP responses, so every 429/Retry-After/connection-drop scenario
is deterministic and fast.
"""

import asyncio
import json
import random
import socket
import threading

import pytest

from repro.service.client import (
    RETRY_BACKOFF_BASE,
    RETRY_BACKOFF_CAP,
    AsyncServiceClient,
    ServiceBusyError,
    ServiceClient,
    ServiceConnectionError,
    backoff_delay,
)


def _response(status, payload, *, retry_after=None, keep_alive=False) -> bytes:
    body = json.dumps(payload).encode()
    head = f"HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n"
    if retry_after is not None:
        head += f"Retry-After: {retry_after}\r\n"
    head += f"Content-Length: {len(body)}\r\n"
    head += f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
    return head.encode() + body


BUSY = _response(429, {"error": "queue full"}, retry_after=0.01)
OK = _response(200, {"kind": "lint", "results": []})


class TestBackoffDelay:
    def test_grows_exponentially_without_retry_after(self):
        rng = random.Random(0)
        delays = [
            backoff_delay(attempt, None, rng=random.Random(0))
            for attempt in range(4)
        ]
        assert delays == sorted(delays)
        assert delays[0] >= RETRY_BACKOFF_BASE
        del rng

    def test_retry_after_is_a_floor_not_a_ceiling(self):
        delay = backoff_delay(0, 2.0, rng=random.Random(1))
        assert delay >= 2.0
        # a large exponential step still wins over a small Retry-After
        assert backoff_delay(5, 0.001, rng=random.Random(1)) >= RETRY_BACKOFF_BASE * 32

    def test_cap_always_wins(self):
        assert backoff_delay(50, 9999.0) == RETRY_BACKOFF_CAP

    def test_jitter_stays_within_25_percent(self):
        for seed in range(20):
            delay = backoff_delay(0, 1.0, rng=random.Random(seed))
            assert 1.0 <= delay <= 1.25


class ScriptedServer:
    """Replays one canned response per accepted connection, in order."""

    def __init__(self, scripts) -> None:
        self.scripts = list(scripts)
        self.hits = 0
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(len(self.scripts))
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self) -> None:
        for script in self.scripts:
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(5)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                head, _sep, rest = data.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                while len(rest) < length:
                    rest += conn.recv(4096)
                self.hits += 1
                conn.sendall(script)

    def close(self) -> None:
        self.sock.close()
        self.thread.join(timeout=5)


class TestBlockingClientRetry:
    def test_default_is_fail_fast_on_429(self):
        server = ScriptedServer([BUSY])
        try:
            client = ServiceClient(port=server.port, timeout=5)
            with pytest.raises(ServiceBusyError) as excinfo:
                client.lint("banking")
            assert excinfo.value.retry_after == pytest.approx(0.01)
        finally:
            server.close()

    def test_retries_honour_retry_after_then_succeed(self):
        server = ScriptedServer([BUSY, BUSY, OK])
        try:
            client = ServiceClient(port=server.port, timeout=5)
            response = client.submit("lint", "banking", retries=2)
            assert response["kind"] == "lint"
            assert server.hits == 3
        finally:
            server.close()

    def test_retry_budget_exhausted_reraises(self):
        server = ScriptedServer([BUSY, BUSY])
        try:
            client = ServiceClient(port=server.port, timeout=5)
            with pytest.raises(ServiceBusyError):
                client.submit("lint", "banking", retries=1)
            assert server.hits == 2
        finally:
            server.close()


class _AsyncScriptedServer:
    """One asyncio connection replaying a list of responses back to back."""

    def __init__(self, scripts, close_after=None) -> None:
        self.scripts = list(scripts)
        self.close_after = close_after  # close the connection after N replies
        self.port = None
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        served = 0
        try:
            while self.scripts:
                head = b""
                while b"\r\n\r\n" not in head:
                    chunk = await reader.read(4096)
                    if not chunk:
                        return
                    head += chunk
                writer.write(self.scripts.pop(0))
                await writer.drain()
                served += 1
                if self.close_after is not None and served >= self.close_after:
                    break
        finally:
            writer.close()


class TestAsyncClientRetry:
    def test_busy_retry_reuses_the_pooled_connection(self):
        async def main():
            busy_keep = _response(
                429, {"error": "queue full"}, retry_after=0.01, keep_alive=True
            )
            ok_keep = _response(
                200, {"kind": "lint", "results": []}, keep_alive=True
            )
            async with _AsyncScriptedServer([busy_keep, ok_keep]) as server:
                client = AsyncServiceClient("127.0.0.1", server.port, pool_size=1)
                response = await client.submit("lint", "banking", retries=1)
                assert response["kind"] == "lint"
                assert client.stats["busy_retries"] == 1
                assert client.stats["connects"] == 1
                assert client.stats["reuses"] == 1
                await client.aclose()

        asyncio.run(main())

    def test_stale_pooled_connection_is_replaced_transparently(self):
        async def main():
            ok_keep = _response(200, {"ok": 1}, keep_alive=True)
            # first connection dies after one response; the pooled socket is
            # stale on reuse and the client must retry on a fresh connection
            async with _AsyncScriptedServer(
                [ok_keep, ok_keep], close_after=1
            ) as server:
                client = AsyncServiceClient("127.0.0.1", server.port, pool_size=1)
                await client.request_json("GET", "/healthz")
                response = await client.request_json("GET", "/healthz")
                assert response == {"ok": 1}
                assert client.stats["stale_retries"] == 1
                assert client.stats["connects"] == 2
                await client.aclose()

        asyncio.run(main())

    def test_unreachable_server_raises_connection_error(self):
        async def main():
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
            sock.close()  # nothing listens here any more
            client = AsyncServiceClient("127.0.0.1", port, timeout=2)
            with pytest.raises(ServiceConnectionError):
                await client.request_json("GET", "/healthz")

        asyncio.run(main())
