"""Unit tests for the batcher: coalescing, windows, admission, drain."""

import asyncio
import threading

import pytest

from repro.pipeline.jobs import JobSpec
from repro.service.batcher import Batcher, QueueFullError
from repro.service.telemetry import ServiceTelemetry


def spec(app="banking", kind="lint", **overrides):
    return JobSpec(kind=kind, app=app, **overrides)


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_same_fingerprint_shares_a_future(self):
        async def main():
            batcher = Batcher(lambda s: s.app, window=0.0)
            first, coalesced_first = batcher.admit(spec())
            second, coalesced_second = batcher.admit(spec())
            assert second is first
            assert not coalesced_first
            assert coalesced_second
            assert await first == "banking"
            batcher.shutdown()

        run(main())

    def test_distinct_specs_do_not_coalesce(self):
        async def main():
            batcher = Batcher(lambda s: s.app, window=0.0)
            first, _ = batcher.admit(spec(budget=100))
            second, _ = batcher.admit(spec(budget=200))
            assert second is not first
            await asyncio.gather(first, second)
            batcher.shutdown()

        run(main())

    def test_coalescing_counted_in_telemetry(self):
        async def main():
            telemetry = ServiceTelemetry()
            batcher = Batcher(lambda s: s.app, window=0.0, telemetry=telemetry)
            batcher.admit(spec())
            batcher.admit(spec())
            await batcher.drain()
            assert telemetry.coalesced.value() == 1
            batcher.shutdown()

        run(main())


class TestWindow:
    def test_window_batches_admissions_together(self):
        async def main():
            telemetry = ServiceTelemetry()
            batcher = Batcher(lambda s: s.app, window=0.05, telemetry=telemetry)
            first, _ = batcher.admit(spec(budget=1))
            second, _ = batcher.admit(spec(budget=2))
            third, _ = batcher.admit(spec(budget=3))
            await asyncio.gather(first, second, third)
            assert telemetry.batches.value() == 1
            assert telemetry.batch_size.count == 1
            batcher.shutdown()

        run(main())

    def test_separate_windows_are_separate_batches(self):
        async def main():
            telemetry = ServiceTelemetry()
            batcher = Batcher(lambda s: s.app, window=0.0, telemetry=telemetry)
            first, _ = batcher.admit(spec(budget=1))
            await first
            second, _ = batcher.admit(spec(budget=2))
            await second
            assert telemetry.batches.value() == 2
            batcher.shutdown()

        run(main())


class TestAdmissionControl:
    def test_cap_rejects_synchronously(self):
        async def main():
            gate = threading.Event()
            telemetry = ServiceTelemetry()
            batcher = Batcher(
                lambda s: gate.wait(5), window=0.0, max_pending=1, telemetry=telemetry
            )
            future, _ = batcher.admit(spec(budget=1))
            with pytest.raises(QueueFullError):
                batcher.admit(spec(budget=2))
            assert telemetry.rejected.value() == 1
            # a duplicate of the in-flight job still coalesces past the cap
            same, coalesced = batcher.admit(spec(budget=1))
            assert coalesced and same is future
            gate.set()
            await future
            batcher.shutdown()

        run(main())

    def test_slot_freed_after_completion(self):
        async def main():
            batcher = Batcher(lambda s: s.app, window=0.0, max_pending=1)
            first, _ = batcher.admit(spec(budget=1))
            await first
            second, _ = batcher.admit(spec(budget=2))
            assert await second == "banking"
            batcher.shutdown()

        run(main())


class TestFailureIsolation:
    def test_runner_exception_reaches_the_future_only(self):
        def runner(s):
            if s.budget == 1:
                raise RuntimeError("boom")
            return "ok"

        async def main():
            batcher = Batcher(runner, window=0.0)
            bad, _ = batcher.admit(spec(budget=1))
            good, _ = batcher.admit(spec(budget=2))
            with pytest.raises(RuntimeError):
                await bad
            assert await good == "ok"
            batcher.shutdown()

        run(main())


class TestDrain:
    def test_drain_flushes_pending_window(self):
        async def main():
            batcher = Batcher(lambda s: s.app, window=30.0)  # would never flush alone
            future, _ = batcher.admit(spec())
            assert await batcher.drain(timeout=10)
            assert future.done() and future.result() == "banking"
            batcher.shutdown()

        run(main())

    def test_admit_after_drain_rejected(self):
        async def main():
            batcher = Batcher(lambda s: s.app, window=0.0)
            await batcher.drain()
            with pytest.raises(QueueFullError):
                batcher.admit(spec())
            batcher.shutdown()

        run(main())
