"""ServiceConfig validation: nonsense knobs fail at construction, clearly.

Before this validation existed, a ``workers=0`` pool or ``max_pending=0``
queue would not fail until the batcher's first dispatch, long after flag
parsing; every rejection must be a ReproError naming the offending field
so the CLI renders it as a one-line usage error (exit 2).
"""

import pytest

from repro.errors import ReproError
from repro.service.server import ServiceConfig


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        ("kwargs", "fragment"),
        [
            ({"workers": 0}, "workers"),
            ({"workers": -1}, "workers"),
            ({"workers": 1.5}, "workers"),
            ({"job_workers": 0}, "job_workers"),
            ({"max_pending": 0}, "max_pending"),
            ({"max_pending": "many"}, "max_pending"),
            ({"max_body": 0}, "max_body"),
            ({"window": -0.001}, "window"),
            ({"window": "fast"}, "window"),
            ({"drain_timeout": -1}, "drain_timeout"),
            ({"persist_interval": -1}, "persist_interval"),
            ({"read_timeout": 0}, "read_timeout"),
            ({"read_timeout": -5}, "read_timeout"),
            ({"default_deadline_ms": 0}, "default_deadline_ms"),
            ({"default_deadline_ms": -100}, "default_deadline_ms"),
            ({"default_deadline_ms": 1.5}, "default_deadline_ms"),
            ({"port": -1}, "port"),
            ({"port": 65536}, "port"),
            ({"port": "8923"}, "port"),
            ({"backend": "gevent"}, "backend"),
            ({"persist_interval": 5.0, "no_persist": True}, "persist_interval"),
        ],
    )
    def test_nonsense_knobs_rejected_by_name(self, kwargs, fragment):
        with pytest.raises(ReproError, match=fragment):
            ServiceConfig(**kwargs)

    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.workers == 2
        assert config.persist_interval == 0.0

    def test_boundary_values_accepted(self):
        ServiceConfig(port=0)
        ServiceConfig(port=65535)
        ServiceConfig(window=0.0, drain_timeout=0.0, persist_interval=0.0)
        ServiceConfig(workers=1, job_workers=1, max_pending=1, max_body=1)
        ServiceConfig(default_deadline_ms=1)
        ServiceConfig(persist_interval=2.5, cache_dir=".repro-cache")

    def test_validate_recheck_after_mutation(self):
        config = ServiceConfig()
        config.max_pending = 0
        with pytest.raises(ReproError, match="max_pending"):
            config.validate()


class TestParseJobPayload:
    """The shared payload parser (server executes, router shards)."""

    def test_certify_dpor_option_accepted(self):
        # `repro submit certify` always sends dpor; it must not 400
        from repro.service.server import parse_job_payload

        specs, _deadline, options = parse_job_payload(
            "certify", {"app": "banking", "dpor": "lite"}
        )
        assert options["dpor"] == "lite"
        assert specs[0].dpor == "lite"

    def test_unknown_field_rejected_with_400(self):
        import pytest as _pytest

        from repro.service.http import HttpError
        from repro.service.server import parse_job_payload

        with _pytest.raises(HttpError) as excinfo:
            parse_job_payload("analyze", {"app": "banking", "frobnicate": 1})
        assert excinfo.value.status == 400
        assert "frobnicate" in str(excinfo.value)

    def test_options_round_trip_to_identical_specs(self):
        # the router forwards options verbatim; worker-side parsing must
        # reproduce the same fingerprints the router sharded on
        from repro.service.server import parse_job_payload

        payload = {"apps": ["banking", "employees"], "budget": 500, "seed": 3}
        specs, _deadline, options = parse_job_payload("analyze", payload)
        respecs, _d, _o = parse_job_payload(
            "analyze", {"apps": ["banking", "employees"], **options}
        )
        assert [s.fingerprint() for s in specs] == [s.fingerprint() for s in respecs]
