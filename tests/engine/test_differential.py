"""Differential harness: the MVCC engine vs the frozen legacy engine.

Every operation script is replayed through both engines in lockstep.
After each step the two must agree on the outcome (value returned, or the
exception's type and payload) and on the public live and committed
states; at the end the recorded histories must match op for op —
``HistoryOp.version`` included, since recorded histories are replayed and
compared byte-for-byte elsewhere in the pipeline.

A hypothesis property test drives random multi-transaction programs
through random schedules to hunt for divergence the hand-written scripts
miss.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.state import DbState
from repro.engine.legacy import LegacyEngine
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import ReproError

LEVELS = (
    "READ UNCOMMITTED",
    "READ COMMITTED",
    "READ COMMITTED FCW",
    "REPEATABLE READ",
    "SNAPSHOT",
    "SERIALIZABLE",
)


def initial_state() -> DbState:
    return DbState(
        items={"x": 5, "y": 0},
        arrays={"acct": {0: {"bal": 10}, 1: {"bal": 3}}},
        tables={"T": [{"k": 1}, {"k": 3}]},
    )


def _ge_pred(threshold):
    return lambda row: row["k"] >= threshold


def _bump_changes(delta):
    return lambda row: {"k": row["k"] + delta}


class DualEngine:
    """Run the same operations against both engines and diff everything."""

    def __init__(self, initial: DbState | None = None, vacuum: str = "auto") -> None:
        base = initial or initial_state()
        self.new = Engine(base.copy(), vacuum=vacuum)
        self.old = LegacyEngine(base.copy())
        self.txns: dict = {}

    def begin(self, name: str, level: str) -> None:
        self.txns[name] = (self.new.begin(level), self.old.begin(level))
        self.check()

    def op(self, name: str, method: str, *args):
        """Apply one engine method to both; return (outcome, outcome)."""
        new_txn, old_txn = self.txns[name]
        outcomes = []
        for engine, txn in ((self.new, new_txn), (self.old, old_txn)):
            try:
                outcomes.append(("ok", getattr(engine, method)(txn, *args)))
            except WouldBlock as exc:
                # blocker ids are engine-local; diff the contended granule
                outcomes.append(("WouldBlock", exc.key, exc.mode))
            except ReproError as exc:
                outcomes.append((type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1], (
            f"{method}{args} diverged: mvcc={outcomes[0]} legacy={outcomes[1]}"
        )
        self.check()
        return outcomes[0]

    def check(self) -> None:
        assert self.new.public_live().canonical() == self.old.public_live().canonical()
        assert (
            self.new.committed_state().canonical()
            == self.old.committed_state().canonical()
        )

    def check_history(self) -> None:
        new_ops = [
            (op.kind, op.key, op.version, op.dirty_from, op.info)
            for op in self.new.history
        ]
        old_ops = [
            (op.kind, op.key, op.version, op.dirty_from, op.info)
            for op in self.old.history
        ]
        assert new_ops == old_ops


class TestScriptedParity:
    def test_plain_read_write_commit(self):
        dual = DualEngine()
        dual.begin("a", "READ COMMITTED")
        dual.op("a", "read_item", "x")
        dual.op("a", "write_item", "x", 9)
        dual.op("a", "commit")
        dual.check_history()

    def test_abort_restores_everything(self):
        dual = DualEngine()
        dual.begin("a", "REPEATABLE READ")
        dual.op("a", "write_item", "x", 9)
        dual.op("a", "write_field", "acct", 0, "bal", 99)
        dual.op("a", "insert", "T", {"k": 7})
        dual.op("a", "update", "T", _ge_pred(3), _bump_changes(10))
        dual.op("a", "delete", "T", _ge_pred(0))
        dual.op("a", "abort")
        dual.check_history()

    def test_si_buffered_writes_and_fcw(self):
        dual = DualEngine()
        dual.begin("a", "SNAPSHOT")
        dual.begin("b", "SNAPSHOT")
        dual.op("a", "read_item", "x")
        dual.op("b", "read_item", "x")
        dual.op("a", "write_item", "x", 6)
        dual.op("b", "write_item", "x", 7)
        dual.op("a", "commit")
        outcome = dual.op("b", "commit")  # first-committer-wins abort
        assert outcome[0] == "FirstCommitterWinsAbort"
        dual.check_history()

    def test_si_relational_ops(self):
        dual = DualEngine()
        dual.begin("a", "SNAPSHOT")
        dual.op("a", "insert", "T", {"k": 10})
        dual.op("a", "select", "T", _ge_pred(0))
        dual.op("a", "update", "T", _ge_pred(3), _bump_changes(1))
        dual.op("a", "delete", "T", _ge_pred(11))
        dual.op("a", "select", "T", _ge_pred(0))
        dual.op("a", "commit")
        dual.check_history()

    def test_snapshot_reader_spans_writer_commits(self):
        dual = DualEngine()
        dual.begin("r", "SNAPSHOT")
        dual.op("r", "read_field", "acct", 0, "bal")
        for round_no in (1, 2, 3):
            name = f"w{round_no}"
            dual.begin(name, "READ COMMITTED")
            dual.op(name, "write_field", "acct", 0, "bal", 10 + round_no)
            dual.op(name, "commit")
            dual.op("r", "read_field", "acct", 0, "bal")  # still 10
        dual.op("r", "commit")
        dual.check_history()

    def test_blocked_writer_and_unknown_locations(self):
        dual = DualEngine()
        dual.begin("a", "READ COMMITTED")
        dual.begin("b", "READ COMMITTED")
        dual.op("a", "write_item", "x", 1)
        outcome = dual.op("b", "write_item", "x", 2)
        assert outcome[0] == "WouldBlock"
        outcome = dual.op("b", "read_item", "nope")
        assert outcome[0] == "EvaluationError"
        dual.op("a", "commit")
        dual.op("b", "write_item", "x", 2)
        dual.op("b", "commit")
        dual.check_history()


# -- the hypothesis property -------------------------------------------------

_OPS = st.sampled_from(
    [
        ("read_item", "x"),
        ("read_item", "y"),
        ("write_item:x",),
        ("write_item:y",),
        ("read_field", "acct", 0, "bal"),
        ("read_field", "acct", 1, "bal"),
        ("write_field:0",),
        ("write_field:1",),
        ("select",),
        ("insert",),
        ("update",),
        ("delete",),
    ]
)


def _materialise(op, value):
    """Turn a sampled op token into (method, args) with a concrete value."""
    kind = op[0]
    if kind.startswith("write_item:"):
        return ("write_item", (kind.split(":")[1], value))
    if kind.startswith("write_field:"):
        return ("write_field", ("acct", int(kind.split(":")[1]), "bal", value))
    if kind == "select":
        return ("select", (("T", _ge_pred(value % 4))))
    if kind == "insert":
        return ("insert", ("T", {"k": value % 7}))
    if kind == "update":
        return ("update", ("T", _ge_pred(value % 4), _bump_changes(1 + value % 3)))
    if kind == "delete":
        return ("delete", ("T", _ge_pred(3 + value % 4)))
    return (kind, tuple(op[1:]))


@st.composite
def _workload(draw):
    n_txns = draw(st.integers(min_value=2, max_value=3))
    programs = []
    for _ in range(n_txns):
        level = draw(st.sampled_from(LEVELS))
        length = draw(st.integers(min_value=1, max_value=4))
        ops = [
            _materialise(draw(_OPS), draw(st.integers(min_value=0, max_value=9)))
            for _ in range(length)
        ]
        programs.append((level, ops))
    # the schedule interleaves instance indices; extra entries give blocked
    # or finished instances more chances to retry/commit
    schedule = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_txns - 1),
            min_size=n_txns,
            max_size=6 * n_txns,
        )
    )
    return programs, schedule


@settings(max_examples=60, deadline=None)
@given(_workload())
def test_random_schedules_agree(workload):
    """Legacy and MVCC engines never diverge on any schedule of any program.

    Instances advance per the random schedule; a blocked operation is
    retried on the instance's next turn, an abort (FCW, explicit) ends the
    instance, and every instance still alive at the end of the schedule
    attempts to commit in index order (retrying past blocks by aborting
    the blocker's victimhood is out of scope — a final commit that blocks
    simply aborts).  Public states are diffed after every single step.
    """
    programs, schedule = workload
    dual = DualEngine()
    cursors = [0] * len(programs)
    finished = [False] * len(programs)
    for index, (level, _ops) in enumerate(programs):
        dual.begin(str(index), level)
    for index in schedule:
        if finished[index]:
            continue
        level, ops = programs[index]
        name = str(index)
        if cursors[index] >= len(ops):
            status = dual.op(name, "commit")[0]
            finished[index] = status != "WouldBlock"
            continue
        method, args = ops[cursors[index]]
        status = dual.op(name, method, *args)[0]
        if status == "ok" or status == "EvaluationError":
            cursors[index] += 1  # EvaluationError does not abort the txn
        elif status != "WouldBlock":
            finished[index] = True  # aborted (FCW or forced)
    for index in range(len(programs)):
        if not finished[index]:
            name = str(index)
            status = dual.op(name, "commit")[0]
            if status == "WouldBlock":
                dual.op(name, "abort")
    dual.check_history()


def test_vacuum_modes_do_not_change_observables():
    """The same script under vacuum="auto" and "off" is indistinguishable."""
    results = []
    for vacuum in ("auto", "off"):
        engine = Engine(initial_state(), vacuum=vacuum)
        reader = engine.begin("SNAPSHOT")
        engine.read_field(reader, "acct", 0, "bal")
        for value in (11, 12, 13):
            writer = engine.begin("READ COMMITTED")
            engine.write_field(writer, "acct", 0, "bal", value)
            engine.commit(writer)
        observed = engine.read_field(reader, "acct", 0, "bal")
        engine.commit(reader)
        history = [(op.kind, op.key, op.version, op.info) for op in engine.history]
        results.append(
            (observed, engine.committed_state().canonical(), history,
             engine.store.version_count())
        )
    (obs_auto, state_auto, hist_auto, versions_auto) = results[0]
    (obs_off, state_off, hist_off, versions_off) = results[1]
    assert obs_auto == obs_off == 10
    assert state_auto == state_off
    assert hist_auto == hist_off
    # ... but the GC difference is real: "off" hoards superseded versions
    assert versions_off > versions_auto
