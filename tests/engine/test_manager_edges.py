"""Edge cases of the engine: mixed-mode conflicts, SI commit blocking."""

import pytest

from repro.core.state import DbState
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import FirstCommitterWinsAbort


@pytest.fixture
def engine():
    return Engine(DbState(items={"x": 1}, tables={"T": [{"k": 1, "done": False}]}))


class TestSnapshotCommitConflicts:
    def test_si_commit_blocks_on_lockers_write(self, engine):
        """A SNAPSHOT commit must wait for an in-place writer's X lock."""
        snap = engine.begin("SNAPSHOT")
        engine.write_item(snap, "x", 5)
        locker = engine.begin("READ COMMITTED")
        engine.write_item(locker, "x", 9)
        with pytest.raises(WouldBlock):
            engine.commit(snap)
        engine.commit(locker)
        # the locker committed a newer version: FCW must now abort the SI txn
        with pytest.raises(FirstCommitterWinsAbort):
            engine.commit(snap)

    def test_si_commit_after_locker_aborts(self, engine):
        snap = engine.begin("SNAPSHOT")
        engine.write_item(snap, "x", 5)
        locker = engine.begin("READ COMMITTED")
        engine.write_item(locker, "x", 9)
        engine.abort(locker)
        engine.commit(snap)  # version unchanged by the aborted locker
        reader = engine.begin("READ COMMITTED")
        assert engine.read_item(reader, "x") == 5

    def test_si_row_update_conflict(self, engine):
        t1 = engine.begin("SNAPSHOT")
        t2 = engine.begin("SNAPSHOT")
        engine.update(t1, "T", lambda r: r["k"] == 1, lambda r: {"done": True})
        engine.update(t2, "T", lambda r: r["k"] == 1, lambda r: {"k": 7})
        engine.commit(t1)
        with pytest.raises(FirstCommitterWinsAbort):
            engine.commit(t2)
        reader = engine.begin("READ COMMITTED")
        rows = engine.select(reader, "T", lambda r: True)
        assert rows == [{"k": 1, "done": True}]

    def test_si_inserts_never_conflict(self, engine):
        t1 = engine.begin("SNAPSHOT")
        t2 = engine.begin("SNAPSHOT")
        engine.insert(t1, "T", {"k": 2, "done": False})
        engine.insert(t2, "T", {"k": 3, "done": False})
        engine.commit(t1)
        engine.commit(t2)
        reader = engine.begin("READ COMMITTED")
        assert len(engine.select(reader, "T", lambda r: True)) == 3


class TestMixedModeVisibility:
    def test_si_snapshot_unaffected_by_later_locker(self, engine):
        snap = engine.begin("SNAPSHOT")
        locker = engine.begin("READ COMMITTED")
        engine.update(locker, "T", lambda r: True, lambda r: {"done": True})
        engine.commit(locker)
        rows = engine.select(snap, "T", lambda r: True)
        assert rows == [{"k": 1, "done": False}]  # begin-time image

    def test_rc_fcw_abort_releases_locks(self, engine):
        t1 = engine.begin("READ COMMITTED FCW")
        assert engine.read_item(t1, "x") == 1
        t2 = engine.begin("READ COMMITTED")
        engine.write_item(t2, "x", 3)
        engine.commit(t2)
        with pytest.raises(FirstCommitterWinsAbort):
            engine.write_item(t1, "x", 4)
        # t1's lock (acquired before the validation failure) must be gone
        t3 = engine.begin("READ COMMITTED")
        engine.write_item(t3, "x", 5)
        engine.commit(t3)

    def test_select_retry_after_block_leaves_no_short_locks(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.update(writer, "T", lambda r: r["k"] == 1, lambda r: {"done": True})
        reader = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.select(reader, "T", lambda r: True)
        engine.commit(writer)
        rows = engine.select(reader, "T", lambda r: True)
        assert rows == [{"k": 1, "done": True}]
        # the reader's failed attempt must not have left locks that block
        # another writer now
        writer2 = engine.begin("READ COMMITTED")
        engine.update(writer2, "T", lambda r: r["k"] == 1, lambda r: {"done": False})


class TestUndoCompleteness:
    def test_abort_of_mixed_operations(self, engine):
        initial = engine.committed_state()
        txn = engine.begin("READ COMMITTED")
        engine.write_item(txn, "x", 100)
        engine.insert(txn, "T", {"k": 2, "done": False})
        engine.update(txn, "T", lambda r: r["k"] == 1, lambda r: {"done": True})
        engine.delete(txn, "T", lambda r: r["k"] == 2)
        engine.abort(txn)
        assert engine.committed_state().same_as(initial)
        assert engine.live_state().same_as(initial)

    def test_history_records_abort_reason(self, engine):
        txn = engine.begin("READ COMMITTED")
        engine.abort(txn, reason="test reason")
        abort_ops = [op for op in engine.history if op.kind == "abort"]
        assert abort_ops[0].info["reason"] == "test reason"
