"""Unit tests for the engine's per-level operation semantics."""

import pytest

from repro.core.state import DbState
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import EngineError, FirstCommitterWinsAbort, TransactionAborted


@pytest.fixture
def engine():
    return Engine(
        DbState(
            items={"x": 1, "y": 2},
            arrays={"emp": {0: {"rate": 2, "sal": 4}}},
            tables={"T": [{"k": 1, "done": False}]},
        )
    )


class TestLifecycle:
    def test_begin_assigns_ids(self, engine):
        t1 = engine.begin("READ COMMITTED")
        t2 = engine.begin("READ COMMITTED")
        assert t1.txn_id != t2.txn_id

    def test_unknown_level_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.begin("CHAOS")

    def test_commit_releases_locks(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.write_item(t1, "x", 5)
        engine.commit(t1)
        t2 = engine.begin("READ COMMITTED")
        assert engine.read_item(t2, "x") == 5

    def test_abort_restores_state(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.write_item(t1, "x", 5)
        engine.insert(t1, "T", {"k": 9})
        engine.update(t1, "T", lambda r: r["k"] == 1, lambda r: {"done": True})
        engine.abort(t1)
        t2 = engine.begin("READ COMMITTED")
        assert engine.read_item(t2, "x") == 1
        rows = engine.select(t2, "T", lambda r: True)
        assert rows == [{"k": 1, "done": False}]

    def test_operations_after_abort_raise(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.abort(t1)
        with pytest.raises(TransactionAborted):
            engine.read_item(t1, "x")

    def test_operations_after_commit_raise(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.commit(t1)
        with pytest.raises(EngineError):
            engine.read_item(t1, "x")

    def test_double_abort_is_noop(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.abort(t1)
        engine.abort(t1)  # no exception


class TestReadVisibility:
    def test_ru_sees_dirty(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 99)
        reader = engine.begin("READ UNCOMMITTED")
        assert engine.read_item(reader, "x") == 99

    def test_rc_blocks_on_dirty(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 99)
        reader = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.read_item(reader, "x")

    def test_rc_short_lock_releases(self, engine):
        reader = engine.begin("READ COMMITTED")
        engine.read_item(reader, "x")
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 5)  # no block: short lock released

    def test_rr_long_lock_blocks_writer(self, engine):
        reader = engine.begin("REPEATABLE READ")
        engine.read_item(reader, "x")
        writer = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.write_item(writer, "x", 5)

    def test_record_read_is_atomic_lock(self, engine):
        reader = engine.begin("READ COMMITTED")
        values = engine.read_record(reader, "emp", 0, ("rate", "sal"))
        assert values == {"rate": 2, "sal": 4}

    def test_snapshot_reads_from_begin(self, engine):
        snap = engine.begin("SNAPSHOT")
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 42)
        engine.commit(writer)
        assert engine.read_item(snap, "x") == 1  # still the begin-time value

    def test_snapshot_never_blocks_reading(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 42)
        snap = engine.begin("SNAPSHOT")
        assert engine.read_item(snap, "x") == 1


class TestWriteSemantics:
    def test_write_write_blocks(self, engine):
        t1 = engine.begin("READ UNCOMMITTED")
        engine.write_item(t1, "x", 5)
        t2 = engine.begin("READ UNCOMMITTED")
        with pytest.raises(WouldBlock):
            engine.write_item(t2, "x", 6)

    def test_fcw_write_aborts_on_stale_read(self, engine):
        t1 = engine.begin("READ COMMITTED FCW")
        assert engine.read_item(t1, "x") == 1
        t2 = engine.begin("READ COMMITTED")
        engine.write_item(t2, "x", 7)
        engine.commit(t2)
        with pytest.raises(FirstCommitterWinsAbort):
            engine.write_item(t1, "x", 8)

    def test_fcw_write_without_prior_read_allowed(self, engine):
        t1 = engine.begin("READ COMMITTED FCW")
        t2 = engine.begin("READ COMMITTED")
        engine.write_item(t2, "y", 7)
        engine.commit(t2)
        engine.write_item(t1, "x", 8)  # x untouched by t2
        engine.commit(t1)

    def test_snapshot_fcw_on_commit(self, engine):
        t1 = engine.begin("SNAPSHOT")
        t2 = engine.begin("SNAPSHOT")
        engine.write_item(t1, "x", 10)
        engine.write_item(t2, "x", 20)
        engine.commit(t1)
        with pytest.raises(FirstCommitterWinsAbort):
            engine.commit(t2)

    def test_snapshot_disjoint_writes_both_commit(self, engine):
        t1 = engine.begin("SNAPSHOT")
        t2 = engine.begin("SNAPSHOT")
        engine.write_item(t1, "x", 10)
        engine.write_item(t2, "y", 20)
        engine.commit(t1)
        engine.commit(t2)
        t3 = engine.begin("READ COMMITTED")
        assert engine.read_item(t3, "x") == 10
        assert engine.read_item(t3, "y") == 20

    def test_snapshot_writes_invisible_until_commit(self, engine):
        t1 = engine.begin("SNAPSHOT")
        engine.write_item(t1, "x", 10)
        reader = engine.begin("READ COMMITTED")
        assert engine.read_item(reader, "x") == 1

    def test_snapshot_reads_own_writes(self, engine):
        t1 = engine.begin("SNAPSHOT")
        engine.write_item(t1, "x", 10)
        assert engine.read_item(t1, "x") == 10


class TestRelationalSemantics:
    def test_select_returns_clean_rows(self, engine):
        t1 = engine.begin("READ COMMITTED")
        rows = engine.select(t1, "T", lambda r: True)
        assert rows == [{"k": 1, "done": False}]

    def test_rc_select_sees_committed_image_of_locked_row(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.update(writer, "T", lambda r: r["k"] == 1, lambda r: {"k": 77})
        reader = engine.begin("READ COMMITTED")
        # the committed image (k=1) matches, so the reader blocks on the row
        with pytest.raises(WouldBlock):
            engine.select(reader, "T", lambda r: r.get("k") == 1)

    def test_ru_select_sees_dirty_rows(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.insert(writer, "T", {"k": 5, "done": False})
        reader = engine.begin("READ UNCOMMITTED")
        rows = engine.select(reader, "T", lambda r: True)
        assert len(rows) == 2

    def test_uncommitted_delete_still_visible_to_rc(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.delete(writer, "T", lambda r: r["k"] == 1)
        reader = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.select(reader, "T", lambda r: r.get("k") == 1)

    def test_serializable_predicate_blocks_phantom(self, engine):
        reader = engine.begin("SERIALIZABLE")
        engine.select(reader, "T", lambda r: r.get("k") == 2)
        writer = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.insert(writer, "T", {"k": 2, "done": False})

    def test_rr_allows_phantom_insert(self, engine):
        reader = engine.begin("REPEATABLE READ")
        engine.select(reader, "T", lambda r: r.get("k") == 2)
        writer = engine.begin("READ COMMITTED")
        engine.insert(writer, "T", {"k": 2, "done": False})  # no block

    def test_rr_row_locks_block_update(self, engine):
        reader = engine.begin("REPEATABLE READ")
        engine.select(reader, "T", lambda r: True)
        writer = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.update(writer, "T", lambda r: True, lambda r: {"done": True})

    def test_update_predicate_lock_blocks_insert_into_it(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.update(writer, "T", lambda r: r.get("done") is False, lambda r: {"done": True})
        other = engine.begin("READ COMMITTED")
        with pytest.raises(WouldBlock):
            engine.insert(other, "T", {"k": 9, "done": False})

    def test_snapshot_relational_roundtrip(self, engine):
        t1 = engine.begin("SNAPSHOT")
        engine.insert(t1, "T", {"k": 2, "done": False})
        engine.update(t1, "T", lambda r: r["k"] == 2, lambda r: {"done": True})
        assert len(engine.select(t1, "T", lambda r: True)) == 2
        engine.commit(t1)
        t2 = engine.begin("READ COMMITTED")
        rows = engine.select(t2, "T", lambda r: r.get("k") == 2)
        assert rows == [{"k": 2, "done": True}]

    def test_snapshot_delete_of_snapshot_insert(self, engine):
        t1 = engine.begin("SNAPSHOT")
        engine.insert(t1, "T", {"k": 5, "done": False})
        engine.delete(t1, "T", lambda r: r.get("k") == 5)
        engine.commit(t1)
        t2 = engine.begin("READ COMMITTED")
        assert engine.select(t2, "T", lambda r: r.get("k") == 5) == []


class TestHistoryRecording:
    def test_operations_recorded_in_order(self, engine):
        t1 = engine.begin("READ COMMITTED")
        engine.read_item(t1, "x")
        engine.write_item(t1, "x", 2)
        engine.commit(t1)
        kinds = [op.kind for op in engine.history if op.txn_id == t1.txn_id]
        assert kinds == ["begin", "r", "w", "commit"]

    def test_dirty_read_flagged(self, engine):
        writer = engine.begin("READ COMMITTED")
        engine.write_item(writer, "x", 99)
        reader = engine.begin("READ UNCOMMITTED")
        engine.read_item(reader, "x")
        read_op = [op for op in engine.history if op.txn_id == reader.txn_id and op.kind == "r"][0]
        assert read_op.dirty_from == writer.txn_id
