"""Unit tests for the lock manager."""

import pytest

from repro.engine.locks import EXCLUSIVE, LONG, LockManager, SHARED, SHORT, WouldBlock


@pytest.fixture
def locks():
    return LockManager()


KEY = ("item", "x")


class TestItemLocks:
    def test_shared_locks_compatible(self, locks):
        locks.acquire(1, KEY, SHARED, LONG)
        locks.acquire(2, KEY, SHARED, LONG)
        assert set(locks.holders(KEY)) == {1, 2}

    def test_exclusive_blocks_shared(self, locks):
        locks.acquire(1, KEY, EXCLUSIVE, LONG)
        with pytest.raises(WouldBlock) as exc:
            locks.acquire(2, KEY, SHARED, SHORT)
        assert exc.value.blockers == {1}

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(1, KEY, SHARED, LONG)
        with pytest.raises(WouldBlock):
            locks.acquire(2, KEY, EXCLUSIVE, LONG)

    def test_exclusive_blocks_exclusive(self, locks):
        locks.acquire(1, KEY, EXCLUSIVE, LONG)
        with pytest.raises(WouldBlock):
            locks.acquire(2, KEY, EXCLUSIVE, LONG)

    def test_reentrant_acquisition(self, locks):
        locks.acquire(1, KEY, SHARED, LONG)
        locks.acquire(1, KEY, SHARED, LONG)
        locks.acquire(1, KEY, EXCLUSIVE, LONG)  # upgrade when sole holder
        assert locks.holders(KEY)[1] == EXCLUSIVE

    def test_no_downgrade(self, locks):
        locks.acquire(1, KEY, EXCLUSIVE, LONG)
        locks.acquire(1, KEY, SHARED, SHORT)
        assert locks.holders(KEY)[1] == EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.acquire(1, KEY, SHARED, LONG)
        locks.acquire(2, KEY, SHARED, LONG)
        with pytest.raises(WouldBlock):
            locks.acquire(1, KEY, EXCLUSIVE, LONG)

    def test_release_frees_waiters(self, locks):
        locks.acquire(1, KEY, EXCLUSIVE, LONG)
        locks.release(1, KEY)
        locks.acquire(2, KEY, EXCLUSIVE, LONG)  # no exception

    def test_release_all(self, locks):
        locks.acquire(1, KEY, EXCLUSIVE, LONG)
        locks.acquire(1, ("item", "y"), SHARED, LONG)
        locks.release_all(1)
        assert locks.held_by(1) == []

    def test_held_by(self, locks):
        locks.acquire(1, KEY, SHARED, LONG)
        assert locks.held_by(1) == [KEY]


class TestPredicateLocks:
    def test_insert_into_read_predicate_blocks(self, locks):
        locks.acquire_predicate(1, "T", lambda row: row.get("k") == 1, SHARED)
        with pytest.raises(WouldBlock):
            locks.check_rows_against_predicates(2, "T", [{"k": 1}], EXCLUSIVE)

    def test_insert_outside_predicate_allowed(self, locks):
        locks.acquire_predicate(1, "T", lambda row: row.get("k") == 1, SHARED)
        locks.check_rows_against_predicates(2, "T", [{"k": 2}], EXCLUSIVE)

    def test_own_predicate_never_blocks(self, locks):
        locks.acquire_predicate(1, "T", lambda row: True, SHARED)
        locks.check_rows_against_predicates(1, "T", [{"k": 1}], EXCLUSIVE)

    def test_other_table_ignored(self, locks):
        locks.acquire_predicate(1, "T", lambda row: True, SHARED)
        locks.check_rows_against_predicates(2, "U", [{"k": 1}], EXCLUSIVE)

    def test_write_predicate_blocks_matching_write(self, locks):
        locks.acquire_predicate(1, "T", lambda row: row.get("k") == 1, EXCLUSIVE)
        with pytest.raises(WouldBlock):
            locks.check_rows_against_predicates(2, "T", [{"k": 1}], EXCLUSIVE)

    def test_write_predicate_does_not_block_reads_rowwise(self, locks):
        locks.acquire_predicate(1, "T", lambda row: True, EXCLUSIVE)
        with pytest.raises(WouldBlock):
            # reads of matching rows conflict with a write predicate
            locks.check_rows_against_predicates(2, "T", [{"k": 1}], SHARED)

    def test_predicate_read_blocks_on_write_predicate_same_table(self, locks):
        locks.acquire_predicate(1, "T", lambda row: False, EXCLUSIVE)
        with pytest.raises(WouldBlock):
            locks.acquire_predicate(2, "T", lambda row: True, SHARED)

    def test_release_all_drops_predicates(self, locks):
        locks.acquire_predicate(1, "T", lambda row: True, SHARED)
        locks.release_all(1)
        locks.check_rows_against_predicates(2, "T", [{"k": 1}], EXCLUSIVE)

    def test_release_short_predicates_only(self, locks):
        locks.acquire_predicate(1, "T", lambda row: True, SHARED, duration=SHORT)
        locks.acquire_predicate(1, "U", lambda row: True, SHARED, duration=LONG)
        locks.release_short_predicates(1)
        assert len(locks.predicate_locks_of(1)) == 1
