"""Unit tests for the versioned store."""

import pytest

from repro.core.state import DbState
from repro.engine.storage import RID, VersionedStore, strip_rid
from repro.errors import EngineError


@pytest.fixture
def store():
    return VersionedStore.from_state(
        DbState(
            items={"x": 1},
            arrays={"a": {0: {"v": 10}}},
            tables={"T": [{"k": 1}, {"k": 2}]},
        )
    )


class TestInitialisation:
    def test_rows_receive_rids(self, store):
        rids = [row[RID] for row in store.rows("T")]
        assert len(rids) == len(set(rids)) == 2

    def test_committed_mirrors_current(self, store):
        assert store.committed.same_as(store.current)

    def test_strip_rid(self):
        assert strip_rid({"k": 1, RID: 9}) == {"k": 1}


class TestVersions:
    def test_initial_versions_are_zero(self, store):
        assert store.version_of(("item", "x")) == 0

    def test_bump(self, store):
        store.bump_version(("item", "x"))
        assert store.version_of(("item", "x")) == 1


class TestInPlaceWrites:
    def test_write_and_undo_item(self, store):
        old = store.write_item("x", 9)
        assert store.read_item("x") == 9
        store.undo_item("x", old)
        assert store.read_item("x") == 1

    def test_undo_item_removes_created(self, store):
        old = store.write_item("fresh", 5)
        store.undo_item("fresh", old)
        assert not store.current.has_item("fresh")

    def test_write_and_undo_field(self, store):
        old = store.write_field("a", 0, "v", 99)
        store.undo_field("a", 0, "v", old)
        assert store.read_field("a", 0, "v") == 10

    def test_insert_and_undo(self, store):
        rid = store.insert_row("T", {"k": 3})
        assert store.find_row("T", rid) is not None
        store.undo_insert("T", rid)
        assert store.find_row("T", rid) is None

    def test_delete_and_undo(self, store):
        rid = next(iter(store.rows("T")))[RID]
        row = store.delete_row("T", rid)
        assert store.find_row("T", rid) is None
        store.undo_delete("T", row)
        assert store.find_row("T", rid) is not None

    def test_update_and_undo(self, store):
        rid = next(iter(store.rows("T")))[RID]
        old = store.update_row("T", rid, {"k": 42})
        assert store.find_row("T", rid)["k"] == 42
        store.undo_update("T", rid, old)
        assert store.find_row("T", rid)["k"] == 1

    def test_delete_unknown_rid_raises(self, store):
        with pytest.raises(EngineError):
            store.delete_row("T", 999)


class TestCommitReflection:
    def test_item_commit_bumps_version(self, store):
        store.write_item("x", 5)
        store.reflect_commit([("item", "x", 5)])
        assert store.committed.read_item("x") == 5
        assert store.version_of(("item", "x")) == 1

    def test_field_commit(self, store):
        store.write_field("a", 0, "v", 77)
        store.reflect_commit([("field", "a", 0, "v", 77)])
        assert store.committed.read_field("a", 0, "v") == 77
        assert store.version_of(("record", "a", 0)) == 1

    def test_insert_commit(self, store):
        rid = store.insert_row("T", {"k": 3})
        store.reflect_commit([("insert", "T", rid, {"k": 3})])
        assert any(row.get("k") == 3 for row in store.committed.rows("T"))

    def test_delete_commit(self, store):
        rid = next(iter(store.rows("T")))[RID]
        row = store.delete_row("T", rid)
        store.reflect_commit([("delete", "T", rid, strip_rid(row))])
        assert all(r.get(RID) != rid for r in store.committed.rows("T"))

    def test_update_commit(self, store):
        rid = next(iter(store.rows("T")))[RID]
        store.update_row("T", rid, {"k": 50})
        store.reflect_commit([("update", "T", rid, {"k": 50})])
        committed_row = next(r for r in store.committed.rows("T") if r.get(RID) == rid)
        assert committed_row["k"] == 50

    def test_unknown_entry_rejected(self, store):
        with pytest.raises(EngineError):
            store.reflect_commit([("mystery",)])


class TestSnapshots:
    def test_snapshot_is_isolated_copy(self, store):
        snap = store.snapshot()
        store.write_item("x", 100)
        assert snap.read_item("x") == 1

    def test_public_state_strips_rids(self, store):
        public = store.public_state()
        for row in public.rows("T"):
            assert RID not in row

    def test_public_state_committed_vs_live(self, store):
        store.write_item("x", 7)  # uncommitted
        assert store.public_state(committed_only=True).read_item("x") == 1
        assert store.public_state(committed_only=False).read_item("x") == 7
