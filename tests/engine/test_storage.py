"""Unit tests for the MVCC store and the frozen legacy store."""

import pytest

from repro.core.state import DbState
from repro.engine.legacy import LegacyVersionedStore
from repro.engine.storage import (
    RID,
    BOOTSTRAP_XID,
    MvccStore,
    Snapshot,
    VersionedStore,
    strip_rid,
)
from repro.errors import EngineError, EvaluationError


def _initial() -> DbState:
    return DbState(
        items={"x": 1},
        arrays={"a": {0: {"v": 10}}},
        tables={"T": [{"k": 1}, {"k": 2}]},
    )


@pytest.fixture
def store():
    return MvccStore.from_state(_initial())


@pytest.fixture
def legacy():
    return LegacyVersionedStore.from_state(_initial())


class TestInitialisation:
    def test_alias_is_mvcc(self):
        assert VersionedStore is MvccStore

    def test_rows_receive_rids(self, store):
        rids = [rid for rid, _image in store.dirty_rows("T")]
        assert len(rids) == len(set(rids)) == 2

    def test_committed_mirrors_current(self, store):
        assert store.committed.same_as(store.current)

    def test_strip_rid(self):
        assert strip_rid({"k": 1, RID: 9}) == {"k": 1}

    def test_bootstrap_versions(self, store):
        assert store.items["x"].versions[0].xmin == BOOTSTRAP_XID


class TestVersionCounters:
    def test_initial_versions_are_zero(self, store):
        assert store.version_of(("item", "x")) == 0

    def test_bump(self, store):
        store.bump_version(("item", "x"))
        assert store.version_of(("item", "x")) == 1


class TestVisibility:
    def test_pending_write_invisible_to_committed_view(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        assert store.read_item("x") == 9  # dirty view
        assert store.materialize().items["x"] == 1

    def test_commit_publishes(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        store.commit_txn(5, [("item", "x")], {("item", "x"): 1})
        assert store.materialize().items["x"] == 9
        assert store.version_of(("item", "x")) == 1

    def test_snapshot_does_not_see_later_commit(self, store):
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        store.clog.begin(6)
        store.stamp_item(6, "x", 9)
        store.commit_txn(6, [("item", "x")], {})
        assert store.read_item("x", snap=snap) == 1
        assert store.read_item("x") == 9

    def test_snapshot_does_not_see_inflight(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        store.clog.begin(6)
        snap = store.take_snapshot(6)
        store.commit_txn(5, [("item", "x")], {})
        # xid 5 was in flight when the snapshot was captured
        assert store.read_item("x", snap=snap) == 1

    def test_unknown_item_message(self, store):
        with pytest.raises(EvaluationError, match="unknown database item 'nope'"):
            store.read_item("nope")

    def test_unknown_field_message(self, store):
        with pytest.raises(EvaluationError, match=r"unknown array element a\[0\].w"):
            store.read_field("a", 0, "w")

    def test_snapshot_row_deleted_later_still_visible(self, store):
        rid = next(iter(store.tables["T"]))
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        store.clog.begin(6)
        store.stamp_delete(6, "T", rid)
        store.commit_txn(6, [("del", "T", rid)], {})
        assert rid in dict(store.snapshot_rows("T", snap))
        assert rid not in dict(store.committed_rows("T"))


class TestAbortUnstamping:
    def test_abort_item_drops_pending_version(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        store.abort_txn(5, [("item", "x")])
        assert store.read_item("x") == 1
        assert len(store.items["x"].versions) == 1

    def test_abort_insert_removes_chain(self, store):
        store.clog.begin(5)
        rid = store.new_rid()
        store.stamp_insert(5, "T", rid, {"k": 3})
        store.abort_txn(5, [("ins", "T", rid)])
        assert rid not in store.tables["T"]
        assert rid not in dict(store.dirty_rows("T"))

    def test_abort_delete_unstamps_xmax(self, store):
        rid = next(iter(store.tables["T"]))
        store.clog.begin(5)
        store.stamp_delete(5, "T", rid)
        assert rid not in dict(store.dirty_rows("T"))
        store.abort_txn(5, [("del", "T", rid)])
        assert rid in dict(store.dirty_rows("T"))
        assert store.tables["T"][rid].newest().xmax is None

    def test_abort_restores_row_at_end_of_live_order(self, store):
        first = next(iter(store.tables["T"]))
        store.clog.begin(5)
        store.stamp_delete(5, "T", first)
        store.abort_txn(5, [("del", "T", first)])
        assert [rid for rid, _ in store.dirty_rows("T")][-1] == first


class TestFirstCommitterWins:
    def test_changed_since(self, store):
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        assert not store.changed_since(("item", "x"), snap)
        store.clog.begin(6)
        store.stamp_item(6, "x", 9)
        store.commit_txn(6, [("item", "x")], {})
        assert store.changed_since(("item", "x"), snap)

    def test_commit_stamp_survives_vacuum(self, store):
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        store.clog.begin(6)
        store.stamp_item(6, "x", 9)
        store.commit_txn(6, [("item", "x")], {})
        store.vacuum([])  # no live snapshots: history is trimmed
        assert len(store.items["x"].versions) == 1
        assert store.changed_since(("item", "x"), snap)


class TestVacuum:
    def test_reclaims_dead_versions(self, store):
        for xid in (5, 6, 7):
            store.clog.begin(xid)
            store.stamp_item(xid, "x", xid)
            store.commit_txn(xid, [("item", "x")], {})
        assert len(store.items["x"].versions) == 4
        reclaimed = store.vacuum([])
        assert reclaimed == 3
        assert len(store.items["x"].versions) == 1
        assert store.read_item("x") == 7

    def test_live_snapshot_pins_history(self, store):
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        store.clog.begin(6)
        store.stamp_item(6, "x", 9)
        store.commit_txn(6, [("item", "x")], {})
        store.vacuum([snap])
        assert store.read_item("x", snap=snap) == 1
        # after the reader exits, a later pass reclaims even without new writes
        store.vacuum([])
        assert len(store.items["x"].versions) == 1

    def test_deleted_row_chain_dropped(self, store):
        rid = next(iter(store.tables["T"]))
        store.clog.begin(5)
        store.stamp_delete(5, "T", rid)
        store.commit_txn(5, [("del", "T", rid)], {})
        store.vacuum([])
        assert rid not in store.tables["T"]

    def test_pending_versions_never_reclaimed(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        store.vacuum([])
        assert store.read_item("x") == 9

    def test_version_count(self, store):
        assert store.version_count() == 4  # 1 item + 1 record + 2 rows
        store.clog.begin(5)
        store.stamp_item(5, "x", 9)
        assert store.version_count() == 5


class TestSnapshotCapture:
    def test_capture_is_a_tiny_tuple(self, store):
        store.clog.begin(5)
        snap = store.take_snapshot(5)
        assert isinstance(snap, Snapshot)
        assert snap.xmax == 5 and snap.xip == frozenset()

    def test_capture_records_stats(self, store):
        before = store.stats.snapshot_captures
        store.clog.begin(5)
        store.take_snapshot(5)
        assert store.stats.snapshot_captures == before + 1


class TestMaterialisedViews:
    def test_public_state_strips_rids(self, store):
        public = store.public_state()
        for row in public.rows("T"):
            assert RID not in row

    def test_public_state_committed_vs_live(self, store):
        store.clog.begin(5)
        store.stamp_item(5, "x", 7)  # uncommitted
        assert store.public_state(committed_only=True).read_item("x") == 1
        assert store.public_state(committed_only=False).read_item("x") == 7


class TestLegacyStore:
    """The frozen pre-MVCC store keeps its contract (incl. the rid index)."""

    def test_write_and_undo_item(self, legacy):
        old = legacy.write_item("x", 9)
        assert legacy.read_item("x") == 9
        legacy.undo_item("x", old)
        assert legacy.read_item("x") == 1

    def test_insert_find_is_indexed(self, legacy):
        rid = legacy.insert_row("T", {"k": 3})
        assert legacy._row_index["T"][rid] is legacy.find_row("T", rid)

    def test_delete_and_undo_maintain_index(self, legacy):
        rid = next(iter(legacy.rows("T")))[RID]
        row = legacy.delete_row("T", rid)
        assert rid not in legacy._row_index["T"]
        legacy.undo_delete("T", row)
        assert legacy.find_row("T", rid)["k"] == 1

    def test_update_row_uses_index(self, legacy):
        rid = next(iter(legacy.rows("T")))[RID]
        old = legacy.update_row("T", rid, {"k": 42})
        assert legacy.find_row("T", rid)["k"] == 42
        legacy.undo_update("T", rid, old)
        assert legacy.find_row("T", rid)["k"] == 1

    def test_delete_unknown_rid_raises(self, legacy):
        with pytest.raises(EngineError):
            legacy.delete_row("T", 999)

    def test_reflect_commit(self, legacy):
        legacy.write_item("x", 5)
        legacy.reflect_commit([("item", "x", 5)])
        assert legacy.committed.read_item("x") == 5
        assert legacy.version_of(("item", "x")) == 1

    def test_snapshot_is_isolated_copy(self, legacy):
        snap = legacy.snapshot()
        legacy.write_item("x", 100)
        assert snap.read_item("x") == 1
