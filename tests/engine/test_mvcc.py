"""Engine-level MVCC edge cases: abort recovery, rid lifecycle, vacuum.

These exercise the manager/storage seam that the unit tests
(:mod:`tests.engine.test_storage`) and the lockstep differential harness
(:mod:`tests.engine.test_differential`) cannot see in isolation: a
snapshot commit that is refused mid-flight, deleted-row identity across
abort, and the interaction of the vacuum horizon with long-running
readers.
"""

import pytest

from repro.core.state import DbState
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import FirstCommitterWinsAbort


def make_engine(**kwargs) -> Engine:
    return Engine(
        DbState(
            items={"x": 5},
            arrays={"acct": {0: {"bal": 10}}},
            tables={"T": [{"k": 1}, {"k": 2}, {"k": 3}]},
        ),
        **kwargs,
    )


class TestAbortAfterRefusedCommit:
    """A snapshot commit refused mid-flight must leave no trace."""

    def test_blocked_si_commit_then_abort_leaves_state_intact(self):
        engine = make_engine()
        locker = engine.begin("READ COMMITTED")
        engine.write_item(locker, "x", 50)  # long X lock on x

        si = engine.begin("SNAPSHOT")
        engine.write_item(si, "x", 99)  # buffered, no lock
        with pytest.raises(WouldBlock):
            engine.commit(si)
        # the refused commit must not have stamped anything: the dirty
        # view shows only the locker's pending write, never the 99
        assert engine.store.read_item("x") == 50
        assert engine.committed_state().items["x"] == 5
        engine.abort(si)
        assert engine.committed_state().items["x"] == 5
        # the blocker is unaffected and commits its own write
        engine.commit(locker)
        assert engine.committed_state().items["x"] == 50

    def test_fcw_abort_mid_commit_discards_whole_overlay(self):
        engine = make_engine()
        loser = engine.begin("SNAPSHOT")
        engine.write_item(loser, "x", 99)
        engine.write_field(loser, "acct", 0, "bal", 999)
        engine.insert(loser, "T", {"k": 42})

        winner = engine.begin("SNAPSHOT")
        engine.write_item(winner, "x", 7)
        engine.commit(winner)

        with pytest.raises(FirstCommitterWinsAbort):
            engine.commit(loser)
        state = engine.committed_state()
        assert state.items["x"] == 7  # winner's value
        assert state.arrays["acct"][0]["bal"] == 10  # loser's field write gone
        assert len(state.tables["T"]) == 3  # loser's insert gone
        # no half-committed versions left behind for a fresh reader
        probe = engine.begin("SNAPSHOT")
        assert engine.read_item(probe, "x") == 7
        engine.commit(probe)


class TestDeleteThenAbortRidLifecycle:
    def test_aborted_delete_restores_same_rid_at_end(self):
        engine = make_engine()
        txn = engine.begin("REPEATABLE READ")
        before = {row["k"]: rid for rid, row in engine.store.dirty_rows("T")}
        engine.delete(txn, "T", lambda row: row["k"] == 1)
        engine.abort(txn)
        after = [(rid, row["k"]) for rid, row in engine.store.dirty_rows("T")]
        # same rid, but re-appended at the end of the live order (the
        # legacy engine's undo_delete contract, preserved for history parity)
        assert after == [(before[2], 2), (before[3], 3), (before[1], 1)]

    def test_aborted_delete_does_not_free_the_rid(self):
        engine = make_engine()
        txn = engine.begin("REPEATABLE READ")
        engine.delete(txn, "T", lambda row: True)
        engine.abort(txn)
        fresh = engine.begin("REPEATABLE READ")
        engine.insert(fresh, "T", {"k": 9})
        engine.commit(fresh)
        rids = [rid for rid, _row in engine.store.dirty_rows("T")]
        assert len(rids) == len(set(rids)) == 4  # no rid was recycled

    def test_committed_delete_then_insert_gets_fresh_rid(self):
        engine = make_engine()
        txn = engine.begin("REPEATABLE READ")
        engine.delete(txn, "T", lambda row: row["k"] == 2)
        engine.commit(txn)
        txn = engine.begin("REPEATABLE READ")
        engine.insert(txn, "T", {"k": 2})
        engine.commit(txn)
        rids = [rid for rid, _row in engine.store.dirty_rows("T")]
        assert len(rids) == len(set(rids)) == 3


class TestVacuum:
    def _churn(self, engine, rounds):
        for value in range(rounds):
            writer = engine.begin("READ COMMITTED")
            engine.write_item(writer, "x", value)
            engine.commit(writer)

    def test_long_reader_pins_its_version_until_exit(self):
        engine = make_engine(vacuum="auto")
        reader = engine.begin("SNAPSHOT")
        assert engine.read_item(reader, "x") == 5
        self._churn(engine, 5)
        # the reader's version survives every auto-vacuum pass...
        assert engine.read_item(reader, "x") == 5
        pinned = engine.store.version_count()
        # the reader's own commit advances the horizon and its trailing
        # auto-vacuum pass reclaims the versions the snapshot was pinning
        engine.commit(reader)
        assert engine.store.version_count() < pinned
        assert engine.run_vacuum() == 0  # nothing left to reclaim

    def test_vacuum_off_accumulates_then_manual_pass_reclaims(self):
        engine = make_engine(vacuum="off")
        baseline = engine.store.version_count()
        self._churn(engine, 6)
        bloated = engine.store.version_count()
        assert bloated >= baseline + 6  # every superseded version retained
        reclaimed = engine.run_vacuum()
        assert reclaimed >= 5
        assert engine.store.version_count() <= bloated - reclaimed

    def test_interval_mode_vacuums_every_n_commits(self):
        engine = make_engine(vacuum=3)
        self._churn(engine, 2)
        accumulated = engine.store.version_count()
        self._churn(engine, 1)  # third commit triggers the pass
        assert engine.store.version_count() < accumulated

    def test_vacuum_mode_never_changes_verdict_relevant_state(self):
        finals = set()
        for mode in ("auto", "off", 2):
            engine = make_engine(vacuum=mode)
            reader = engine.begin("SNAPSHOT")
            engine.read_item(reader, "x")
            self._churn(engine, 4)
            assert engine.read_item(reader, "x") == 5
            engine.commit(reader)
            finals.add(
                (
                    engine.committed_state().canonical(),
                    tuple((op.kind, op.key, op.version) for op in engine.history),
                )
            )
        assert len(finals) == 1
