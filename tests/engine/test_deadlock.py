"""Unit tests for the waits-for graph."""

from repro.engine.deadlock import WaitsForGraph


class TestWaitsForGraph:
    def test_no_cycle_initially(self):
        graph = WaitsForGraph()
        assert graph.find_cycle() is None

    def test_simple_cycle_detected(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2})
        graph.add_waits(2, {1})
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_three_way_cycle(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2})
        graph.add_waits(2, {3})
        graph.add_waits(3, {1})
        assert set(graph.find_cycle()) == {1, 2, 3}

    def test_chain_is_not_cycle(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2})
        graph.add_waits(2, {3})
        assert graph.find_cycle() is None

    def test_self_wait_ignored(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {1})
        assert graph.find_cycle() is None

    def test_victim_is_youngest(self):
        graph = WaitsForGraph()
        assert graph.pick_victim([3, 1, 7]) == 7

    def test_clear_waits_breaks_cycle(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2})
        graph.add_waits(2, {1})
        graph.clear_waits(1)
        assert graph.find_cycle() is None

    def test_remove_node(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2})
        graph.add_waits(2, {1})
        graph.remove(2)
        assert graph.find_cycle() is None
        assert graph.blockers_of(1) == set()

    def test_blockers_of(self):
        graph = WaitsForGraph()
        graph.add_waits(1, {2, 3})
        assert graph.blockers_of(1) == {2, 3}
        assert graph.blockers_of(9) == set()
