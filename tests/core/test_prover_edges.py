"""Edge cases of the prover: caps, fallbacks, mixed sorts."""

import pytest

from repro.core import formula as fm
from repro.core.formula import BoolAtom, Not, conj, disj, eq, ge, le, lt, ne
from repro.core.prover import MAX_CUBES, Verdict, is_satisfiable, is_valid
from repro.core.terms import (
    BoolConst,
    Field,
    IntConst,
    Item,
    Local,
    Mul,
    Param,
    StrConst,
)


class TestCapsAndFallbacks:
    def test_dnf_cap_yields_unknown(self):
        """A formula whose DNF exceeds the cube cap is UNKNOWN, not wrong."""
        x = Local("x")
        # each != splits into two cubes: 13 of them exceed 4096
        big = conj(*[ne(Local(f"x{i}"), 0) for i in range(13)])
        result = is_satisfiable(big)
        assert result.verdict in (Verdict.SAT, Verdict.UNKNOWN)
        if result.verdict == Verdict.SAT:
            # if decided, the model must genuinely satisfy
            assert all(value != 0 for value in result.model.values())

    def test_nonlinear_term_unknown(self):
        x, y = Local("x"), Local("y")
        result = is_satisfiable(eq(Mul(x, y), 6))
        assert result.verdict == Verdict.UNKNOWN

    def test_nonlinear_with_constant_factor_decided(self):
        x = Local("x")
        result = is_satisfiable(eq(Mul(IntConst(3), x), 6))
        assert result.verdict == Verdict.SAT
        assert result.model[x] == 2

    def test_string_ordering_literal_unknown(self):
        # the cube decision cannot order strings; must not crash
        a = Local("a", "str")
        result = is_satisfiable(conj(eq(a, StrConst("x")), ne(a, StrConst("y"))))
        assert result.verdict == Verdict.SAT

    def test_equalities_between_string_atoms(self):
        a, b, c = (Local(n, "str") for n in "abc")
        chain = conj(eq(a, b), eq(b, c), ne(a, c))
        assert is_satisfiable(chain).verdict == Verdict.UNSAT

    def test_bool_field_equality(self):
        done = Field("T", Param("i"), "done", "bool")
        result = is_satisfiable(conj(eq(done, BoolConst(True)), Not(BoolAtom(done))))
        assert result.verdict == Verdict.UNSAT


class TestMixedQueries:
    def test_assumptions_narrow_validity(self):
        x = Local("x")
        goal = ge(x, 5)
        assert is_valid(goal).verdict == Verdict.INVALID
        assert is_valid(goal, assumptions=[ge(x, 7)]).verdict == Verdict.VALID

    def test_large_coefficients(self):
        x = Local("x")
        result = is_satisfiable(conj(ge(Mul(IntConst(1000), x), 999), le(x, 0)))
        assert result.verdict == Verdict.UNSAT

    def test_tight_integer_gap(self):
        """2x == 1 has a rational but no integer solution."""
        x = Local("x")
        result = is_satisfiable(eq(Mul(IntConst(2), x), 1))
        # LP relaxation is feasible; integer search must not claim SAT
        assert result.verdict in (Verdict.UNSAT, Verdict.UNKNOWN)
        assert result.verdict != Verdict.SAT

    def test_three_way_disjunction_picks_feasible(self):
        x = Local("x")
        formula = conj(
            disj(eq(x, 1), eq(x, 2), eq(x, 3)),
            ne(x, 1),
            ne(x, 3),
        )
        result = is_satisfiable(formula)
        assert result.verdict == Verdict.SAT and result.model[x] == 2

    def test_congruence_three_fields(self):
        i, j, k = Param("i"), Param("j"), Param("k")
        a_i = Field("a", i, "v")
        a_j = Field("a", j, "v")
        a_k = Field("a", k, "v")
        # equality is transitive through the congruence axioms
        formula = conj(eq(i, j), eq(j, k), ne(a_i, a_k))
        assert is_satisfiable(formula).verdict == Verdict.UNSAT

    def test_different_attrs_not_congruent(self):
        i, j = Param("i"), Param("j")
        formula = conj(eq(i, j), ne(Field("a", i, "v"), Field("a", j, "w")))
        assert is_satisfiable(formula).verdict == Verdict.SAT


class TestProofResultShape:
    def test_valid_result_is_truthy(self):
        result = is_valid(fm.TRUE)
        assert result
        assert result.verdict == Verdict.VALID

    def test_invalid_result_is_falsy(self):
        assert not is_valid(fm.FALSE)

    def test_unknown_reason_populated(self):
        x, y = Local("x"), Local("y")
        result = is_satisfiable(eq(Mul(x, y), 6))
        assert result.verdict == Verdict.UNKNOWN
        assert result.reason


class TestQuantifierExpansion:
    def test_small_forall_int_is_exact(self):
        from repro.core.formula import BoundVar, ForAllInts, implies

        x = Local("x")
        q = fm.ForAllInts("d", IntConst(1), IntConst(3), ge(x, fm.BoundVar("d")))
        assert is_valid(implies(ge(x, 3), q)).verdict == Verdict.VALID
        counter = is_valid(implies(ge(x, 2), q))
        assert counter.verdict == Verdict.INVALID
        assert counter.model[x] == 2

    def test_wide_forall_int_stays_opaque(self):
        x = Local("x")
        q = fm.ForAllInts("d", IntConst(0), IntConst(1000), ge(x, fm.BoundVar("d")))
        # no expansion: the abstraction is still sound for tautologies
        from repro.core.formula import implies

        assert is_valid(implies(q, q)).verdict == Verdict.VALID
        assert is_valid(q).verdict == Verdict.UNKNOWN

    def test_symbolic_bound_stays_opaque(self):
        x = Local("x")
        q = fm.ForAllInts("d", IntConst(1), Item("max"), ge(x, fm.BoundVar("d")))
        assert is_valid(q).verdict == Verdict.UNKNOWN

    def test_empty_range_expands_to_true(self):
        q = fm.ForAllInts("d", IntConst(5), IntConst(1), fm.FALSE)
        assert is_valid(q).verdict == Verdict.VALID
