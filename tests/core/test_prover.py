"""Unit tests for the validity/satisfiability engine."""

import pytest

from repro.core.formula import (
    AbstractPred,
    BoolAtom,
    CountWhere,
    ExistsRow,
    FALSE,
    ForAllRows,
    Not,
    RowAttr,
    TRUE,
    conj,
    disj,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
)
from repro.core.prover import (
    ProofResult,
    Verdict,
    is_satisfiable,
    is_valid,
    simplify,
    simplify_term,
)
from repro.core.terms import (
    Add,
    BoolConst,
    Field,
    IntConst,
    Item,
    Local,
    Mul,
    Neg,
    Param,
    StrConst,
    Sub,
)


class TestSimplifyTerm:
    def test_constant_folding(self):
        assert simplify_term(Add(IntConst(2), IntConst(3))) == IntConst(5)
        assert simplify_term(Sub(IntConst(2), IntConst(3))) == IntConst(-1)
        assert simplify_term(Mul(IntConst(2), IntConst(3))) == IntConst(6)
        assert simplify_term(Neg(IntConst(4))) == IntConst(-4)

    def test_identities(self):
        x = Local("x")
        assert simplify_term(Add(x, IntConst(0))) == x
        assert simplify_term(Add(IntConst(0), x)) == x
        assert simplify_term(Sub(x, IntConst(0))) == x
        assert simplify_term(Sub(x, x)) == IntConst(0)
        assert simplify_term(Mul(x, IntConst(1))) == x
        assert simplify_term(Mul(IntConst(0), x)) == IntConst(0)

    def test_field_index_simplified(self):
        term = Field("a", Add(IntConst(1), IntConst(1)), "v")
        assert simplify_term(term) == Field("a", IntConst(2), "v")


class TestSimplifyFormula:
    def test_ground_comparison_folds(self):
        assert simplify(lt(IntConst(1), IntConst(2))) == TRUE
        assert simplify(lt(IntConst(2), IntConst(1))) == FALSE

    def test_reflexive_comparisons(self):
        x = Item("x")
        assert simplify(eq(x, x)) == TRUE
        assert simplify(ne(x, x)) == FALSE
        assert simplify(le(x, x)) == TRUE

    def test_double_negation(self):
        inner = eq(Item("x"), 1)
        assert simplify(Not(Not(inner))) == inner

    def test_negated_comparison_folds(self):
        assert simplify(Not(lt(Item("x"), 1))) == ge(Item("x"), 1)

    def test_unit_pruning(self):
        body = eq(Item("x"), 1)
        assert simplify(conj(body, TRUE)) == body
        assert simplify(disj(body, FALSE)) == body


class TestSatisfiability:
    def test_trivial(self):
        assert is_satisfiable(TRUE).verdict == Verdict.SAT
        assert is_satisfiable(FALSE).verdict == Verdict.UNSAT

    def test_linear_sat_with_model(self):
        x = Local("x")
        result = is_satisfiable(conj(ge(x, 3), le(x, 5)))
        assert result.verdict == Verdict.SAT
        assert 3 <= result.model[x] <= 5

    def test_linear_unsat(self):
        x = Local("x")
        result = is_satisfiable(conj(gt(x, 5), lt(x, 3)))
        assert result.verdict == Verdict.UNSAT

    def test_integer_ne_split(self):
        x = Local("x")
        result = is_satisfiable(conj(ge(x, 0), le(x, 0), ne(x, 0)))
        assert result.verdict == Verdict.UNSAT

    def test_multi_variable(self):
        x, y = Local("x"), Local("y")
        result = is_satisfiable(conj(eq(Add(x, y), 10), ge(x, 8), ge(y, 3)))
        assert result.verdict == Verdict.UNSAT

    def test_string_equalities(self):
        a, b = Local("a", "str"), Local("b", "str")
        sat = is_satisfiable(conj(eq(a, StrConst("hi")), eq(b, a)))
        assert sat.verdict == Verdict.SAT
        unsat = is_satisfiable(conj(eq(a, StrConst("x")), eq(a, StrConst("y"))))
        assert unsat.verdict == Verdict.UNSAT

    def test_string_disequality(self):
        a = Local("a", "str")
        result = is_satisfiable(conj(eq(a, StrConst("x")), ne(a, StrConst("x"))))
        assert result.verdict == Verdict.UNSAT

    def test_boolean_atoms(self):
        flag = Local("b", "bool")
        result = is_satisfiable(conj(BoolAtom(flag), Not(BoolAtom(flag))))
        assert result.verdict == Verdict.UNSAT

    def test_bool_equality_literal(self):
        flag = Local("b", "bool")
        result = is_satisfiable(conj(eq(flag, BoolConst(True)), Not(BoolAtom(flag))))
        assert result.verdict == Verdict.UNSAT

    def test_disjunction_explores_cubes(self):
        x = Local("x")
        formula = conj(disj(eq(x, 1), eq(x, 2)), ne(x, 1))
        result = is_satisfiable(formula)
        assert result.verdict == Verdict.SAT
        assert result.model[x] == 2

    def test_assumptions(self):
        x = Local("x")
        result = is_satisfiable(eq(x, 1), assumptions=[ge(x, 2)])
        assert result.verdict == Verdict.UNSAT


class TestValidity:
    def test_tautology(self):
        x = Local("x")
        assert is_valid(disj(ge(x, 0), lt(x, 0))).verdict == Verdict.VALID

    def test_implication_valid(self):
        x = Local("x")
        assert is_valid(implies(ge(x, 5), ge(x, 3))).verdict == Verdict.VALID

    def test_invalid_with_genuine_counterexample(self):
        x = Local("x")
        result = is_valid(implies(ge(x, 3), ge(x, 5)))
        assert result.verdict == Verdict.INVALID
        # the model must actually falsify the implication
        value = result.model[x]
        assert value >= 3 and not value >= 5

    def test_paper_figure1_obligation(self):
        """The guarded withdrawal preserves I_bal (Figure 1)."""
        i, w = Param("i"), Param("w")
        sav = Field("acct_sav", i, "bal")
        ch = Field("acct_ch", i, "bal")
        sav_l, ch_l = Local("Sav"), Local("Ch")
        pre = conj(
            ge(sav + ch, 0),
            eq(sav_l, sav),
            eq(ch_l, ch),
            ge(w, 0),
            ge(sav_l + ch_l, w),
        )
        post = ge((sav_l - w) + ch, 0)
        assert is_valid(implies(pre, post)).verdict == Verdict.VALID

    def test_paper_figure1_unguarded_fails(self):
        i, w = Param("i"), Param("w")
        sav = Field("acct_sav", i, "bal")
        ch = Field("acct_ch", i, "bal")
        sav_l = Local("Sav")
        pre = conj(ge(sav + ch, 0), eq(sav_l, sav), ge(w, 0))
        post = ge((sav_l - w) + ch, 0)
        assert is_valid(implies(pre, post)).verdict == Verdict.INVALID


class TestCongruence:
    def test_equal_indices_force_equal_fields(self):
        i1, i2 = Param("i1"), Param("i2")
        a1 = Field("a", i1, "v")
        a2 = Field("a", i2, "v")
        formula = conj(eq(i1, i2), ne(a1, a2))
        assert is_satisfiable(formula).verdict == Verdict.UNSAT

    def test_distinct_indices_leave_fields_free(self):
        i1, i2 = Param("i1"), Param("i2")
        a1 = Field("a", i1, "v")
        a2 = Field("a", i2, "v")
        formula = conj(ne(i1, i2), ne(a1, a2))
        assert is_satisfiable(formula).verdict == Verdict.SAT

    def test_congruence_in_validity(self):
        i1, i2 = Param("i1"), Param("i2")
        a1 = Field("a", i1, "v")
        a2 = Field("a", i2, "v")
        goal = implies(eq(i1, i2), eq(a1, a2))
        assert is_valid(goal).verdict == Verdict.VALID


class TestAbstraction:
    def test_quantifier_abstracted_counterexample_is_unknown(self):
        formula = ForAllRows("T", "r", eq(RowAttr("r", "k"), 1))
        result = is_valid(formula)
        assert result.verdict == Verdict.UNKNOWN

    def test_valid_despite_abstraction(self):
        quantified = ExistsRow("T", "r", TRUE)
        # P or not P is valid even with P opaque
        result = is_valid(disj(quantified, Not(quantified)))
        assert result.verdict == Verdict.VALID

    def test_identical_subformulas_share_atoms(self):
        quantified = ExistsRow("T", "r", TRUE)
        result = is_satisfiable(conj(quantified, Not(quantified)))
        assert result.verdict == Verdict.UNSAT

    def test_count_terms_abstracted_consistently(self):
        count = CountWhere("T", "r", TRUE)
        formula = conj(eq(count, 1), eq(count, 2))
        assert is_satisfiable(formula).verdict == Verdict.UNSAT

    def test_abstract_pred_is_opaque(self):
        pred = AbstractPred("p")
        assert is_valid(disj(pred, Not(pred))).verdict == Verdict.VALID
