"""Unit tests for the assertion language."""

import pytest

from repro.core.formula import (
    AbstractPred,
    And,
    BoundVar,
    Cmp,
    CountWhere,
    ExistsRow,
    FALSE,
    ForAllInts,
    ForAllRows,
    Implies,
    InTable,
    Not,
    Or,
    RowAttr,
    TRUE,
    conj,
    conjuncts,
    disj,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
)
from repro.core.resources import ScalarResource, TableResource
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local, Param, StrConst
from repro.errors import EvaluationError, SortError


@pytest.fixture
def state():
    return DbState(
        items={"x": 3, "max": 2},
        tables={
            "T": [
                {"k": 1, "name": "a", "due": 1},
                {"k": 2, "name": "b", "due": 2},
            ]
        },
    )


class TestComparisons:
    def test_eq_true(self, state):
        assert eq(Item("x"), 3).evaluate(state, {})

    def test_eq_false(self, state):
        assert not eq(Item("x"), 4).evaluate(state, {})

    def test_ordering_operators(self, state):
        assert lt(Item("x"), 4).evaluate(state, {})
        assert le(Item("x"), 3).evaluate(state, {})
        assert gt(Item("x"), 2).evaluate(state, {})
        assert ge(Item("x"), 3).evaluate(state, {})
        assert ne(Item("x"), 5).evaluate(state, {})

    def test_string_equality(self, state):
        assert eq(StrConst("a"), StrConst("a")).evaluate(state, {})

    def test_string_ordering_rejected(self):
        with pytest.raises(SortError):
            lt(StrConst("a"), StrConst("b"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(SortError):
            Cmp("<>", IntConst(1), IntConst(2))

    def test_negated(self):
        assert lt(Item("x"), 1).negated() == ge(Item("x"), 1)
        assert eq(Item("x"), 1).negated() == ne(Item("x"), 1)

    def test_substitution(self):
        formula = eq(Local("v"), Item("x"))
        rewritten = formula.substitute({Item("x"): IntConst(0)})
        assert rewritten == eq(Local("v"), IntConst(0))


class TestConnectives:
    def test_conj_flattens_and_simplifies(self):
        inner = conj(eq(Item("x"), 1), eq(Item("y"), 2))
        outer = conj(inner, TRUE, eq(Item("z"), 3))
        assert isinstance(outer, And)
        assert len(outer.operands) == 3

    def test_conj_false_absorbs(self):
        assert conj(eq(Item("x"), 1), FALSE) == FALSE

    def test_conj_empty_is_true(self):
        assert conj() == TRUE

    def test_disj_flattens_and_simplifies(self):
        outer = disj(disj(eq(Item("x"), 1), eq(Item("y"), 2)), FALSE)
        assert isinstance(outer, Or)
        assert len(outer.operands) == 2

    def test_disj_true_absorbs(self):
        assert disj(eq(Item("x"), 1), TRUE) == TRUE

    def test_implies_simplification(self):
        body = eq(Item("x"), 1)
        assert implies(TRUE, body) == body
        assert implies(FALSE, body) == TRUE
        assert implies(body, TRUE) == TRUE

    def test_evaluation(self, state):
        assert conj(ge(Item("x"), 0), le(Item("x"), 5)).evaluate(state, {})
        assert disj(eq(Item("x"), 9), eq(Item("x"), 3)).evaluate(state, {})
        assert Not(eq(Item("x"), 9)).evaluate(state, {})
        assert Implies(eq(Item("x"), 9), FALSE).evaluate(state, {})

    def test_operator_sugar(self, state):
        formula = ge(Item("x"), 0) & le(Item("x"), 5) | FALSE
        assert formula.evaluate(state, {})
        assert (~eq(Item("x"), 9)).evaluate(state, {})

    def test_conjuncts_helper(self):
        a, b = eq(Item("x"), 1), eq(Item("y"), 2)
        assert conjuncts(conj(a, b)) == (a, b)
        assert conjuncts(a) == (a,)
        assert conjuncts(TRUE) == ()


class TestRowQuantifiers:
    def test_forall_rows_true(self, state):
        formula = ForAllRows("T", "r", ge(RowAttr("r", "k"), 1))
        assert formula.evaluate(state, {})

    def test_forall_rows_false(self, state):
        formula = ForAllRows("T", "r", ge(RowAttr("r", "k"), 2))
        assert not formula.evaluate(state, {})

    def test_forall_rows_with_where(self, state):
        formula = ForAllRows(
            "T", "r", eq(RowAttr("r", "due"), 2), where=eq(RowAttr("r", "k"), 2)
        )
        assert formula.evaluate(state, {})

    def test_exists_row(self, state):
        assert ExistsRow("T", "r", eq(RowAttr("r", "k"), 2)).evaluate(state, {})
        assert not ExistsRow("T", "r", eq(RowAttr("r", "k"), 7)).evaluate(state, {})

    def test_empty_table_forall_vacuous(self):
        empty = DbState()
        assert ForAllRows("T", "r", FALSE).evaluate(empty, {})
        assert not ExistsRow("T", "r", TRUE).evaluate(empty, {})

    def test_bound_row_attr_not_free(self):
        formula = ForAllRows("T", "r", eq(RowAttr("r", "k"), Param("p")))
        atoms = set(formula.atoms())
        assert Param("p") in atoms
        assert not any(isinstance(a, RowAttr) for a in atoms)

    def test_substitution_avoids_capture(self):
        formula = ForAllRows("T", "r", eq(RowAttr("r", "k"), Param("p")))
        rewritten = formula.substitute({RowAttr("r", "k"): IntConst(1)})
        # the bound attribute must not be substituted
        assert rewritten == formula

    def test_resources_include_table_and_attrs(self):
        formula = ForAllRows("T", "r", eq(RowAttr("r", "k"), 1))
        resources = formula.resources()
        assert TableResource("T") in resources
        assert TableResource("T", "k") in resources


class TestIntQuantifier:
    def test_forall_ints_true(self, state):
        # every date 1..max has a row in T
        formula = ForAllInts(
            "d", IntConst(1), Item("max"),
            ExistsRow("T", "r", eq(RowAttr("r", "due"), BoundVar("d"))),
        )
        assert formula.evaluate(state, {})

    def test_forall_ints_false_on_gap(self, state):
        state.items["max"] = 3  # no row with due = 3
        formula = ForAllInts(
            "d", IntConst(1), Item("max"),
            ExistsRow("T", "r", eq(RowAttr("r", "due"), BoundVar("d"))),
        )
        assert not formula.evaluate(state, {})

    def test_empty_range_vacuous(self, state):
        formula = ForAllInts("d", IntConst(5), IntConst(1), FALSE)
        assert formula.evaluate(state, {})

    def test_bound_var_not_free(self):
        formula = ForAllInts("d", IntConst(0), Item("max"), eq(BoundVar("d"), Param("p")))
        atoms = set(formula.atoms())
        assert BoundVar("d") not in atoms
        assert Param("p") in atoms
        assert Item("max") in atoms


class TestCountAndMembership:
    def test_count_where(self, state):
        count = CountWhere("T", "r", ge(RowAttr("r", "k"), 2))
        assert count.evaluate(state, {}) == 1

    def test_count_where_in_comparison(self, state):
        formula = eq(CountWhere("T", "r", TRUE), 2)
        assert formula.evaluate(state, {})

    def test_count_resources(self):
        count = CountWhere("T", "r", eq(RowAttr("r", "k"), 1))
        assert TableResource("T") in count.resources()
        assert TableResource("T", "k") in count.resources()

    def test_in_table_positive(self, state):
        formula = InTable("T", (("k", IntConst(1)), ("name", StrConst("a"))))
        assert formula.evaluate(state, {})

    def test_in_table_negative(self, state):
        formula = InTable("T", (("k", IntConst(1)), ("name", StrConst("b"))))
        assert not formula.evaluate(state, {})

    def test_in_table_partial_match(self, state):
        formula = InTable("T", (("k", IntConst(2)),))
        assert formula.evaluate(state, {})


class TestAbstractPred:
    def test_evaluator_runs(self, state):
        pred = AbstractPred("always", evaluator=lambda s, e: True)
        assert pred.evaluate(state, {})

    def test_missing_evaluator_raises(self, state):
        with pytest.raises(EvaluationError):
            AbstractPred("opaque").evaluate(state, {})

    def test_declared_resources(self):
        pred = AbstractPred("touches-x", reads=frozenset({ScalarResource("x")}))
        assert ScalarResource("x") in pred.resources()

    def test_empty_footprint(self):
        pred = AbstractPred("pure-output")
        assert pred.resources() == frozenset()

    def test_substitution_is_identity(self):
        pred = AbstractPred("p")
        assert pred.substitute({Item("x"): IntConst(0)}) is pred


class TestResources:
    def test_scalar_resource_from_item(self):
        assert ScalarResource("x") in eq(Item("x"), 1).resources()

    def test_field_resources(self):
        from repro.core.resources import ArrayResource

        formula = ge(Field("a", Param("i"), "bal"), 0)
        assert ArrayResource("a", "bal") in formula.resources()

    def test_nested_resources_propagate(self):
        formula = conj(
            eq(Item("x"), 1),
            ForAllRows("T", "r", eq(RowAttr("r", "k"), Item("y"))),
        )
        resources = formula.resources()
        assert ScalarResource("x") in resources
        assert ScalarResource("y") in resources
        assert TableResource("T") in resources
