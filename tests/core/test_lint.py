"""Unit tests for the program lint pass (repro.core.lint).

One fixture transaction per seeded defect class, plus the bundled-app
cleanliness contract the CI smoke job relies on.
"""

import pytest

from repro.apps import registry
from repro.core import lint
from repro.core.application import Application
from repro.core.formula import conj, eq, ge
from repro.core.program import If, Read, Rollback, TransactionType, Write
from repro.core.terms import Field, IntConst, Item, Local, Param
from repro.errors import AnalysisError


def _txn(name="T", **kwargs) -> TransactionType:
    return TransactionType(name=name, **kwargs)


def _rules(findings) -> set:
    return {finding.rule for finding in findings}


class TestDuplicateNames:
    def test_duplicate_reported(self):
        report = lint.lint_transactions("demo", [_txn("Dup"), _txn("Dup"), _txn("Ok")])
        dupes = [f for f in report.findings if f.rule == "duplicate-transaction-name"]
        assert len(dupes) == 1
        assert dupes[0].severity == lint.ERROR
        assert dupes[0].transaction == "Dup"
        assert not report.ok

    def test_unique_names_clean(self):
        report = lint.lint_transactions("demo", [_txn("A"), _txn("B")])
        assert "duplicate-transaction-name" not in _rules(report.findings)

    def test_application_rejects_duplicates_by_name(self):
        with pytest.raises(AnalysisError, match="Dup"):
            Application(name="demo", transactions=(_txn("Dup"), _txn("Dup")))


class TestUnsatisfiablePrecondition:
    def test_contradictory_b_i_reported(self):
        h = Param("h")
        txn = _txn(params=(h,), param_pre=conj(eq(h, 0), eq(h, 1)))
        report = lint.lint_transactions("demo", [txn])
        assert "unsatisfiable-precondition" in _rules(report.errors)

    def test_satisfiable_b_i_clean(self):
        h = Param("h")
        txn = _txn(params=(h,), param_pre=ge(h, 0))
        report = lint.lint_transactions("demo", [txn])
        assert "unsatisfiable-precondition" not in _rules(report.findings)


class TestUnboundAssertionVariable:
    def test_unbound_local_in_result(self):
        bound = Local("B")
        ghost = Local("Z")
        txn = _txn(
            body=(Read(into=bound, source=Item("x")),),
            result=eq(ghost, 1),
        )
        report = lint.lint_transactions("demo", [txn])
        findings = [f for f in report.errors if f.rule == "unbound-assertion-variable"]
        assert findings and "Z" in findings[0].message

    def test_bound_local_clean(self):
        bound = Local("B")
        txn = _txn(
            body=(Read(into=bound, source=Item("x")),),
            result=ge(bound, 0),
        )
        report = lint.lint_transactions("demo", [txn])
        assert "unbound-assertion-variable" not in _rules(report.findings)

    def test_unbound_local_in_explicit_post(self):
        bound = Local("B")
        ghost = Local("Z")
        txn = _txn(body=(Read(into=bound, source=Item("x"), post=eq(ghost, 1)),))
        report = lint.lint_transactions("demo", [txn])
        assert "unbound-assertion-variable" in _rules(report.errors)


class TestDeadStatements:
    def test_statement_after_rollback(self):
        txn = _txn(body=(Rollback(), Write(Item("x"), IntConst(1))))
        report = lint.lint_transactions("demo", [txn])
        dead = [f for f in report.findings if f.rule == "dead-statement"]
        assert dead and dead[0].severity == lint.WARNING

    def test_rollback_in_branch_only_kills_that_branch(self):
        branchy = If(
            cond=ge(Param("p"), 0),
            then=(Rollback(), Write(Item("x"), IntConst(1))),  # dead
            orelse=(Write(Item("y"), IntConst(2)),),
        )
        txn = _txn(params=(Param("p"),), body=(branchy, Write(Item("z"), IntConst(3))))
        report = lint.lint_transactions("demo", [txn])
        dead = [f for f in report.findings if f.rule == "dead-statement"]
        assert len(dead) == 1  # only the then-branch write, not z

    def test_trailing_rollback_clean(self):
        txn = _txn(body=(Write(Item("x"), IntConst(1)), Rollback()))
        report = lint.lint_transactions("demo", [txn])
        assert "dead-statement" not in _rules(report.findings)


class TestUnannotatedWrites:
    def test_write_outside_assertion_surface(self):
        txn = _txn(body=(Write(Item("shadow"), IntConst(7)),))
        report = lint.lint_transactions("demo", [txn])
        findings = [f for f in report.findings if f.rule == "unannotated-write"]
        assert findings and findings[0].severity == lint.INFO
        assert report.ok  # info only, not an error

    def test_write_covered_by_consistency_clean(self):
        txn = _txn(
            body=(Write(Item("x"), IntConst(1)),),
            consistency=ge(Item("x"), 0),
        )
        report = lint.lint_transactions("demo", [txn])
        assert "unannotated-write" not in _rules(report.findings)


class TestSdgFindings:
    def test_banking_write_skew_as_warning(self):
        report = lint.lint_application(registry()["banking"]())
        skews = [f for f in report.findings if f.rule == "sdg-write-skew"]
        assert skews and all(f.severity == lint.WARNING for f in skews)
        assert any("Withdraw_ch" in f.transaction for f in skews)

    def test_lost_update_flagged_on_employees(self):
        report = lint.lint_application(registry()["employees"]())
        assert "sdg-lost-update" in _rules(report.findings)


class TestReport:
    def test_errors_sort_first(self):
        h = Param("h")
        bad = _txn("Bad", params=(h,), param_pre=conj(eq(h, 0), eq(h, 1)))
        dead = _txn("Dead", body=(Rollback(), Write(Item("x"), IntConst(1))))
        report = lint.lint_transactions("demo", [bad, dead])
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, key=lambda s: lint._SEVERITY_ORDER[s])

    def test_to_dict_shape(self):
        report = lint.lint_application(registry()["employees"]())
        payload = report.to_dict()
        assert payload["application"] == "employees"
        assert isinstance(payload["ok"], bool)
        assert all(
            {"rule", "severity", "transaction", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_render_mentions_rule_names(self):
        report = lint.lint_application(registry()["banking"]())
        text = report.render()
        assert "sdg-write-skew" in text


class TestBundledAppsClean:
    """The CI smoke contract: no error-severity findings in bundled apps."""

    @pytest.mark.parametrize("name", sorted(registry()))
    def test_no_errors(self, name):
        report = lint.lint_application(registry()[name]())
        assert report.ok, [repr(f) for f in report.errors]
