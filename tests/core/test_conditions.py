"""Unit tests for the per-level conditions (Theorems 1-6)."""

import pytest

from repro.core.application import Application
from repro.core.conditions import (
    ANSI_LADDER,
    EXTENDED_LADDER,
    LEVEL_ORDER,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    SNAPSHOT,
    canonical_read_post,
    check_transaction_at,
    conjuncts_of,
    consistency_assertions,
    fcw_protected_reads,
    naive_triple_count,
    obligation_count,
    predicate_covers,
    predicate_intersects,
    read_post_assertions,
    read_step_assertion,
    result_assertions,
)
from repro.core.domains import DomainSpec, ItemDomain
from repro.core.formula import RowAttr, TRUE, conj, eq, ge, le
from repro.core.interference import InterferenceChecker
from repro.core.program import (
    Delete,
    If,
    Insert,
    Read,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
    Write,
)
from repro.core.terms import Field, IntConst, Item, Local, Param
from repro.errors import AnalysisError


def reader_writer_app():
    read = Read(Local("v"), Item("x"), post=le(Local("v"), Item("x")))
    reader = TransactionType(name="Reader", body=(read,), result=TRUE)
    bumper = TransactionType(
        name="Bumper",
        body=(Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1)),
        consistency=ge(Item("x"), 0),
        result=ge(Item("x"), 0),
    )
    spec = DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
    return Application("rw", (reader, bumper), spec=spec)


class TestLadders:
    def test_ansi_ladder_order(self):
        assert ANSI_LADDER == (
            READ_UNCOMMITTED,
            READ_COMMITTED,
            REPEATABLE_READ,
            SERIALIZABLE,
        )

    def test_extended_ladder_includes_fcw(self):
        assert READ_COMMITTED_FCW in EXTENDED_LADDER

    def test_level_order_is_strict(self):
        assert LEVEL_ORDER[READ_UNCOMMITTED] < LEVEL_ORDER[READ_COMMITTED]
        assert LEVEL_ORDER[READ_COMMITTED] < LEVEL_ORDER[SNAPSHOT]
        assert LEVEL_ORDER[SNAPSHOT] < LEVEL_ORDER[SERIALIZABLE]


class TestCanonicalPosts:
    def test_conventional_read(self):
        read = Read(Local("v"), Item("x"))
        assert canonical_read_post(read) == eq(Local("v"), Item("x"))

    def test_select_count_is_structural(self):
        from repro.core.formula import CountWhere

        stmt = SelectCount("T", Local("n"), where=TRUE)
        post = canonical_read_post(stmt)
        assert isinstance(post.right, CountWhere) or isinstance(post.left, CountWhere)

    def test_select_buffer_evaluator(self):
        from repro.core.state import DbState

        stmt = Select("T", Local("b", "str"))
        post = canonical_read_post(stmt)
        state = DbState(tables={"T": [{"k": 1}]})
        env = {}
        stmt.execute(state, env)
        assert post.evaluate(state, env)
        state.insert_row("T", {"k": 2})
        assert not post.evaluate(state, env)

    def test_select_scalar_evaluator(self):
        from repro.core.state import DbState

        stmt = SelectScalar("T", "k", Local("v"), default=0)
        post = canonical_read_post(stmt)
        state = DbState(tables={"T": [{"k": 5}]})
        env = {}
        stmt.execute(state, env)
        assert post.evaluate(state, env)
        state.update_rows("T", lambda r: True, lambda r: {"k": 6})
        assert not post.evaluate(state, env)

    def test_non_read_rejected(self):
        with pytest.raises(AnalysisError):
            canonical_read_post(Write(Item("x"), Local("v")))


class TestAssertionExtraction:
    def test_conjuncts_split(self):
        post = conj(ge(Item("x"), 0), le(Local("v"), Item("x")))
        read = Read(Local("v"), Item("x"), post=post)
        txn = TransactionType(name="T", body=(read,))
        assertions = read_post_assertions(txn)
        assert len(assertions) == 2
        assert all(stmt is read for stmt, _a in assertions)

    def test_consistency_and_result_split(self):
        txn = TransactionType(
            name="T",
            consistency=conj(ge(Item("x"), 0), ge(Item("y"), 0)),
            result=ge(Item("x"), 1),
        )
        assert len(consistency_assertions(txn)) == 2
        assert len(result_assertions(txn)) == 1

    def test_read_step_combines_posts(self):
        read1 = Read(Local("a"), Item("x"), post=ge(Local("a"), 0))
        read2 = Read(Local("b"), Item("y"))
        txn = TransactionType(name="T", body=(read1, read2))
        step = read_step_assertion(txn)
        assert step.kind == "read_step_post"

    def test_conjuncts_of(self):
        assert conjuncts_of(TRUE) == []
        single = ge(Item("x"), 0)
        assert conjuncts_of(single) == [single]


class TestFcwProtection:
    def test_read_then_write_same_item_protected(self):
        read = Read(Local("v"), Item("x"))
        txn = TransactionType(
            name="T", body=(read, Write(Item("x"), Local("v") + 1))
        )
        assert id(read) in fcw_protected_reads(txn)

    def test_read_without_write_unprotected(self):
        read = Read(Local("v"), Item("x"))
        txn = TransactionType(name="T", body=(read,))
        assert fcw_protected_reads(txn) == set()

    def test_conditional_write_does_not_protect(self):
        read = Read(Local("v"), Item("x"))
        txn = TransactionType(
            name="T",
            body=(
                read,
                If(ge(Local("v"), 0), then=(Write(Item("x"), Local("v") + 1),)),
            ),
        )
        # the else-path has no write, so FCW gives no protection
        assert id(read) not in fcw_protected_reads(txn)

    def test_select_protected_by_covering_update(self):
        select = SelectScalar("M", "d", Local("m"), where=TRUE)
        update = Update("M", sets=(("d", Local("m") + 1),), where=TRUE)
        txn = TransactionType(name="T", body=(select, update))
        assert id(select) in fcw_protected_reads(txn)

    def test_select_not_protected_by_narrower_update(self):
        select = Select("T", Local("b", "str"), where=TRUE)
        update = Update("T", sets=(("d", IntConst(1)),), where=eq(RowAttr("r", "k"), 1))
        txn = TransactionType(name="T", body=(select, update))
        assert id(select) not in fcw_protected_reads(txn)


class TestPredicateRelations:
    def test_covers_positive(self):
        narrow = eq(RowAttr("r", "k"), 1)
        assert predicate_covers(narrow, "r", TRUE, "s")

    def test_covers_negative(self):
        assert not predicate_covers(TRUE, "r", eq(RowAttr("s", "k"), 1), "s")

    def test_intersects_positive(self):
        a = eq(RowAttr("r", "k"), 1)
        b = ge(RowAttr("s", "k"), 0)
        assert predicate_intersects(a, "r", b, "s")

    def test_intersects_negative(self):
        a = eq(RowAttr("r", "k"), 1)
        b = eq(RowAttr("s", "k"), 2)
        assert not predicate_intersects(a, "r", b, "s")


class TestLevelChecks:
    def test_reader_fails_ru_by_rollback(self):
        app = reader_writer_app()
        checker = InterferenceChecker(app.spec)
        result = check_transaction_at(app, app.transaction("Reader"), READ_UNCOMMITTED, checker)
        assert not result.ok
        assert any(ob.mode == "rollback" and not ob.ok for ob in result.obligations)

    def test_reader_passes_rc(self):
        app = reader_writer_app()
        checker = InterferenceChecker(app.spec)
        result = check_transaction_at(app, app.transaction("Reader"), READ_COMMITTED, checker)
        assert result.ok

    def test_conventional_rr_trivially_correct(self):
        app = reader_writer_app()
        result = check_transaction_at(
            app, app.transaction("Reader"), REPEATABLE_READ, InterferenceChecker(app.spec)
        )
        assert result.ok and result.trivially_correct

    def test_serializable_trivially_correct(self):
        app = reader_writer_app()
        result = check_transaction_at(
            app, app.transaction("Reader"), SERIALIZABLE, InterferenceChecker(app.spec)
        )
        assert result.ok and result.trivially_correct

    def test_unknown_level_rejected(self):
        app = reader_writer_app()
        with pytest.raises(AnalysisError):
            check_transaction_at(app, app.transaction("Reader"), "CHAOS", None)

    def test_summary_strings(self):
        app = reader_writer_app()
        checker = InterferenceChecker(app.spec)
        result = check_transaction_at(app, app.transaction("Reader"), READ_COMMITTED, checker)
        assert "Reader" in result.summary()
        for ob in result.obligations:
            assert "Reader" in ob.describe()


class TestObligationCounts:
    def test_naive_count_is_quadratic(self):
        app = reader_writer_app()
        statements = sum(len(t.statements()) for t in app.transactions)
        assert naive_triple_count(app) == statements * statements

    def test_snapshot_count_is_linear_in_types(self):
        app = reader_writer_app()
        assert obligation_count(app, app.transaction("Bumper"), SNAPSHOT) == 2 * 2

    def test_serializable_count_is_zero(self):
        app = reader_writer_app()
        assert obligation_count(app, app.transaction("Reader"), SERIALIZABLE) == 0

    def test_conventional_rr_count_is_zero(self):
        app = reader_writer_app()
        assert obligation_count(app, app.transaction("Reader"), REPEATABLE_READ) == 0

    def test_counts_monotone_ru_heaviest(self):
        app = reader_writer_app()
        target = app.transaction("Bumper")
        ru = obligation_count(app, target, READ_UNCOMMITTED)
        rc = obligation_count(app, target, READ_COMMITTED)
        si = obligation_count(app, target, SNAPSHOT)
        assert ru > rc >= si or ru > si
