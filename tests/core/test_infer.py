"""Tests for static annotation inference (``repro infer``).

The agreement tests mirror the checker settings the other suites use per
application (budget/seed pairs from ``test_chooser``); inference itself is
deterministic, so the expensive part is the two chooser runs inside
:func:`repro.core.infer.agreement`.  The tpcc agreement needs ~7 minutes
of chooser time at its smallest honest budget and is therefore gated
behind ``REPRO_SLOW_TESTS=1``; its inference pass (fast) is always
exercised.
"""

import os

import pytest

from repro.apps import registry
from repro.core.formula import TRUE, conjuncts
from repro.core.infer import (
    agreement,
    infer_application,
    refine_candidates,
    strip_annotations,
    synthesize_candidates,
)
from repro.core.program import Read, ReadRecord, Select, SelectCount, SelectScalar

RUN_SLOW = os.environ.get("REPRO_SLOW_TESTS") == "1"


def _read_statements(txn):
    kinds = (Read, ReadRecord, Select, SelectScalar, SelectCount)
    return [stmt for stmt in txn.statements() if isinstance(stmt, kinds)]


class TestStripAnnotations:
    def test_all_triples_reset(self):
        app = registry()["banking"]()
        bare = strip_annotations(app)
        for txn in bare.transactions:
            assert txn.consistency is TRUE
            assert txn.param_pre is TRUE
            assert txn.result is TRUE
            assert txn.snapshot == ()

    def test_read_posts_removed_bodies_kept(self):
        app = registry()["employees"]()
        bare = strip_annotations(app)
        for txn in bare.transactions:
            for stmt in _read_statements(txn):
                assert getattr(stmt, "post", None) is None
        assert [t.name for t in bare.transactions] == [
            t.name for t in app.transactions
        ]

    def test_spec_preserved(self):
        app = registry()["banking"]()
        assert strip_annotations(app).spec is app.spec


class TestSynthesis:
    def test_banking_guard_template_fires(self):
        app = registry()["banking"]()
        names = [c.name for c in synthesize_candidates(strip_annotations(app))]
        assert any(name.startswith("guard-lb[") for name in names)
        assert any(name.startswith("nonneg[") for name in names)

    def test_employees_record_equality_recovered(self):
        app = registry()["employees"]()
        candidates = synthesize_candidates(strip_annotations(app))
        record = [c for c in candidates if c.template == "record-equality"]
        assert record
        declared = set()
        for txn in app.transactions:
            declared.update(conjuncts(txn.consistency))
        # hash-consing: recovering I_sal verbatim means object identity
        assert any(c.formula in declared for c in record)

    def test_candidates_deduplicated_and_sorted(self):
        app = registry()["customers"]()
        candidates = synthesize_candidates(strip_annotations(app))
        formulas = [c.formula for c in candidates]
        assert len(set(formulas)) == len(formulas)
        assert [c.name for c in candidates] == sorted(c.name for c in candidates)


class TestCegis:
    def test_banking_demotes_per_field_nonneg(self):
        app = registry()["banking"]()
        bare = strip_annotations(app)
        candidates = synthesize_candidates(bare)
        survivors, trace = refine_candidates(bare, candidates, seed=0)
        surviving = {c.name for c in survivors}
        demoted = {name for name, _reason in trace.demoted}
        # the per-account-field non-negativity claims are falsified by a
        # committed overdraft against the *other* account; the cross-field
        # sum survives
        assert any(name.startswith("nonneg[") for name in demoted)
        assert any(name.startswith("guard-lb[") for name in surviving)

    def test_cegis_trace_deterministic(self):
        app = registry()["banking"]()
        bare = strip_annotations(app)
        first = refine_candidates(bare, synthesize_candidates(bare), seed=3)
        second = refine_candidates(bare, synthesize_candidates(bare), seed=3)
        assert [c.name for c in first[0]] == [c.name for c in second[0]]
        assert first[1].demoted == second[1].demoted
        assert first[1].schedules == second[1].schedules


class TestInferApplication:
    def test_report_deterministic(self):
        app = registry()["employees"]()
        _, first = infer_application(app, seed=5)
        _, second = infer_application(app, seed=5)
        assert first.to_dict() == second.to_dict()

    def test_every_read_gets_explicit_post(self):
        # a read left with post=None would silently receive the canonical
        # STRONG post from the checker — inference must always commit to
        # an explicit formula, even when that formula is TRUE
        app = registry()["orders"]()
        inferred, _ = infer_application(app, seed=3)
        for txn in inferred.transactions:
            for stmt in _read_statements(txn):
                assert stmt.post is not None

    def test_tpcc_inference_keeps_stock_nonneg(self):
        # inference alone (no chooser) is fast even for tpcc
        app = registry()["tpcc"]()
        _, report = infer_application(app, seed=0)
        assert any("stock" in name for name in report.candidates)


AGREEMENT_CASES = [
    pytest.param("banking", 4000, 1, id="banking"),
    pytest.param("employees", 6000, 5, id="employees"),
    pytest.param("customers", 4000, 5, id="customers"),
    pytest.param("orders", 3000, 3, id="orders"),
    pytest.param(
        "tpcc", 400, 0, id="tpcc",
        marks=pytest.mark.skipif(
            not RUN_SLOW, reason="two tpcc chooser runs take ~7min;"
            " set REPRO_SLOW_TESTS=1"
        ),
    ),
]


class TestAgreement:
    @pytest.mark.parametrize("name,budget,seed", AGREEMENT_CASES)
    def test_inferred_levels_match_declared(self, name, budget, seed):
        app = registry()[name]()
        inferred, _ = infer_application(app, seed=seed)
        compared = agreement(app, inferred, budget=budget, seed=seed)
        assert compared["agreement"], compared
        assert compared["declared"] == compared["inferred"]
