"""Unit tests for the transaction-program IR."""

import pytest

from repro.core.formula import RowAttr, TRUE, conj, eq, ge, lt, ne
from repro.core.program import (
    Delete,
    ForEach,
    If,
    Insert,
    LocalAssign,
    Read,
    ReadRecord,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
    While,
    Write,
)
from repro.core.resources import ArrayResource, ScalarResource, TableResource
from repro.core.state import DbState
from repro.core.terms import BoolConst, Field, IntConst, Item, Local, LogicalVar, Param
from repro.errors import EvaluationError, ProgramError


@pytest.fixture
def state():
    return DbState(
        items={"x": 5, "max": 2},
        arrays={"emp": {0: {"rate": 2, "hrs": 3}}},
        tables={"T": [{"k": 1, "done": False}, {"k": 2, "done": False}]},
    )


class TestStatementValidation:
    def test_read_source_must_be_database_ref(self):
        with pytest.raises(ProgramError):
            Read(Local("v"), Local("w"))

    def test_write_target_must_be_database_ref(self):
        with pytest.raises(ProgramError):
            Write(Local("v"), IntConst(1))

    def test_write_value_cannot_read_database(self):
        with pytest.raises(ProgramError):
            Write(Item("x"), Item("y"))

    def test_local_assign_cannot_read_database(self):
        with pytest.raises(ProgramError):
            LocalAssign(Local("v"), Item("x"))

    def test_guards_must_be_local(self):
        with pytest.raises(ProgramError):
            If(ge(Item("x"), 0), then=())
        with pytest.raises(ProgramError):
            While(ge(Item("x"), 0), body=())

    def test_insert_coerces_literals(self):
        stmt = Insert("T", (("k", 5), ("done", False)))
        assert stmt.values[0][1] == IntConst(5)
        assert stmt.values[1][1] == BoolConst(False)

    def test_update_coerces_literals(self):
        stmt = Update("T", sets=(("done", True),))
        assert stmt.sets[0][1] == BoolConst(True)


class TestConcreteExecution:
    def test_read_write_roundtrip(self, state):
        env = {}
        Read(Local("v"), Item("x")).execute(state, env)
        LocalAssign(Local("v"), Local("v") + 1).execute(state, env)
        Write(Item("x"), Local("v")).execute(state, env)
        assert state.read_item("x") == 6

    def test_field_access(self, state):
        env = {Param("i"): 0}
        Read(Local("r"), Field("emp", Param("i"), "rate")).execute(state, env)
        assert env[Local("r")] == 2

    def test_read_record(self, state):
        env = {Param("i"): 0}
        stmt = ReadRecord("emp", Param("i"), (("rate", Local("R")), ("hrs", Local("H"))))
        stmt.execute(state, env)
        assert env[Local("R")] == 2
        assert env[Local("H")] == 3

    def test_if_branches(self, state):
        env = {Local("v"): 1}
        If(
            ge(Local("v"), 0),
            then=(Write(Item("x"), IntConst(10)),),
            orelse=(Write(Item("x"), IntConst(-10)),),
        ).execute(state, env)
        assert state.read_item("x") == 10

    def test_while_loops(self, state):
        env = {Local("k"): 0}
        While(lt(Local("k"), 3), body=(LocalAssign(Local("k"), Local("k") + 1),)).execute(
            state, env
        )
        assert env[Local("k")] == 3

    def test_while_fuel_guard(self, state):
        env = {Local("k"): 0}
        loop = While(ge(Local("k"), 0), body=(LocalAssign(Local("k"), Local("k") + 1),))
        with pytest.raises(EvaluationError):
            loop.execute(state, env)

    def test_select_buffers_rows(self, state):
        env = {}
        Select("T", Local("buff", "str"), where=eq(RowAttr("r", "done", "bool"), False)).execute(
            state, env
        )
        assert len(env[Local("buff", "str")]) == 2

    def test_select_projects_attrs(self, state):
        env = {}
        Select("T", Local("buff", "str"), attrs=("k",)).execute(state, env)
        rows = [dict(packed) for packed in env[Local("buff", "str")]]
        assert rows == [{"k": 1}, {"k": 2}]

    def test_select_scalar(self, state):
        env = {}
        SelectScalar("T", "k", Local("v"), where=eq(RowAttr("r", "k"), 2)).execute(state, env)
        assert env[Local("v")] == 2

    def test_select_scalar_default(self, state):
        env = {}
        SelectScalar("T", "k", Local("v"), where=eq(RowAttr("r", "k"), 99), default=-1).execute(
            state, env
        )
        assert env[Local("v")] == -1

    def test_select_count(self, state):
        env = {}
        SelectCount("T", Local("n"), where=TRUE).execute(state, env)
        assert env[Local("n")] == 2

    def test_insert(self, state):
        env = {Param("p"): 9}
        Insert("T", (("k", Param("p")), ("done", False))).execute(state, env)
        assert state.table_size("T") == 3

    def test_update_with_row_reference(self, state):
        env = {}
        Update("T", sets=(("k", RowAttr("r", "k") + 10),), where=eq(RowAttr("r", "k"), 1)).execute(
            state, env
        )
        assert sorted(row["k"] for row in state.rows("T")) == [2, 11]

    def test_delete(self, state):
        env = {}
        Delete("T", where=eq(RowAttr("r", "k"), 1)).execute(state, env)
        assert state.table_size("T") == 1

    def test_foreach_iterates_buffer(self, state):
        env = {}
        Select("T", Local("buff", "str"), attrs=("k",)).execute(state, env)
        ForEach(
            buffer=Local("buff", "str"),
            bind=(("k", Local("kk")),),
            body=(Update("T", sets=(("done", True),), where=eq(RowAttr("r", "k"), Local("kk"))),),
        ).execute(state, env)
        assert all(row["done"] for row in state.rows("T"))


class TestFootprints:
    def test_read_resources(self):
        assert Read(Local("v"), Item("x")).read_resources() == frozenset({ScalarResource("x")})
        stmt = Read(Local("v"), Field("a", Param("i"), "bal"))
        assert ArrayResource("a", "bal") in stmt.read_resources()

    def test_write_resources(self):
        assert Write(Item("x"), Local("v")).written_resources() == frozenset({ScalarResource("x")})

    def test_control_aggregates_resources(self):
        stmt = If(TRUE, then=(Write(Item("x"), Local("v")),), orelse=(Write(Item("y"), Local("v")),))
        written = stmt.written_resources()
        assert ScalarResource("x") in written and ScalarResource("y") in written

    def test_relational_resources(self):
        select = Select("T", Local("b", "str"), where=eq(RowAttr("r", "k"), 1))
        assert TableResource("T") in select.read_resources()
        assert TableResource("T", "k") in select.read_resources()
        update = Update("T", sets=(("done", True),))
        assert update.written_resources() == frozenset({TableResource("T", "done")})
        assert Insert("T", (("k", 1),)).written_resources() == frozenset({TableResource("T")})


class TestTransactionType:
    def _simple(self):
        return TransactionType(
            name="Inc",
            params=(Param("i"),),
            body=(
                Read(Local("v"), Item("x")),
                If(ge(Local("v"), 0), then=(Write(Item("x"), Local("v") + 1),)),
            ),
            consistency=ge(Item("x"), 0),
            snapshot=((LogicalVar("X0"), Item("x")),),
        )

    def test_walk_covers_nested_statements(self):
        txn = self._simple()
        statements = txn.statements()
        assert len(statements) == 3  # read, if, write

    def test_read_write_partition(self):
        txn = self._simple()
        assert len(txn.read_statements()) == 1
        assert len(txn.write_statements()) == 1

    def test_run_executes_atomically(self):
        txn = self._simple()
        state = DbState(items={"x": 4})
        env = txn.run(state, {"i": 0})
        assert state.read_item("x") == 5
        assert env[LogicalVar("X0")] == 4

    def test_run_requires_args(self):
        txn = self._simple()
        with pytest.raises(ProgramError):
            txn.run(DbState(items={"x": 0}), {})

    def test_rename_params(self):
        txn = self._simple()
        renamed = txn.rename_params("!2")
        assert renamed.params[0].name == "i!2"
        # locals and logical variables renamed too
        assert LogicalVar("X0!2") in {lv for lv, _t in renamed.snapshot}
        read = renamed.read_statements()[0]
        assert read.into.name == "v!2"
        # execution still works under the renamed arguments
        state = DbState(items={"x": 1})
        renamed.run(state, {"i!2": 0})
        assert state.read_item("x") == 2

    def test_duplicate_names_detected(self):
        from repro.core.application import Application
        from repro.errors import AnalysisError

        txn = self._simple()
        with pytest.raises(AnalysisError):
            Application("bad", (txn, txn))
