"""Unit tests for bounded-model-checking domains."""

import random

import pytest

from repro.core.domains import (
    ArrayDomain,
    DomainSpec,
    ItemDomain,
    SearchSpace,
    TableDomain,
    iter_assignments,
    split_budget,
)
from repro.core.terms import Local, Param
from repro.errors import AnalysisError


def rng():
    return random.Random(0)


class TestDomainSizes:
    def test_item_size(self):
        assert ItemDomain("x", (1, 2, 3)).size() == 3

    def test_array_size(self):
        domain = ArrayDomain("a", (0, 1), (("v", (1, 2)),))
        assert domain.size() == 4  # 2 values ^ 2 indices

    def test_table_candidate_rows(self):
        domain = TableDomain("T", (("k", (1, 2)), ("b", (True, False))), max_rows=1)
        assert len(domain.candidate_rows()) == 4

    def test_table_row_filter(self):
        domain = TableDomain(
            "T", (("k", (1, 2)),), max_rows=1, row_filter=lambda row: row["k"] != 2
        )
        assert len(domain.candidate_rows()) == 1

    def test_table_size_counts_multisets(self):
        domain = TableDomain("T", (("k", (1, 2)),), max_rows=2)
        # sizes: 1 empty + 2 singletons + 3 pairs (multisets)
        assert domain.size() == 6

    def test_state_space_size_is_product(self):
        spec = DomainSpec(
            items=(ItemDomain("x", (0, 1)),),
            arrays=(ArrayDomain("a", (0,), (("v", (0, 1)),)),),
        )
        assert spec.state_space_size() == 4


class TestStateEnumeration:
    def test_exhaustive_enumeration(self):
        spec = DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
        space = spec.iter_states(100, rng())
        states = list(space)
        assert space.exhaustive
        assert sorted(s.read_item("x") for s in states) == [0, 1, 2]

    def test_sampling_when_over_budget(self):
        spec = DomainSpec(
            items=tuple(ItemDomain(f"x{i}", tuple(range(10))) for i in range(6))
        )
        space = spec.iter_states(50, rng())
        assert not space.exhaustive
        assert len(list(space)) <= 50

    def test_constraint_filters_states(self):
        spec = DomainSpec(
            items=(ItemDomain("x", (0, 1, 2, 3)),),
            state_constraint=lambda s: s.read_item("x") % 2 == 0,
        )
        states = list(spec.iter_states(100, rng()))
        assert all(s.read_item("x") % 2 == 0 for s in states)
        assert len(states) == 2

    def test_table_states_include_row_combinations(self):
        spec = DomainSpec(
            tables=(TableDomain("T", (("k", (1, 2)),), max_rows=1),),
        )
        sizes = sorted(s.table_size("T") for s in spec.iter_states(100, rng()))
        assert sizes == [0, 1, 1]

    def test_empty_slot_rejected(self):
        spec = DomainSpec(items=(ItemDomain("x", ()),))
        with pytest.raises(AnalysisError):
            spec.iter_states(10, rng())


class TestAssignments:
    def test_declared_domains_respected(self):
        spec = DomainSpec(var_domains={"i": (0, 1)})
        values = {env[Param("i")] for env in iter_assignments([Param("i")], spec, 100, rng())}
        assert values == {0, 1}

    def test_suffix_stripping_for_renamed_params(self):
        spec = DomainSpec(var_domains={"i": (7,)})
        envs = list(iter_assignments([Param("i!2")], spec, 100, rng()))
        assert envs == [{Param("i!2"): 7}]

    def test_default_pools_by_sort(self):
        spec = DomainSpec()
        bools = {env[Local("b", "bool")] for env in iter_assignments([Local("b", "bool")], spec, 100, rng())}
        assert bools == {False, True}
        strs = {env[Local("s", "str")] for env in iter_assignments([Local("s", "str")], spec, 100, rng())}
        assert strs == {"a", "b"}

    def test_duplicates_collapsed(self):
        spec = DomainSpec(var_domains={"i": (0, 1)})
        envs = list(iter_assignments([Param("i"), Param("i")], spec, 100, rng()))
        assert len(envs) == 2

    def test_empty_terms_single_empty_assignment(self):
        spec = DomainSpec()
        assert list(iter_assignments([], spec, 10, rng())) == [{}]


class TestHelpers:
    def test_split_budget(self):
        # cube root of 1000, subject to floating-point flooring
        assert split_budget(1000, 3) in (9, 10)
        assert split_budget(8, 3) == 2
        assert split_budget(100, 0) == 100
        assert split_budget(1, 5) == 1
