"""Unit tests for the Section 5 level chooser."""

import pytest

from repro.core.application import Application
from repro.core.chooser import analyze_application, choose_level, snapshot_report
from repro.core.conditions import (
    ANSI_LADDER,
    READ_COMMITTED,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
)
from repro.core.domains import DomainSpec, ItemDomain
from repro.core.formula import TRUE, eq, ge, le
from repro.core.interference import InterferenceChecker
from repro.core.program import Read, TransactionType, Write
from repro.core.terms import Item, Local


def make_app():
    # a read-only reporter with a db-free spec (RU), a monotone reader
    # (RC: rollback breaks it at RU), and an increment writer
    from repro.core.formula import AbstractPred

    free_post = AbstractPred("output only", evaluator=lambda s, e: True)
    pure_read = Read(Local("p"), Item("x"), post=free_post)
    reporter = TransactionType(name="Reporter", body=(pure_read,), result=free_post)

    mono_read = Read(Local("v"), Item("x"), post=le(Local("v"), Item("x")))
    watcher = TransactionType(name="Watcher", body=(mono_read,), result=TRUE)

    bumper = TransactionType(
        name="Bumper",
        body=(Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1)),
        consistency=ge(Item("x"), 0),
        result=ge(Item("x"), 0),
    )
    spec = DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
    return Application("mix", (reporter, watcher, bumper), spec=spec)


class TestChooseLevel:
    def test_reporter_gets_read_uncommitted(self):
        app = make_app()
        choice = choose_level(app, "Reporter", InterferenceChecker(app.spec))
        assert choice.level == READ_UNCOMMITTED

    def test_watcher_escalates_to_read_committed(self):
        app = make_app()
        choice = choose_level(app, "Watcher", InterferenceChecker(app.spec))
        assert choice.level == READ_COMMITTED
        # the audit trail shows the RU failure
        assert choice.attempts[0].level == READ_UNCOMMITTED
        assert not choice.attempts[0].ok

    def test_trail_ends_at_chosen_level(self):
        app = make_app()
        choice = choose_level(app, "Watcher", InterferenceChecker(app.spec))
        assert choice.attempts[-1].ok
        assert choice.attempts[-1].level == choice.level

    def test_ladder_without_serializable_still_terminates(self):
        app = make_app()
        choice = choose_level(
            app, "Watcher", InterferenceChecker(app.spec), ladder=(READ_UNCOMMITTED,)
        )
        assert choice.level in (READ_UNCOMMITTED, SERIALIZABLE, READ_COMMITTED)

    def test_unknown_transaction_rejected(self):
        app = make_app()
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            choose_level(app, "Nope", InterferenceChecker(app.spec))


class TestAnalyzeApplication:
    def test_covers_every_type(self):
        app = make_app()
        report = analyze_application(app, InterferenceChecker(app.spec))
        assert set(report.levels()) == {"Reporter", "Watcher", "Bumper"}

    def test_render_mentions_choices(self):
        app = make_app()
        report = analyze_application(app, InterferenceChecker(app.spec))
        text = report.render()
        assert "Reporter" in text and "READ UNCOMMITTED" in text

    def test_choice_lookup(self):
        app = make_app()
        report = analyze_application(app, InterferenceChecker(app.spec))
        assert report.choice_for("Watcher").transaction == "Watcher"
        with pytest.raises(KeyError):
            report.choice_for("Nope")

    def test_snapshot_report_included_on_request(self):
        app = make_app()
        report = analyze_application(
            app, InterferenceChecker(app.spec), include_snapshot=True
        )
        assert len(report.snapshot_checks) == 3


class TestSnapshotReport:
    def test_per_type_verdicts(self):
        app = make_app()
        checks = snapshot_report(app, InterferenceChecker(app.spec))
        by_name = {check.transaction: check for check in checks}
        # two bumpers write the same item: FCW excuses them
        assert by_name["Bumper"].ok
        assert by_name["Reporter"].ok
