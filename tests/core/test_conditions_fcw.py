"""Focused tests for Theorem 3's refinements (FCW protection and excuse)."""

import pytest

from repro.core.application import Application
from repro.core.conditions import (
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    check_transaction_at,
)
from repro.core.domains import DomainSpec, ItemDomain
from repro.core.formula import eq, ge
from repro.core.interference import InterferenceChecker
from repro.core.program import Read, TransactionType, Write
from repro.core.terms import Item, Local, LogicalVar


def counter(name="Counter", item="x"):
    """A read-modify-write counter with the exact Q (not the weakened >=)."""
    return TransactionType(
        name=name,
        body=(
            Read(Local("v"), Item(item), post=eq(Local("v"), Item(item))),
            Write(Item(item), Local("v") + 1),
        ),
        consistency=ge(Item(item), 0),
        result=eq(Item(item), LogicalVar("X0") + 1),
        snapshot=((LogicalVar("X0"), Item(item)),),
    )


def spec():
    return DomainSpec(items=(ItemDomain("x", (0, 1, 2)), ItemDomain("y", (0, 1))))


class TestReadThenWrittenExcuse:
    def test_counter_fails_plain_rc(self):
        app = Application("c", (counter(),), spec=spec())
        checker = InterferenceChecker(app.spec, budget=2000)
        result = check_transaction_at(app, app.transaction("Counter"), READ_COMMITTED, checker)
        assert not result.ok

    def test_counter_passes_fcw(self):
        """Both the read post (protected) and Q (write-set excuse) clear."""
        app = Application("c", (counter(),), spec=spec())
        checker = InterferenceChecker(app.spec, budget=2000)
        result = check_transaction_at(
            app, app.transaction("Counter"), READ_COMMITTED_FCW, checker
        )
        assert result.ok
        assert "protected by first-committer-wins" in result.note

    def test_unprotected_partner_still_checked(self):
        """Items read but never written get no FCW protection: a blind
        write to such an item still fails the Theorem 3 condition."""
        from repro.core.terms import IntConst

        observer = TransactionType(
            name="Observer",
            body=(
                Read(Local("v"), Item("x"), post=eq(Local("v"), Item("x"))),
                Read(Local("w"), Item("y")),
                Write(Item("y"), Local("w") + 1),
            ),
            result=eq(Local("v"), Item("x")),
        )
        toucher = TransactionType(
            name="Toucher",
            body=(Write(Item("x"), IntConst(2)),),
        )
        app = Application("mix", (observer, toucher), spec=spec())
        checker = InterferenceChecker(app.spec, budget=2000)
        result = check_transaction_at(
            app, app.transaction("Observer"), READ_COMMITTED_FCW, checker
        )
        # Observer reads x but writes only y: x is NOT read-then-written,
        # so Toucher's blind write to x invalidates the unprotected post
        assert not result.ok


class TestFcwDynamicAgreement:
    def test_static_fcw_verdict_matches_engine(self):
        """The refined Theorem 3 verdict agrees with engine behaviour."""
        from repro.core.state import DbState
        from repro.sched.semantic import validate_level
        from repro.sched.simulator import InstanceSpec

        c = counter()
        initial = DbState(items={"x": 0, "y": 0})
        specs = [
            InstanceSpec(c, {}, "READ COMMITTED FCW", "A"),
            InstanceSpec(c, {}, "READ COMMITTED FCW", "B"),
        ]
        tally = validate_level(initial, specs, ge(Item("x"), 0), rounds=40, seed=4)
        assert tally["violations"] == 0
