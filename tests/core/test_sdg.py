"""Unit tests for the static conflict graph (repro.core.sdg)."""

import pytest

from repro.apps import banking, customers, employees, registry
from repro.core import sdg
from repro.core.cache import VerdictCache
from repro.core.chooser import analyze_application
from repro.core.conditions import (
    ANSI_LADDER,
    EXTENDED_LADDER,
    READ_COMMITTED,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    SNAPSHOT,
    plan_level,
)
from repro.core.interference import InterferenceChecker
from repro.core.resources import overlaps
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def banking_graph():
    return sdg.build_graph(banking.make_application())


class TestFootprints:
    def test_withdraw_sav_reads_both_balances_writes_one(self, banking_graph):
        fp = banking_graph.footprint("Withdraw_sav")
        read_names = {repr(r) for r in fp.reads}
        assert any("acct_sav" in name for name in read_names)
        assert any("acct_ch" in name for name in read_names)
        assert all("acct_sav" in repr(r) for r in fp.writes)

    def test_assert_surface_covers_consistency(self, banking_graph):
        # TOTAL >= 0 mentions both balances, so the assert surface does too
        fp = banking_graph.footprint("Withdraw_sav")
        assert any("acct_sav" in repr(r) for r in fp.asserts)
        assert any("acct_ch" in repr(r) for r in fp.asserts)

    def test_unknown_type_raises(self, banking_graph):
        with pytest.raises(AnalysisError):
            banking_graph.footprint("Nope")


class TestEdges:
    def test_self_pairs_present(self, banking_graph):
        # two Withdraw_sav instances conflict on the savings balance
        assert banking_graph.edges_between("Withdraw_sav", "Withdraw_sav", sdg.WW)
        assert banking_graph.edges_between("Withdraw_sav", "Withdraw_sav", sdg.RW)

    def test_rw_antidependency_pair(self, banking_graph):
        # the write-skew pair: each reads what the other writes
        assert banking_graph.edges_between("Withdraw_sav", "Withdraw_ch", sdg.RW)
        assert banking_graph.edges_between("Withdraw_ch", "Withdraw_sav", sdg.RW)

    def test_no_ww_between_skew_pair(self, banking_graph):
        # disjoint write sets (sav vs ch) — the write-skew precondition
        assert not banking_graph.edges_between("Withdraw_sav", "Withdraw_ch", sdg.WW)

    def test_edges_into(self, banking_graph):
        incoming = banking_graph.edges_into("Withdraw_sav", sdg.WW)
        assert {edge.source for edge in incoming} == {"Withdraw_sav", "Deposit_sav"}

    def test_read_only_type_has_no_outgoing_ww(self):
        graph = sdg.build_graph(customers.make_application())
        assert not [e for e in graph.edges if e.source == "Mailing_List_c" and e.kind != sdg.RW]

    def test_to_dict_round_trips_shapes(self, banking_graph):
        payload = banking_graph.to_dict()
        assert set(payload["nodes"]) == set(banking_graph.nodes)
        assert all(
            {"source", "target", "kind", "resources"} <= set(edge)
            for edge in payload["edges"]
        )


class TestDangerousStructures:
    def test_banking_write_skew_detected(self, banking_graph):
        structures = sdg.dangerous_structures(banking_graph)
        skews = {s.transactions for s in structures if s.kind == sdg.WRITE_SKEW}
        assert ("Withdraw_ch", "Withdraw_sav") in skews

    def test_write_skew_flagged_at_snapshot(self, banking_graph):
        for structure in sdg.dangerous_structures(banking_graph):
            if structure.kind == sdg.WRITE_SKEW:
                assert structure.level == SNAPSHOT

    def test_lost_update_on_read_modify_write_self_pair(self):
        graph = sdg.build_graph(employees.make_application())
        structures = sdg.dangerous_structures(graph)
        lost = [s for s in structures if s.kind == sdg.LOST_UPDATE]
        assert any(s.transactions == ("Hours",) for s in lost)

    def test_no_write_skew_without_cross_reads(self):
        graph = sdg.build_graph(employees.make_application())
        assert not [
            s for s in sdg.dangerous_structures(graph) if s.kind == sdg.WRITE_SKEW
        ]

    def test_deduplicated_per_pair(self, banking_graph):
        structures = sdg.dangerous_structures(banking_graph)
        keys = [(s.kind, s.transactions) for s in structures]
        assert len(keys) == len(set(keys))


class TestStaticallySafe:
    def test_serializable_always_safe(self, banking_graph):
        for name in banking_graph.nodes:
            assert sdg.statically_safe(banking_graph, name, SERIALIZABLE)

    def test_conventional_repeatable_read_safe(self, banking_graph):
        for name in banking_graph.nodes:
            assert sdg.statically_safe(banking_graph, name, REPEATABLE_READ)

    def test_written_asserts_not_safe_below_rr(self, banking_graph):
        assert not sdg.statically_safe(banking_graph, "Withdraw_sav", READ_COMMITTED)
        assert not sdg.statically_safe(banking_graph, "Withdraw_sav", READ_UNCOMMITTED)

    def test_empty_footprint_safe_everywhere(self):
        graph = sdg.build_graph(customers.make_application())
        assert sdg.safe_levels(graph, "Mailing_List_c", EXTENDED_LADDER) == list(
            EXTENDED_LADDER
        )

    def test_unknown_level_raises(self, banking_graph):
        with pytest.raises(AnalysisError):
            sdg.statically_safe(banking_graph, "Withdraw_sav", "CHAOS")

    def test_safety_is_sound_against_the_chooser(self):
        """SDG-safe at L implies the prover-backed chooser picks <= L."""
        from repro.core.conditions import LEVEL_ORDER

        for name in ("banking", "customers", "employees"):
            app = registry()[name]()
            graph = sdg.build_graph(app)
            checker = InterferenceChecker(
                app.spec, budget=200, cache=VerdictCache(enabled=False)
            )
            levels = analyze_application(app, checker).levels()
            for txn in graph.nodes:
                safe = sdg.safe_levels(graph, txn, ANSI_LADDER)
                if safe:
                    assert LEVEL_ORDER[levels[txn]] <= LEVEL_ORDER[safe[0]], (
                        name, txn, levels[txn], safe,
                    )


class TestPrunePlan:
    def _plans(self, app, level):
        return [
            spec
            for txn in app.transactions
            for spec in plan_level(app, txn, level)
        ]

    def test_prunes_only_disjoint_specs(self):
        app = banking.make_application()
        specs = self._plans(app, READ_UNCOMMITTED)
        pruned = sdg.prune_plan(specs)
        assert pruned > 0
        for spec in specs:
            disjoint = not overlaps(
                spec.assertion.formula.resources(), sdg.spec_write_resources(spec)
            )
            if spec.excused == sdg.SDG_EXCUSE:
                assert disjoint
            elif spec.excused is None:
                assert not disjoint

    def test_idempotent(self):
        app = banking.make_application()
        specs = self._plans(app, READ_COMMITTED)
        first = sdg.prune_plan(specs)
        assert first > 0
        assert sdg.prune_plan(specs) == 0

    def test_preserves_existing_excuses(self):
        from repro.apps import orders

        app = orders.make_application()
        specs = self._plans(app, REPEATABLE_READ)
        before = {
            id(spec): spec.excused for spec in specs if spec.excused is not None
        }
        sdg.prune_plan(specs)
        for spec in specs:
            if id(spec) in before:
                assert spec.excused == before[id(spec)]

    def test_levels_identical_with_and_without_pruning(self):
        """The acceptance criterion: byte-identical assignments, >0 pruned."""
        for name in ("banking", "customers", "employees"):
            app = registry()[name]()
            on = InterferenceChecker(
                app.spec, budget=200, cache=VerdictCache(enabled=False), use_sdg=True
            )
            off = InterferenceChecker(
                app.spec, budget=200, cache=VerdictCache(enabled=False), use_sdg=False
            )
            assert (
                analyze_application(app, on).levels()
                == analyze_application(app, off).levels()
            )
            assert on.stats["sdg_pruned"] > 0
            assert off.stats["sdg_pruned"] == 0
            # the pruned obligations are exactly the checker's disjoint tier
            assert on.stats["sdg_pruned"] == off.stats["disjoint"]
