"""The LP-free cube fast path: soundness, agreement with linprog, lazy scipy.

The property test draws random conjunctions of linear integer constraints
and checks that the pure-Python fast path and the LP fallback never
contradict each other: both are sound, so whenever both are decisive they
must return the same verdict, and every SAT answer must carry a verified
assignment.
"""

import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import prover
from repro.core.prover import (
    Verdict,
    _IntConstraint,
    _check_int_assignment,
    _fast_int_solve,
    _solve_int_constraints,
)

VARS = ("a", "b", "c")


@st.composite
def constraint_systems(draw):
    """A small conjunction of integer constraints over at most three vars."""
    n_constraints = draw(st.integers(min_value=1, max_value=5))
    constraints = []
    for _ in range(n_constraints):
        n_vars = draw(st.integers(min_value=0, max_value=len(VARS)))
        chosen = draw(
            st.lists(
                st.sampled_from(VARS), min_size=n_vars, max_size=n_vars, unique=True
            )
        )
        coeffs = {
            var: draw(st.integers(min_value=-4, max_value=4).filter(bool))
            for var in chosen
        }
        rel = draw(st.sampled_from(("<=", "==")))
        bound = draw(st.integers(min_value=-12, max_value=12))
        constraints.append(_IntConstraint(coeffs=coeffs, rel=rel, bound=bound))
    return constraints


def _lp_verdict(constraints, variables):
    """The verdict of the full solver with the fast path disabled."""
    saved = prover.USE_FAST_PATH
    prover.USE_FAST_PATH = False
    try:
        return _solve_int_constraints(constraints, variables)
    finally:
        prover.USE_FAST_PATH = saved


class TestFastPathAgreesWithLP:
    @settings(max_examples=200, deadline=None)
    @given(constraint_systems())
    def test_decisive_verdicts_agree(self, constraints):
        variables = {var: i for i, var in enumerate(VARS)}
        var_list = sorted(variables, key=variables.get)

        fast_verdict, fast_assignment = _fast_int_solve(constraints, var_list)
        lp_verdict, lp_assignment = _lp_verdict(constraints, variables)

        if fast_verdict == Verdict.SAT:
            assert _check_int_assignment(constraints, fast_assignment)
            assert lp_verdict != Verdict.UNSAT
        if lp_verdict == Verdict.SAT:
            assert _check_int_assignment(constraints, lp_assignment)
            assert fast_verdict != Verdict.UNSAT
        if fast_verdict == Verdict.UNSAT:
            assert lp_verdict != Verdict.SAT
        if lp_verdict == Verdict.UNSAT:
            assert fast_verdict != Verdict.SAT

    @settings(max_examples=100, deadline=None)
    @given(constraint_systems())
    def test_full_solver_matches_lp_only(self, constraints):
        """The combined solver (fast path + fallback) agrees with LP-only."""
        variables = {var: i for i, var in enumerate(VARS)}
        combined, _ = _solve_int_constraints(constraints, variables)
        lp_only, _ = _lp_verdict(constraints, variables)
        if Verdict.UNKNOWN not in (combined, lp_only):
            assert combined == lp_only


class TestKnownCubes:
    def test_trivial_sat(self):
        cs = [_IntConstraint({"a": 1}, "<=", 5)]
        verdict, assignment = _fast_int_solve(cs, ["a"])
        assert verdict == Verdict.SAT
        assert _check_int_assignment(cs, assignment)

    def test_contradictory_bounds_unsat(self):
        cs = [
            _IntConstraint({"a": 1}, "<=", 3),
            _IntConstraint({"a": -1}, "<=", -5),  # a >= 5
        ]
        assert _fast_int_solve(cs, ["a"])[0] == Verdict.UNSAT

    def test_integer_tightening_refutes_rational_cube(self):
        # 2a <= 1 and 2a >= 1 has the rational solution a = 1/2 but no
        # integer one; floor/ceil tightening must refute it LP-free
        cs = [
            _IntConstraint({"a": 2}, "<=", 1),
            _IntConstraint({"a": -2}, "<=", -1),
        ]
        assert _fast_int_solve(cs, ["a"])[0] == Verdict.UNSAT

    def test_equality_chain_sat(self):
        cs = [
            _IntConstraint({"a": 1, "b": -1}, "==", 0),
            _IntConstraint({"b": 1}, "==", 7),
        ]
        verdict, assignment = _fast_int_solve(cs, ["a", "b"])
        assert verdict == Verdict.SAT
        assert assignment["a"] == 7 and assignment["b"] == 7

    def test_counters_move(self):
        before = dict(prover._memo_stats)
        _solve_int_constraints(
            [_IntConstraint({"z": 1}, "<=", 0)], {"z": 0}
        )
        after = prover._memo_stats
        moved = (
            after["fastpath_sat"] - before["fastpath_sat"]
            + after["fastpath_unsat"] - before["fastpath_unsat"]
            + after["fastpath_open"] - before["fastpath_open"]
        )
        assert moved == 1


class TestLazyScipy:
    def test_missing_lp_degrades_to_unknown(self, monkeypatch):
        """Hard cubes degrade to UNKNOWN (never crash) without scipy."""
        monkeypatch.setattr(prover, "_load_lp", lambda: None)
        monkeypatch.setattr(prover, "USE_FAST_PATH", False)
        before = prover._memo_stats["lp_unavailable"]
        verdict, assignment = _solve_int_constraints(
            [_IntConstraint({"a": 1}, "<=", 5)], {"a": 0}
        )
        assert verdict == Verdict.UNKNOWN
        assert assignment is None
        assert prover._memo_stats["lp_unavailable"] == before + 1

    def test_importing_prover_does_not_import_scipy(self):
        """scipy must stay unimported until the LP fallback is consulted."""
        code = textwrap.dedent(
            """
            import sys
            import repro.core.prover
            assert "scipy" not in sys.modules, "prover imported scipy eagerly"
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert result.returncode == 0, result.stderr
