"""Unit tests for the Application container."""

import pytest

from repro.core.application import Application
from repro.core.formula import TRUE, ne
from repro.core.program import Insert, Read, TransactionType, Write
from repro.core.terms import IntConst, Item, Local, Param
from repro.errors import AnalysisError


def conventional():
    return TransactionType(
        name="Conv",
        body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v"))),
    )


def relational():
    return TransactionType(name="Rel", body=(Insert("T", (("k", IntConst(1)),)),))


class TestApplication:
    def test_lookup(self):
        app = Application("a", (conventional(),))
        assert app.transaction("Conv").name == "Conv"
        with pytest.raises(AnalysisError):
            app.transaction("Nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(AnalysisError):
            Application("a", (conventional(), conventional()))

    def test_duplicate_error_names_the_duplicates(self):
        with pytest.raises(AnalysisError, match=r"Conv") as exc:
            Application(
                "a", (conventional(), conventional(), relational(), relational())
            )
        message = str(exc.value)
        assert "Conv" in message and "Rel" in message
        assert "'a'" in message  # the application is identified too

    def test_relational_detection(self):
        assert not Application("a", (conventional(),)).is_relational
        assert Application("b", (relational(),)).is_relational
        assert Application("c", (conventional(), relational())).is_relational

    def test_transaction_names(self):
        app = Application("a", (conventional(), relational()))
        assert app.transaction_names() == ["Conv", "Rel"]

    def test_assumption_defaults_true(self):
        app = Application("a", (conventional(),))
        assert app.assumption("Conv", "Conv") == TRUE

    def test_assumption_lookup(self):
        distinct = ne(Param("i"), Param("i!2"))
        app = Application(
            "a", (conventional(),), assumptions={("Conv", "Conv"): distinct}
        )
        assert app.assumption("Conv", "Conv") == distinct
        assert app.assumption("Conv", "Other") == TRUE


class TestBundledApplications:
    """Every bundled application is well-formed and self-consistent."""

    def _apps(self):
        from repro.apps import banking, customers, employees, orders, tpcc

        return [
            banking.make_application(),
            customers.make_application(),
            employees.make_application(),
            orders.make_application("no_gap"),
            orders.make_application("one_order"),
            tpcc.make_application(),
        ]

    def test_every_app_has_domains(self):
        for app in self._apps():
            assert app.spec is not None, app.name

    def test_every_transaction_body_walks(self):
        for app in self._apps():
            for txn in app.transactions:
                assert txn.statements(), f"{app.name}/{txn.name} has an empty body"

    def test_domain_specs_produce_states(self):
        import random

        for app in self._apps():
            states = list(app.spec.iter_states(500, random.Random(0)))
            assert states, f"{app.name}: no consistent states in the domain"

    def test_every_transaction_runs_on_a_domain_state(self):
        """Each transaction executes concretely on some consistent state."""
        import random

        from repro.core.domains import iter_assignments
        from repro.errors import EvaluationError

        for app in self._apps():
            states = list(app.spec.iter_states(300, random.Random(1)))
            for txn in app.transactions:
                executed = False
                for state in states[:30]:
                    for env in iter_assignments(list(txn.params), app.spec, 16, random.Random(2)):
                        args = {p.name: v for p, v in env.items()}
                        try:
                            txn.run(state.copy(), args)
                            executed = True
                            break
                        except EvaluationError:
                            continue
                    if executed:
                        break
                assert executed, f"{app.name}/{txn.name} never executed"
