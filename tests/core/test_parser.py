"""Unit tests for the assertion text syntax."""

import pytest

from repro.core import formula as fm
from repro.core import terms as tm
from repro.core.parser import ParseError, parse_formula, parse_term
from repro.core.state import DbState


class TestTerms:
    def test_integer_literal(self):
        assert parse_term("42") == tm.IntConst(42)

    def test_string_literal(self):
        assert parse_term("'abc'") == tm.StrConst("abc")

    def test_boolean_literals(self):
        assert parse_term("true") == tm.BoolConst(True)
        assert parse_term("false") == tm.BoolConst(False)

    def test_local(self):
        assert parse_term("Sav") == tm.Local("Sav")

    def test_param(self):
        assert parse_term(":w") == tm.Param("w")

    def test_logical_var(self):
        assert parse_term("%SAV0") == tm.LogicalVar("SAV0")

    def test_item(self):
        assert parse_term("#maximum_date") == tm.Item("maximum_date")

    def test_field_with_attr(self):
        assert parse_term("acct_sav[:i].bal") == tm.Field("acct_sav", tm.Param("i"), "bal")

    def test_field_without_attr(self):
        assert parse_term("a[0]") == tm.Field("a", tm.IntConst(0), None)

    def test_field_with_compound_index(self):
        parsed = parse_term("a[:i + 1].v")
        assert parsed == tm.Field("a", tm.Add(tm.Param("i"), tm.IntConst(1)), "v")

    def test_arithmetic_precedence(self):
        parsed = parse_term("1 + 2 * 3")
        assert parsed.evaluate(DbState(), {}) == 7

    def test_parentheses(self):
        parsed = parse_term("(1 + 2) * 3")
        assert parsed.evaluate(DbState(), {}) == 9

    def test_unary_minus(self):
        assert parse_term("-5").evaluate(DbState(), {}) == -5

    def test_subtraction_left_associative(self):
        assert parse_term("10 - 3 - 2").evaluate(DbState(), {}) == 5

    def test_sorts_mapping(self):
        assert parse_term("name", sorts={"name": "str"}) == tm.Local("name", "str")
        assert parse_term(":c", sorts={"c": "str"}) == tm.Param("c", "str")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("1 + 2 )")

    def test_keyword_as_name_rejected(self):
        with pytest.raises(ParseError):
            parse_term("forall + 1")


class TestFormulas:
    def test_comparison(self):
        assert parse_formula("x >= 0") == fm.ge(tm.Local("x"), 0)

    def test_all_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            parsed = parse_formula(f"x {op} 1")
            assert isinstance(parsed, fm.Cmp) and parsed.op == op

    def test_connective_precedence(self):
        # not > and > or > =>
        parsed = parse_formula("x == 1 or y == 2 and z == 3")
        assert isinstance(parsed, fm.Or)
        assert isinstance(parsed.operands[1], fm.And)

    def test_implication_right_associative(self):
        parsed = parse_formula("x == 1 => y == 2 => z == 3")
        assert isinstance(parsed, fm.Implies)
        assert isinstance(parsed.conclusion, fm.Implies)

    def test_negation(self):
        parsed = parse_formula("not x == 1")
        assert isinstance(parsed, fm.Not)

    def test_true_false(self):
        assert parse_formula("true") == fm.TRUE
        assert parse_formula("false") == fm.FALSE

    def test_parenthesised_formula(self):
        parsed = parse_formula("(x == 1 or y == 2) and z == 3")
        assert isinstance(parsed, fm.And)

    def test_parenthesised_term_on_lhs(self):
        parsed = parse_formula("(x + 1) * 2 == 4")
        assert isinstance(parsed, fm.Cmp)

    def test_figure1_invariant(self):
        parsed = parse_formula("acct_sav[:i].bal + acct_ch[:i].bal >= 0")
        state = DbState(arrays={"acct_sav": {0: {"bal": 2}}, "acct_ch": {0: {"bal": -1}}})
        assert parsed.evaluate(state, {tm.Param("i"): 0})

    def test_missing_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("x + 1")

    def test_bool_local_as_atom(self):
        parsed = parse_formula("flag", sorts={"flag": "bool"})
        assert isinstance(parsed, fm.BoolAtom)


class TestQuantifiers:
    def test_forall_rows(self):
        parsed = parse_formula("forall r in T: r.k >= 0")
        assert parsed == fm.ForAllRows("T", "r", fm.ge(fm.RowAttr("r", "k"), 0))

    def test_exists_row_with_where(self):
        parsed = parse_formula("exists r in T where r.k == 1: r.done == true")
        assert isinstance(parsed, fm.ExistsRow)
        assert parsed.where == fm.eq(fm.RowAttr("r", "k"), 1)

    def test_nested_row_quantifiers(self):
        parsed = parse_formula("forall a in T: exists b in U: a.k == b.k")
        state = DbState(tables={"T": [{"k": 1}], "U": [{"k": 1}, {"k": 2}]})
        assert parsed.evaluate(state, {})

    def test_unbound_row_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("r.k == 1")

    def test_row_variable_scope_ends(self):
        with pytest.raises(ParseError):
            parse_formula("(forall r in T: r.k == 1) and r.k == 2")

    def test_forall_int(self):
        parsed = parse_formula("forall int $d in 1..#max: exists r in T: r.due == $d")
        assert isinstance(parsed, fm.ForAllInts)
        state = DbState(items={"max": 2}, tables={"T": [{"due": 1}, {"due": 2}]})
        assert parsed.evaluate(state, {})

    def test_unbound_dollar_var_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("$d == 1")

    def test_count_aggregate(self):
        parsed = parse_formula(
            "count(o in ORDERS: o.cust == :c) == n", sorts={"c": "str", "cust": "str"}
        )
        state = DbState(tables={"ORDERS": [{"cust": "a"}, {"cust": "b"}]})
        env = {tm.Param("c", "str"): "a", tm.Local("n"): 1}
        assert parsed.evaluate(state, env)

    def test_count_without_where(self):
        parsed = parse_term("count(o in ORDERS)")
        state = DbState(tables={"ORDERS": [{"k": 1}, {"k": 2}]})
        assert parsed.evaluate(state, {}) == 2

    def test_exists_int_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("exists int $d in 1..3: $d == 2")


class TestRoundTrips:
    """Parsed formulas agree with their AST-constructed equivalents."""

    def test_no_gap_equivalent(self):
        from repro.apps.orders import NO_GAP

        parsed = parse_formula(
            "forall g1 in ORDERS: forall int $d in 1..g1.deliv_date:"
            " exists g2 in ORDERS: g2.deliv_date == $d"
        )
        # structural equality modulo the ForAllInts body shape
        good = DbState(
            items={},
            tables={"ORDERS": [{"deliv_date": 1}, {"deliv_date": 2}]},
        )
        gapped = DbState(
            items={},
            tables={"ORDERS": [{"deliv_date": 1}, {"deliv_date": 3}]},
        )
        for state in (good, gapped):
            assert parsed.evaluate(state, {}) == NO_GAP.evaluate(state, {})

    def test_parsed_formula_through_prover(self):
        from repro.core.prover import Verdict, is_valid

        parsed = parse_formula("x >= 5 => x >= 3")
        assert is_valid(parsed).verdict == Verdict.VALID


class TestUnparse:
    def test_term_round_trips(self):
        from repro.core.parser import unparse_term

        for text in (
            "42", "'abc'", "true", "Sav", ":w", "%SAV0", "#maximum_date",
            "acct_sav[:i].bal", "a[0]",
        ):
            term = parse_term(text)
            assert parse_term(unparse_term(term)) == term

    def test_formula_round_trips(self):
        from repro.core.parser import unparse_formula

        for text in (
            "x >= 0",
            "x == 1 and y == 2",
            "x == 1 or y == 2 and z == 3",
            "not x == 1",
            "x == 1 => y == 2",
            "forall r in T: r.k >= 0",
            "exists r in T where r.k == 1: r.v == 2",
            "forall int $d in 1..#max: exists r in T: r.due == $d",
            "count(o in ORDERS: o.k == 1) == n",
        ):
            formula = parse_formula(text)
            assert parse_formula(unparse_formula(formula)) == formula

    def test_arithmetic_round_trips(self):
        from repro.core.parser import unparse_term

        term = parse_term("(a + 2) * (b - -3)")
        assert parse_term(unparse_term(term)) == term

    def test_abstract_pred_not_unparsable(self):
        from repro.core.formula import AbstractPred
        from repro.core.parser import unparse_formula
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            unparse_formula(AbstractPred("opaque"))

    def test_paper_annotations_round_trip(self):
        from repro.core.parser import unparse_formula
        from repro.apps.orders import I_MAX_LE, NO_GAP

        for formula in (NO_GAP, I_MAX_LE):
            assert parse_formula(unparse_formula(formula)) == formula
