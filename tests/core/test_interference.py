"""Unit tests for the three-tier interference checker."""

import pytest

from repro.core.domains import ArrayDomain, DomainSpec, ItemDomain, TableDomain
from repro.core.formula import (
    CountWhere,
    RowAttr,
    TRUE,
    conj,
    eq,
    ge,
    le,
    ne,
)
from repro.core.interference import (
    ASSUMED,
    BOUNDED,
    CONSISTENCY,
    CriticalAssertion,
    InterferenceChecker,
    PROVED,
    READ_POST,
    RESULT,
    Trace,
    _activation_positions,
    static_write_targets,
    trace,
    undo_states,
)
from repro.core.program import If, Insert, Read, TransactionType, Update, Write
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local, Param


def make_reader(post=None):
    read = Read(Local("v"), Item("x"), post=post)
    return TransactionType(name="Reader", body=(read,)), read


def make_bumper():
    return TransactionType(
        name="Bumper",
        body=(Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1)),
        consistency=ge(Item("x"), 0),
    )


def make_setter(value: int):
    return TransactionType(
        name="Setter",
        body=(Write(Item("x"), IntConst(value)),),
    )


def spec_x():
    return DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))


class TestTracing:
    def test_trace_records_events_and_envs(self):
        txn = make_bumper()
        state = DbState(items={"x": 1})
        result = trace(txn, state, {})
        assert result.length == 2
        assert result.events[0].is_write is False
        assert result.events[1].is_write is True
        assert result.states[0].read_item("x") == 1
        assert result.states[2].read_item("x") == 2
        assert result.envs[2][Local("b")] == 1

    def test_undo_states_restore_initial(self):
        txn = make_bumper()
        state = DbState(items={"x": 1})
        result = trace(txn, state, {})
        rolled = undo_states(result.events)
        assert rolled[-1].read_item("x") == 1

    def test_undo_states_table_operations(self):
        txn = TransactionType(
            name="Ins", body=(Insert("T", (("k", IntConst(7)),)),)
        )
        state = DbState(tables={"T": []})
        result = trace(txn, state, {})
        rolled = undo_states(result.events)
        assert rolled[-1].table_size("T") == 0


class TestActivationPositions:
    def _trace(self):
        txn = make_bumper()
        return txn, trace(txn, DbState(items={"x": 0}), {})

    def test_consistency_active_everywhere(self):
        _txn, tr = self._trace()
        ca = CriticalAssertion("I", TRUE, CONSISTENCY)
        assert _activation_positions(ca, tr) == [0, 1, 2]

    def test_result_active_at_end(self):
        _txn, tr = self._trace()
        ca = CriticalAssertion("Q", TRUE, RESULT)
        assert _activation_positions(ca, tr) == [2]

    def test_read_post_active_after_read(self):
        txn, tr = self._trace()
        read = txn.body[0]
        ca = CriticalAssertion("p", TRUE, READ_POST, read_stmt=read)
        assert _activation_positions(ca, tr) == [1, 2]


class TestDisjointTier:
    def test_disjoint_footprints_proved_safe(self):
        reader, read = make_reader(post=eq(Local("v"), Item("x")))
        other = TransactionType(name="Y", body=(Write(Item("y"), IntConst(1)),))
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        verdict = checker.check_statement(reader, ca, other, other.body[0])
        assert verdict.safe and verdict.method == "disjoint" and verdict.confidence == PROVED


class TestSymbolicTier:
    def test_equality_post_interfered_by_write(self):
        reader, read = make_reader(post=eq(Local("v"), Item("x")))
        setter = make_setter(2)
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        verdict = checker.check_unit(reader, ca, setter)
        assert verdict.interferes
        assert verdict.method == "symbolic"

    def test_monotone_post_survives_increment(self):
        reader, read = make_reader(post=le(Local("v"), Item("x")))
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        verdict = checker.check_unit(reader, ca, make_bumper())
        assert verdict.safe and verdict.method == "symbolic"

    def test_rollback_havoc_breaks_monotone_post(self):
        # the undo write restores an arbitrary earlier value, so even the
        # monotone v <= x is interfered with by a rollback
        reader, read = make_reader(post=le(Local("v"), Item("x")))
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        verdict = checker.check_rollback(reader, ca, make_bumper())
        assert verdict.interferes

    def test_fcw_excuse_passes_same_item_writers(self):
        writer = TransactionType(
            name="W",
            body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") - 1)),
            result=eq(Item("x"), Local("v") - 1),
        )
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("Q", writer.result, RESULT)
        partner = writer.rename_params("!2")
        without = checker.check_unit(writer, ca, partner, fcw_excuse=False)
        with_excuse = checker.check_unit(writer, ca, partner, fcw_excuse=True)
        assert without.interferes
        assert with_excuse.safe


class TestBmcTier:
    def test_no_spec_assumes_interference(self):
        from repro.core.conditions import canonical_read_post
        from repro.core.program import SelectCount

        checker = InterferenceChecker(spec=None)
        count_read = SelectCount("T", Local("n"), where=TRUE)
        reader = TransactionType(name="Counter", body=(count_read,))
        insert = Insert("T", (("k", IntConst(1)),))
        other = TransactionType(name="I", body=(insert,))
        ca = CriticalAssertion("p", canonical_read_post(count_read), READ_POST, read_stmt=count_read)
        verdict = checker.check_statement(reader, ca, other, insert)
        assert verdict.interferes and verdict.confidence == ASSUMED

    def test_phantom_insert_flips_count_post(self):
        count_read = __import__("repro.core.program", fromlist=["SelectCount"]).SelectCount(
            "T", Local("n"), where=TRUE
        )
        reader = TransactionType(
            name="Counter",
            body=(count_read,),
        )
        insert = Insert("T", (("k", IntConst(1)),))
        other = TransactionType(name="I", body=(insert,))
        spec = DomainSpec(tables=(TableDomain("T", (("k", (1,)),), max_rows=1),))
        checker = InterferenceChecker(spec)
        from repro.core.conditions import canonical_read_post

        ca = CriticalAssertion("p", canonical_read_post(count_read), READ_POST, read_stmt=count_read)
        verdict = checker.check_statement(reader, ca, other, insert, dirty_reads=False)
        assert verdict.interferes
        assert verdict.method.startswith("bmc")

    def test_assumption_excludes_scenarios(self):
        # writer to a[i]; reader's post about a[i]; assume distinct indices
        i = Param("i")
        read = Read(Local("v"), Field("a", i, "x"))
        from repro.core.conditions import canonical_read_post

        reader = TransactionType(name="R", params=(i,), body=(read,))
        writer = TransactionType(
            name="W",
            params=(i,),
            body=(Write(Field("a", i, "x"), IntConst(9)),),
        ).rename_params("!2")
        spec = DomainSpec(
            arrays=(ArrayDomain("a", (0, 1), (("x", (0, 1)),)),),
            var_domains={"i": (0, 1)},
        )
        checker = InterferenceChecker(spec)
        ca = CriticalAssertion("p", canonical_read_post(read), READ_POST, read_stmt=read)
        same_ok = checker.check_statement(reader, ca, writer, writer.body[0])
        assert same_ok.interferes  # same index allowed -> flips
        distinct = checker.check_statement(
            reader, ca, writer, writer.body[0], assumption=ne(i, Param("i!2"))
        )
        assert distinct.safe
        # the symbolic tier can prove this outright; bounded is also fine
        assert distinct.confidence in (PROVED, BOUNDED)

    def test_rollback_after_dirty_read(self):
        """Ordering B: target reads the source's uncommitted bump."""
        read = Read(Local("v"), Item("x"), post=le(Local("v"), Item("x")))
        reader = TransactionType(name="R", body=(read,))
        bumper = make_bumper()
        checker = InterferenceChecker(spec_x())
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        verdict = checker.check_rollback(reader, ca, bumper)
        assert verdict.interferes
        assert verdict.witness is not None

    def test_stats_track_tiers(self):
        checker = InterferenceChecker(spec_x())
        reader, read = make_reader(post=eq(Local("v"), Item("x")))
        other = TransactionType(name="Y", body=(Write(Item("y"), IntConst(1)),))
        ca = CriticalAssertion("p", read.post, READ_POST, read_stmt=read)
        checker.check_statement(reader, ca, other, other.body[0])
        assert checker.stats["disjoint"] == 1


class TestStaticWriteTargets:
    def test_collects_scalar_and_field_targets(self):
        i = Param("i")
        txn = TransactionType(
            name="T",
            params=(i,),
            body=(
                Write(Item("x"), IntConst(1)),
                If(TRUE, then=(Write(Field("a", i, "v"), IntConst(2)),)),
            ),
        )
        targets = static_write_targets(txn)
        assert Item("x") in targets
        assert Field("a", i, "v") in targets

    def test_local_indexed_targets_dropped(self):
        txn = TransactionType(
            name="T",
            body=(
                Read(Local("k"), Item("x")),
                Write(Field("a", Local("k"), "v"), IntConst(1)),
            ),
        )
        assert static_write_targets(txn) == []
