"""Unit tests for whole-transaction symbolic effects."""

import pytest

from repro.core.effects import (
    apply_single_write,
    apply_store,
    symbolic_paths,
    write_sets_intersection_condition,
)
from repro.core.formula import FALSE, TRUE, conj, eq, ge, implies, lt, ne
from repro.core.program import If, Insert, LocalAssign, Read, TransactionType, While, Write
from repro.core.prover import Verdict, is_valid
from repro.core.terms import Field, IntConst, Item, Local, LogicalVar, Param


def make_increment():
    return TransactionType(
        name="Inc",
        body=(
            Read(Local("v"), Item("x")),
            Write(Item("x"), Local("v") + 1),
        ),
        consistency=ge(Item("x"), 0),
    )


def make_withdraw():
    i, w = Param("i"), Param("w")
    sav = Field("acct", i, "bal")
    return TransactionType(
        name="W",
        params=(i, w),
        body=(
            Read(Local("S"), sav),
            If(ge(Local("S"), w), then=(Write(sav, Local("S") - w),)),
        ),
        param_pre=ge(w, 0),
    )


class TestSymbolicPaths:
    def test_straight_line_store(self):
        paths = symbolic_paths(make_increment())
        assert len(paths) == 1
        store = paths[0].store
        assert store[Item("x")] == Item("x") + 1

    def test_reads_resolve_against_prior_writes(self):
        txn = TransactionType(
            name="T",
            body=(
                Read(Local("a"), Item("x")),
                Write(Item("x"), Local("a") + 1),
                Read(Local("b"), Item("x")),
                Write(Item("y"), Local("b")),
            ),
        )
        paths = symbolic_paths(txn)
        store = paths[0].store
        # y gets the incremented value, not the original
        assert store[Item("y")] == Item("x") + 1

    def test_if_forks_paths_with_conditions(self):
        paths = symbolic_paths(make_withdraw())
        assert len(paths) == 2
        stores = [path.store for path in paths]
        assert any(stores[k] == {} for k in range(2))
        written = next(s for s in stores if s)
        target = Field("acct", Param("i"), "bal")
        assert written[target] == Field("acct", Param("i"), "bal") - Param("w")

    def test_relational_statement_unsupported(self):
        txn = TransactionType(name="R", body=(Insert("T", (("k", IntConst(1)),)),))
        assert symbolic_paths(txn) is None

    def test_ambiguous_array_aliasing_unsupported(self):
        i, j = Param("i"), Param("j")
        txn = TransactionType(
            name="A",
            params=(i, j),
            body=(
                Write(Field("a", i, "v"), IntConst(1)),
                Write(Field("a", j, "v"), IntConst(2)),
            ),
        )
        assert symbolic_paths(txn) is None

    def test_identical_targets_last_write_wins(self):
        txn = TransactionType(
            name="WW",
            body=(
                Write(Item("x"), IntConst(1)),
                Write(Item("x"), IntConst(2)),
            ),
        )
        paths = symbolic_paths(txn)
        assert paths[0].store[Item("x")] == IntConst(2)

    def test_path_condition_includes_consistency_and_pre(self):
        paths = symbolic_paths(make_withdraw())
        for path in paths:
            assert is_valid(implies(path.condition, ge(Param("w"), 0))).verdict == Verdict.VALID

    def test_loop_unrolling_bounded(self):
        txn = TransactionType(
            name="L",
            body=(
                LocalAssign(Local("k"), IntConst(0)),
                While(lt(Local("k"), 1), body=(LocalAssign(Local("k"), Local("k") + 1),)),
            ),
        )
        paths = symbolic_paths(txn, unroll=2)
        # contradictory unrollings are pruned
        assert all(path.store == {} for path in paths)
        assert len(paths) >= 1


class TestApplyStore:
    def test_scalar_substitution(self):
        assertion = ge(Item("x"), 0)
        after = apply_store(assertion, {Item("x"): Item("x") + 1})
        goal = implies(conj(assertion), after)
        assert is_valid(goal).verdict == Verdict.VALID

    def test_untouched_assertion_unchanged(self):
        assertion = ge(Item("y"), 0)
        after = apply_store(assertion, {Item("x"): IntConst(0)})
        assert is_valid(implies(assertion, after)).verdict == Verdict.VALID

    def test_alias_case_split(self):
        i1, i2 = Param("i1"), Param("i2")
        assertion = ge(Field("a", i1, "v"), 0)
        # write a[i2] := -5: assertion survives only when i1 != i2
        after = apply_store(assertion, {Field("a", i2, "v"): IntConst(-5)})
        survives_if_distinct = implies(conj(assertion, ne(i1, i2)), after)
        assert is_valid(survives_if_distinct).verdict == Verdict.VALID
        breaks_if_equal = implies(conj(assertion, eq(i1, i2)), after)
        assert is_valid(breaks_if_equal).verdict == Verdict.INVALID

    def test_single_write_helper(self):
        assertion = eq(Item("x"), 3)
        after = apply_single_write(assertion, Item("x"), IntConst(4))
        assert is_valid(implies(TRUE, implies(after, eq(IntConst(4), 3)))).verdict in (
            Verdict.VALID,
            Verdict.INVALID,
        )
        # substituted form is x-free
        assert Item("x") not in set(after.atoms())


class TestWriteSetIntersection:
    def test_identical_scalars_always_intersect(self):
        condition = write_sets_intersection_condition(
            [(Item("x"), None)], [(Item("x"), None)]
        )
        assert condition == TRUE

    def test_distinct_scalars_never_intersect(self):
        condition = write_sets_intersection_condition(
            [(Item("x"), None)], [(Item("y"), None)]
        )
        assert condition == FALSE

    def test_array_writes_intersect_on_index_equality(self):
        i1, i2 = Param("i1"), Param("i2")
        condition = write_sets_intersection_condition(
            [(Field("a", i1, "v"), None)], [(Field("a", i2, "v"), None)]
        )
        assert is_valid(implies(eq(i1, i2), condition)).verdict == Verdict.VALID
        assert is_valid(implies(ne(i1, i2), condition)).verdict == Verdict.INVALID

    def test_different_arrays_never_intersect(self):
        i1, i2 = Param("i1"), Param("i2")
        condition = write_sets_intersection_condition(
            [(Field("a", i1, "v"), None)], [(Field("b", i2, "v"), None)]
        )
        assert condition == FALSE
