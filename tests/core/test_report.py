"""Unit tests for report rendering."""

from repro.core.application import Application
from repro.core.chooser import analyze_application
from repro.core.conditions import READ_COMMITTED, READ_UNCOMMITTED, check_transaction_at
from repro.core.domains import DomainSpec, ItemDomain
from repro.core.formula import TRUE, ge, le
from repro.core.interference import InterferenceChecker
from repro.core.program import Read, TransactionType, Write
from repro.core.report import failure_details, format_table, level_table, obligation_stats
from repro.core.terms import Item, Local


def make_app():
    read = Read(Local("v"), Item("x"), post=le(Local("v"), Item("x")))
    reader = TransactionType(name="Reader", body=(read,), result=TRUE)
    bumper = TransactionType(
        name="Bumper",
        body=(Read(Local("b"), Item("x")), Write(Item("x"), Local("b") + 1)),
        consistency=ge(Item("x"), 0),
        result=ge(Item("x"), 0),
    )
    return Application(
        "rw", (reader, bumper), spec=DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
    )


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(("a", "bbbb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_contains_all_cells(self):
        text = format_table(("h1", "h2"), [("x", "y")])
        assert "h1" in text and "x" in text and "y" in text


class TestLevelTable:
    def test_renders_choices(self):
        app = make_app()
        report = analyze_application(app, InterferenceChecker(app.spec))
        text = level_table(report)
        assert "Reader" in text and "Bumper" in text
        assert "lowest correct level" in text

    def test_shows_failure_evidence(self):
        app = make_app()
        report = analyze_application(app, InterferenceChecker(app.spec))
        text = level_table(report)
        # the reader failed RU, so the evidence column mentions it
        assert "failing at READ UNCOMMITTED" in text


class TestFailureDetails:
    def test_lists_failing_obligations(self):
        app = make_app()
        checker = InterferenceChecker(app.spec)
        result = check_transaction_at(app, app.transaction("Reader"), READ_UNCOMMITTED, checker)
        text = failure_details(result)
        assert "FAILS" in text
        assert "rollback" in text

    def test_limit_respected(self):
        app = make_app()
        checker = InterferenceChecker(app.spec)
        result = check_transaction_at(app, app.transaction("Reader"), READ_UNCOMMITTED, checker)
        text = failure_details(result, limit=0)
        assert "more failing obligations" in text or "FAILS" in text


class TestObligationStats:
    def test_counts_methods_and_confidences(self):
        app = make_app()
        checker = InterferenceChecker(app.spec)
        results = [
            check_transaction_at(app, app.transaction("Reader"), READ_UNCOMMITTED, checker),
            check_transaction_at(app, app.transaction("Reader"), READ_COMMITTED, checker),
        ]
        stats = obligation_stats(results)
        assert stats["levels"] == 2
        assert stats["obligations"] > 0
        assert sum(stats["by_method"].values()) <= stats["obligations"]
