"""Unit tests for concrete database states."""

import pytest

from repro.core.state import DbState
from repro.errors import EvaluationError


@pytest.fixture
def state():
    return DbState(
        items={"x": 1},
        arrays={"a": {0: {"v": 10, "w": 11}, 1: {"v": 20, "w": 21}}},
        tables={"T": [{"k": 1}, {"k": 2}, {"k": 2}]},
    )


class TestItems:
    def test_read_write(self, state):
        state.write_item("y", 5)
        assert state.read_item("y") == 5

    def test_missing_item_raises(self, state):
        with pytest.raises(EvaluationError):
            state.read_item("nope")

    def test_has_item(self, state):
        assert state.has_item("x")
        assert not state.has_item("nope")


class TestArrays:
    def test_read_write_field(self, state):
        state.write_field("a", 0, "v", 99)
        assert state.read_field("a", 0, "v") == 99

    def test_missing_field_raises(self, state):
        with pytest.raises(EvaluationError):
            state.read_field("a", 7, "v")

    def test_write_creates_structure(self):
        empty = DbState()
        empty.write_field("b", 3, None, 1)
        assert empty.read_field("b", 3, None) == 1

    def test_array_indices(self, state):
        assert sorted(state.array_indices("a")) == [0, 1]
        assert list(state.array_indices("nope")) == []


class TestTables:
    def test_rows_iteration(self, state):
        assert len(list(state.rows("T"))) == 3
        assert list(state.rows("unknown")) == []

    def test_insert_row(self, state):
        state.insert_row("T", {"k": 9})
        assert state.table_size("T") == 4

    def test_delete_rows_returns_count(self, state):
        deleted = state.delete_rows("T", lambda r: r["k"] == 2)
        assert deleted == 2
        assert state.table_size("T") == 1

    def test_delete_from_unknown_table(self, state):
        assert state.delete_rows("unknown", lambda r: True) == 0

    def test_update_rows(self, state):
        updated = state.update_rows("T", lambda r: r["k"] == 1, lambda r: {"k": 100})
        assert updated == 1
        assert any(row["k"] == 100 for row in state.rows("T"))


class TestWholeState:
    def test_copy_is_deep(self, state):
        clone = state.copy()
        clone.write_item("x", 99)
        clone.write_field("a", 0, "v", 99)
        clone.insert_row("T", {"k": 5})
        assert state.read_item("x") == 1
        assert state.read_field("a", 0, "v") == 10
        assert state.table_size("T") == 3

    def test_same_as_reflexive(self, state):
        assert state.same_as(state.copy())

    def test_same_as_ignores_row_order(self, state):
        clone = state.copy()
        clone.tables["T"] = list(reversed(clone.tables["T"]))
        assert state.same_as(clone)

    def test_same_as_respects_multiplicity(self, state):
        clone = state.copy()
        clone.delete_rows("T", lambda r: r["k"] == 2)
        clone.insert_row("T", {"k": 2})  # now only one copy of k=2
        assert not state.same_as(clone)

    def test_different_items_not_same(self, state):
        clone = state.copy()
        clone.write_item("x", 2)
        assert not state.same_as(clone)

    def test_diff_reports_items(self, state):
        clone = state.copy()
        clone.write_item("x", 2)
        diff = state.diff(clone)
        assert any("item x" in line for line in diff)

    def test_diff_reports_fields(self, state):
        clone = state.copy()
        clone.write_field("a", 1, "w", 0)
        diff = state.diff(clone)
        assert any("a[1].w" in line for line in diff)

    def test_diff_reports_table_rows(self, state):
        clone = state.copy()
        clone.insert_row("T", {"k": 42})
        diff = state.diff(clone)
        assert any("table T" in line for line in diff)

    def test_diff_empty_for_equal_states(self, state):
        assert state.diff(state.copy()) == []

    def test_canonical_is_hashable(self, state):
        assert hash(state.canonical()) == hash(state.copy().canonical())


class TestFork:
    """fork() shares inner containers but stays isolated under DbState writes."""

    def test_fork_matches_original(self, state):
        assert state.same_as(state.fork())

    def test_write_item_isolated(self, state):
        fork = state.fork()
        fork.write_item("x", 99)
        assert state.read_item("x") == 1
        state.write_item("x", 7)
        assert fork.read_item("x") == 99

    def test_write_field_isolated(self, state):
        fork = state.fork()
        fork.write_field("a", 0, "v", 99)
        assert state.read_field("a", 0, "v") == 10
        state.write_field("a", 1, "w", 77)
        assert fork.read_field("a", 1, "w") == 21

    def test_insert_row_isolated(self, state):
        fork = state.fork()
        fork.insert_row("T", {"k": 5})
        assert state.table_size("T") == 3
        assert fork.table_size("T") == 4

    def test_delete_rows_isolated(self, state):
        fork = state.fork()
        fork.delete_rows("T", lambda r: r["k"] == 2)
        assert state.table_size("T") == 3
        assert fork.table_size("T") == 1

    def test_update_rows_isolated(self, state):
        fork = state.fork()
        fork.update_rows("T", lambda r: r["k"] == 1, lambda r: {"k": 100})
        assert all(row["k"] != 100 for row in state.rows("T"))
        assert any(row["k"] == 100 for row in fork.rows("T"))

    def test_untouched_containers_keep_identity(self, state):
        fork = state.fork()
        fork.write_item("x", 99)
        # only the items dict was copied up-front; inner structures of the
        # untouched arrays/tables are still the very same objects
        assert fork.arrays["a"] is state.arrays["a"]
        assert fork.tables["T"] is state.tables["T"]

    def test_write_replaces_instead_of_mutating(self, state):
        fork = state.fork()
        shared_rows = state.tables["T"]
        fork.insert_row("T", {"k": 9})
        assert state.tables["T"] is shared_rows
        assert fork.tables["T"] is not shared_rows

    def test_delete_without_matches_keeps_identity(self, state):
        fork = state.fork()
        shared_rows = state.tables["T"]
        assert fork.delete_rows("T", lambda r: r["k"] == 999) == 0
        assert fork.tables["T"] is shared_rows
