"""Cross-process safety of the persistent verdict store.

The fleet shares one cache directory between N worker shards; these tests
pin the two invariants that makes safe:

* concurrent compaction never loses a verdict and never crashes — the
  advisory claim file serialises compactors, a loser skips its turn;
* truncated segments (a worker killed mid-write, a full disk) degrade to
  skipped lines, never to exceptions or lost sibling entries.
"""

import json
import multiprocessing
import os

from repro.core.cache import FORMULA_SCOPE, VerdictCache
from repro.core.interference import InterferenceVerdict
from repro.core.persist import (
    LOCK_STALE_SECONDS,
    PersistentStore,
    store_salt,
)


def _verdict(note=""):
    return InterferenceVerdict(
        interferes=False, confidence="proved", method="symbolic", note=note
    )


def _flush_keys(directory, keys):
    cache = VerdictCache()
    for key in keys:
        cache.store(FORMULA_SCOPE, key, _verdict(note=f"note:{key}"))
    PersistentStore(directory).flush(cache)


def _loaded_keys(directory):
    cache = VerdictCache()
    PersistentStore(directory).load(cache)
    return {key for (_scope, key), _verdict, _persisted in cache.items()}


def _compact_in_process(directory, barrier, queue):
    """Child-process body: rendezvous, then race to compact."""
    store = PersistentStore(directory)
    barrier.wait(timeout=30)
    try:
        queue.put(store.compact())
    except Exception as exc:  # noqa: BLE001 - the test asserts no crashes
        queue.put({"crashed": f"{type(exc).__name__}: {exc}"})


class TestConcurrentCompaction:
    def test_two_processes_compacting_simultaneously_lose_nothing(self, tmp_path):
        # run the race several times: the interleaving differs per run and
        # the invariant must hold in every one
        for round_number in range(3):
            directory = tmp_path / f"round-{round_number}"
            expected = set()
            for segment in range(6):
                keys = [f"r{round_number}-s{segment}-k{i}" for i in range(4)]
                _flush_keys(directory, keys)
                expected.update(keys)

            barrier = multiprocessing.Barrier(2)
            queue = multiprocessing.Queue()
            children = [
                multiprocessing.Process(
                    target=_compact_in_process, args=(directory, barrier, queue)
                )
                for _ in range(2)
            ]
            for child in children:
                child.start()
            summaries = [queue.get(timeout=60) for _ in children]
            for child in children:
                child.join(timeout=60)
                assert child.exitcode == 0

            assert all("crashed" not in summary for summary in summaries)
            # at least one compactor won the claim; a loser skipping is fine
            assert any(summary["compacted"] for summary in summaries)
            assert _loaded_keys(directory) == expected
            # no claim file left behind
            assert not (directory / "compact.lock").exists()

    def test_compaction_with_concurrent_flush_keeps_the_new_segment(self, tmp_path):
        _flush_keys(tmp_path, ["old-1", "old-2"])
        store = PersistentStore(tmp_path)

        # simulate a flush landing while the compactor holds the claim by
        # writing the new segment between claim and merge
        original_claim = store._claim_compaction

        def claim_then_flush():
            ok = original_claim()
            _flush_keys(tmp_path, ["landed-during-compaction"])
            return ok

        store._claim_compaction = claim_then_flush
        summary = store.compact()
        assert summary["compacted"]
        assert _loaded_keys(tmp_path) >= {"old-1", "old-2", "landed-during-compaction"}


class TestTruncatedSegments:
    def _truncated_segment(self, directory, keys, cut=10):
        """Write a valid segment, then chop bytes off its tail."""
        _flush_keys(directory, keys)
        segment = max(directory.glob("verdicts-*.jsonl"), key=lambda p: p.stat().st_mtime)
        data = segment.read_bytes()
        segment.write_bytes(data[:-cut])
        return segment

    def test_truncated_segment_never_crashes_load_or_compaction(self, tmp_path):
        _flush_keys(tmp_path, ["good-1", "good-2"])
        self._truncated_segment(tmp_path, ["torn-1", "torn-2"], cut=15)

        loaded = _loaded_keys(tmp_path)
        assert {"good-1", "good-2"} <= loaded  # intact entries all survive

        summary = PersistentStore(tmp_path).compact()
        assert summary["compacted"]
        assert {"good-1", "good-2"} <= _loaded_keys(tmp_path)

    def test_truncation_inside_the_header_drops_only_that_segment(self, tmp_path):
        _flush_keys(tmp_path, ["keep-me"])
        bad = tmp_path / "verdicts-0-torn.jsonl"
        bad.write_text(json.dumps({"format": 1, "salt": store_salt()})[:20])
        store = PersistentStore(tmp_path)
        cache = VerdictCache()
        store.load(cache)
        assert store.stats["segments_skipped"] == 1
        assert _loaded_keys(tmp_path) == {"keep-me"}


class TestCompactionClaim:
    def test_live_holder_is_respected(self, tmp_path):
        _flush_keys(tmp_path, ["k"])
        lock = tmp_path / "compact.lock"
        lock.write_text(f"{os.getpid()}\n")  # we are alive: claim is live
        store = PersistentStore(tmp_path)
        summary = store.compact()
        assert summary == {"compacted": False, "segments_in": 0, "entries": 0}
        assert store.stats["compactions_skipped"] == 1
        assert _loaded_keys(tmp_path) == {"k"}  # nothing was touched
        lock.unlink()

    def test_dead_holder_claim_is_broken(self, tmp_path):
        _flush_keys(tmp_path, ["k1"])
        _flush_keys(tmp_path, ["k2"])
        lock = tmp_path / "compact.lock"
        # find a pid that is certainly dead
        child = multiprocessing.Process(target=lambda: None)
        child.start()
        child.join()
        lock.write_text(f"{child.pid}\n")
        summary = PersistentStore(tmp_path).compact()
        assert summary["compacted"]
        assert _loaded_keys(tmp_path) == {"k1", "k2"}

    def test_stale_mtime_claim_is_broken(self, tmp_path):
        _flush_keys(tmp_path, ["k"])
        lock = tmp_path / "compact.lock"
        lock.write_text("not-a-pid\n")
        ancient = lock.stat().st_mtime - (LOCK_STALE_SECONDS + 60)
        os.utime(lock, (ancient, ancient))
        summary = PersistentStore(tmp_path).compact()
        assert summary["compacted"]

    def test_claim_released_after_compaction(self, tmp_path):
        _flush_keys(tmp_path, ["k"])
        PersistentStore(tmp_path).compact()
        assert not (tmp_path / "compact.lock").exists()


class TestRefresh:
    def test_refresh_absorbs_only_unseen_segments(self, tmp_path):
        shard_a = PersistentStore(tmp_path)
        cache_a = VerdictCache()
        cache_a.store(FORMULA_SCOPE, "from-a", _verdict())
        shard_a.flush(cache_a)

        shard_b = PersistentStore(tmp_path)
        cache_b = VerdictCache()
        assert shard_b.load(cache_b) == 1

        # nothing new yet: refresh is a no-op
        assert shard_b.refresh(cache_b) == 0

        cache_a.store(FORMULA_SCOPE, "from-a-later", _verdict())
        shard_a.flush(cache_a)
        assert shard_b.refresh(cache_b) == 1
        assert cache_b.lookup("from-a-later", "unused") is not None

    def test_own_flush_is_not_reabsorbed(self, tmp_path):
        shard = PersistentStore(tmp_path)
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "mine", _verdict())
        shard.flush(cache)
        assert shard.refresh(cache) == 0
        assert shard.stats["entries_refreshed"] == 0

    def test_in_memory_verdicts_win_over_refreshed_segments(self, tmp_path):
        shard_b = PersistentStore(tmp_path)
        cache_b = VerdictCache()
        cache_b.store(FORMULA_SCOPE, "contested", _verdict(note="mine"))

        other = VerdictCache()
        other.store(FORMULA_SCOPE, "contested", _verdict(note="theirs"))
        PersistentStore(tmp_path).flush(other)

        shard_b.refresh(cache_b)
        assert cache_b.lookup("contested", "unused").note == "mine"
