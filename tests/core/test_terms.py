"""Unit tests for the term language."""

import pytest

from repro.core.state import DbState
from repro.core.terms import (
    Add,
    BoolConst,
    Field,
    IntConst,
    Item,
    Local,
    LogicalVar,
    Mul,
    Neg,
    Param,
    StrConst,
    Sub,
    coerce,
    is_rigid,
    references_database,
)
from repro.errors import EvaluationError, SortError


@pytest.fixture
def state():
    return DbState(
        items={"x": 3, "flag": True},
        arrays={"a": {0: {"v": 10}, 1: {"v": 20}}},
    )


class TestConstants:
    def test_int_const_evaluates_to_value(self, state):
        assert IntConst(7).evaluate(state, {}) == 7

    def test_bool_const_evaluates_to_value(self, state):
        assert BoolConst(True).evaluate(state, {}) is True

    def test_str_const_evaluates_to_value(self, state):
        assert StrConst("hi").evaluate(state, {}) == "hi"

    def test_constants_have_no_atoms(self):
        assert list(IntConst(1).atoms()) == []
        assert list(StrConst("s").atoms()) == []

    def test_substitute_is_identity_on_constants(self):
        mapping = {Local("x"): IntConst(9)}
        assert IntConst(1).substitute(mapping) == IntConst(1)

    def test_sorts(self):
        assert IntConst(1).sort == "int"
        assert BoolConst(False).sort == "bool"
        assert StrConst("a").sort == "str"


class TestReferences:
    def test_local_reads_environment(self, state):
        assert Local("t").evaluate(state, {Local("t"): 5}) == 5

    def test_unbound_local_raises(self, state):
        with pytest.raises(EvaluationError):
            Local("missing").evaluate(state, {})

    def test_param_reads_environment(self, state):
        assert Param("w").evaluate(state, {Param("w"): 2}) == 2

    def test_logical_var_reads_environment(self, state):
        assert LogicalVar("X0").evaluate(state, {LogicalVar("X0"): -1}) == -1

    def test_item_reads_database(self, state):
        assert Item("x").evaluate(state, {}) == 3

    def test_unknown_item_raises(self, state):
        with pytest.raises(EvaluationError):
            Item("nope").evaluate(state, {})

    def test_field_reads_array_element(self, state):
        term = Field("a", IntConst(1), "v")
        assert term.evaluate(state, {}) == 20

    def test_field_with_param_index(self, state):
        term = Field("a", Param("i"), "v")
        assert term.evaluate(state, {Param("i"): 0}) == 10

    def test_field_substitution_rewrites_index(self):
        term = Field("a", Param("i"), "v")
        rewritten = term.substitute({Param("i"): IntConst(1)})
        assert rewritten == Field("a", IntConst(1), "v")

    def test_field_whole_term_substitution(self):
        term = Field("a", Param("i"), "v")
        rewritten = term.substitute({term: IntConst(99)})
        assert rewritten == IntConst(99)

    def test_field_atoms_include_index_atoms(self):
        term = Field("a", Param("i"), "v")
        atoms = set(term.atoms())
        assert term in atoms
        assert Param("i") in atoms

    def test_reference_substitution(self):
        assert Local("x").substitute({Local("x"): IntConst(1)}) == IntConst(1)
        assert Local("x").substitute({Local("y"): IntConst(1)}) == Local("x")


class TestArithmetic:
    def test_add(self, state):
        assert Add(IntConst(2), IntConst(3)).evaluate(state, {}) == 5

    def test_sub(self, state):
        assert Sub(IntConst(2), IntConst(3)).evaluate(state, {}) == -1

    def test_mul(self, state):
        assert Mul(IntConst(2), IntConst(3)).evaluate(state, {}) == 6

    def test_neg(self, state):
        assert Neg(IntConst(4)).evaluate(state, {}) == -4

    def test_operator_sugar(self, state):
        term = Local("x") + 1 - Local("y")
        env = {Local("x"): 10, Local("y"): 3}
        assert term.evaluate(state, env) == 8

    def test_mul_sugar(self, state):
        assert (IntConst(3) * 4).evaluate(state, {}) == 12

    def test_unary_minus_sugar(self, state):
        assert (-IntConst(3)).evaluate(state, {}) == -3

    def test_compound_substitution(self):
        term = Add(Local("x"), Item("y"))
        rewritten = term.substitute({Item("y"): IntConst(0)})
        assert rewritten == Add(Local("x"), IntConst(0))

    def test_compound_atoms(self):
        term = Add(Local("x"), Mul(Item("y"), Param("p")))
        atoms = set(term.atoms())
        assert atoms == {Local("x"), Item("y"), Param("p")}

    def test_non_integer_operand_raises(self, state):
        with pytest.raises(EvaluationError):
            Add(StrConst("a"), IntConst(1)).evaluate(state, {})


class TestHelpers:
    def test_coerce_literals(self):
        assert coerce(5) == IntConst(5)
        assert coerce(True) == BoolConst(True)
        assert coerce("s") == StrConst("s")
        assert coerce(IntConst(1)) == IntConst(1)

    def test_coerce_rejects_other_types(self):
        with pytest.raises(SortError):
            coerce(3.14)

    def test_rigidity(self):
        assert is_rigid(IntConst(1))
        assert is_rigid(Param("p"))
        assert is_rigid(LogicalVar("X"))
        assert is_rigid(Add(Param("p"), IntConst(1)))
        assert not is_rigid(Local("x"))
        assert not is_rigid(Item("x"))
        assert not is_rigid(Add(Local("x"), IntConst(1)))

    def test_references_database(self):
        assert references_database(Item("x"))
        assert references_database(Add(Local("x"), Field("a", IntConst(0), "v")))
        assert not references_database(Add(Local("x"), Param("p")))
