"""Robustness tests for the persistent verdict store."""

import json
import os

import pytest

from repro.core.cache import FORMULA_SCOPE, FULL_SCOPE, VerdictCache
from repro.core.interference import InterferenceVerdict, Witness
from repro.core.persist import (
    COMPACT_THRESHOLD,
    PersistentStore,
    STORE_FORMAT,
    open_store,
    store_salt,
)
from repro.core.state import DbState


def _verdict(interferes=False, note="", witness=None):
    return InterferenceVerdict(
        interferes=interferes,
        confidence="proved",
        method="symbolic",
        witness=witness,
        note=note,
    )


def _warm_cache(n=3):
    cache = VerdictCache()
    for i in range(n):
        cache.store(FORMULA_SCOPE, f"key-{i}", _verdict(note=f"entry {i}"))
    return cache


class TestRoundTrip:
    def test_flush_then_load(self, tmp_path):
        store = PersistentStore(tmp_path)
        assert store.flush(_warm_cache()) == 3

        fresh = VerdictCache()
        assert PersistentStore(tmp_path).load(fresh) == 3
        verdict = fresh.lookup("key-1", "unused-full-key")
        assert verdict is not None
        assert verdict.note == "entry 1"
        assert verdict.confidence == "proved"

    def test_both_scopes_survive(self, tmp_path):
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "fk", _verdict(note="formula-scoped"))
        cache.store(FULL_SCOPE, "uk", _verdict(interferes=True, note="full-scoped"))
        PersistentStore(tmp_path).flush(cache)

        fresh = VerdictCache()
        PersistentStore(tmp_path).load(fresh)
        assert fresh.lookup("fk", "x").note == "formula-scoped"
        assert fresh.lookup("y", "uk").interferes

    def test_witness_stripped_to_text(self, tmp_path):
        heavy = Witness(
            kind="concrete",
            description="write flips Q",
            state=DbState(items={"x": 1}),
            env={"p": 1},
            model={"x": 2},
        )
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "k", _verdict(interferes=True, witness=heavy))
        PersistentStore(tmp_path).flush(cache)

        fresh = VerdictCache()
        PersistentStore(tmp_path).load(fresh)
        witness = fresh.lookup("k", "x").witness
        assert witness.kind == "concrete"
        assert witness.description == "write flips Q"
        assert witness.state is None and witness.env is None and witness.model is None

    def test_flush_skips_already_persisted(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.flush(_warm_cache())
        warmed = VerdictCache()
        PersistentStore(tmp_path).load(warmed)
        # nothing new to write: the second process only re-reads
        assert PersistentStore(tmp_path).flush(warmed) == 0
        assert PersistentStore(tmp_path).segment_count() == 1


class TestSaltAndVersioning:
    def test_salt_mismatch_is_a_clean_miss(self, tmp_path):
        PersistentStore(tmp_path, salt="old-prover").flush(_warm_cache())

        fresh = VerdictCache()
        reader = PersistentStore(tmp_path, salt="new-prover")
        assert reader.load(fresh) == 0
        assert len(fresh) == 0
        assert reader.stats["segments_skipped"] == 1

    def test_default_salt_tracks_component_versions(self):
        from repro.core.cache import FINGERPRINT_VERSION
        from repro.core.conditions import PLAN_VERSION
        from repro.core.prover import PROVER_VERSION

        salt = store_salt()
        assert FINGERPRINT_VERSION in salt
        assert PROVER_VERSION in salt
        assert PLAN_VERSION in salt

    def test_format_bump_skips_segment(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.flush(_warm_cache())
        segment = next(tmp_path.glob("verdicts-*.jsonl"))
        lines = segment.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = STORE_FORMAT + 1
        segment.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

        fresh = VerdictCache()
        assert PersistentStore(tmp_path).load(fresh) == 0


class TestCorruptionTolerance:
    def test_corrupt_and_truncated_lines_are_skipped(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.flush(_warm_cache(3))
        segment = next(tmp_path.glob("verdicts-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
            handle.write('{"scope": "formula", "key": "half", "verd')  # truncated
        reader = PersistentStore(tmp_path)
        fresh = VerdictCache()
        assert reader.load(fresh) == 3
        assert reader.stats["lines_skipped"] == 2

    def test_wrong_shapes_are_skipped(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.flush(_warm_cache(1))
        segment = next(tmp_path.glob("verdicts-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"scope": 7, "key": "k", "verdict": {}}) + "\n")
            handle.write(json.dumps({"key": "missing scope"}) + "\n")
            handle.write(json.dumps(["not", "a", "dict"]) + "\n")
        fresh = VerdictCache()
        assert PersistentStore(tmp_path).load(fresh) == 1

    def test_garbage_header_skips_whole_segment(self, tmp_path):
        (tmp_path / "verdicts-999-deadbeef.jsonl").write_text("garbage\n")
        reader = PersistentStore(tmp_path)
        assert reader.load(VerdictCache()) == 0
        assert reader.stats["segments_skipped"] == 1

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        reader = PersistentStore(tmp_path / "never-created")
        assert reader.load(VerdictCache()) == 0
        assert reader.segment_count() == 0


class TestConcurrentWriters:
    def test_two_stores_never_clobber(self, tmp_path):
        """Two processes flushing into one directory write distinct segments."""
        a_cache = VerdictCache()
        a_cache.store(FORMULA_SCOPE, "from-a", _verdict(note="a"))
        b_cache = VerdictCache()
        b_cache.store(FORMULA_SCOPE, "from-b", _verdict(note="b"))

        PersistentStore(tmp_path).flush(a_cache)
        PersistentStore(tmp_path).flush(b_cache)
        assert PersistentStore(tmp_path).segment_count() == 2

        merged = VerdictCache()
        PersistentStore(tmp_path).load(merged)
        assert merged.lookup("from-a", "x").note == "a"
        assert merged.lookup("from-b", "x").note == "b"

    def test_no_temp_files_left_behind(self, tmp_path):
        PersistentStore(tmp_path).flush(_warm_cache())
        assert not list(tmp_path.glob("*.tmp"))


class TestCompaction:
    def test_many_segments_compact_without_losing_entries(self, tmp_path):
        flushes = 2 * COMPACT_THRESHOLD + 2
        for i in range(flushes):
            cache = VerdictCache()
            cache.store(FORMULA_SCOPE, f"seg-{i}", _verdict(note=f"segment {i}"))
            PersistentStore(tmp_path).flush(cache)

        # compaction kept the directory bounded while every entry survived
        assert PersistentStore(tmp_path).segment_count() <= COMPACT_THRESHOLD + 1
        merged = VerdictCache()
        PersistentStore(tmp_path).load(merged)
        for i in range(flushes):
            assert merged.lookup(f"seg-{i}", "x").note == f"segment {i}"

    def test_compaction_counter_increments(self, tmp_path):
        for i in range(COMPACT_THRESHOLD):
            cache = VerdictCache()
            cache.store(FORMULA_SCOPE, f"k{i}", _verdict())
            PersistentStore(tmp_path).flush(cache)
        # the next flush pushes the count past the threshold and compacts
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "overflow", _verdict())
        writer = PersistentStore(tmp_path)
        writer.flush(cache)
        assert writer.stats["compactions"] == 1
        assert writer.segment_count() == 1

    def test_compaction_drops_stale_salt_segments(self, tmp_path):
        PersistentStore(tmp_path, salt="stale").flush(_warm_cache())
        for i in range(COMPACT_THRESHOLD + 1):
            cache = VerdictCache()
            cache.store(FORMULA_SCOPE, f"k{i}", _verdict())
            PersistentStore(tmp_path).flush(cache)
        # compaction ran at least once and unlinked the stale-salt segment
        assert PersistentStore(tmp_path).segment_count() <= 2
        fresh = VerdictCache()
        assert PersistentStore(tmp_path, salt="stale").load(fresh) == 0


class TestCacheIntegration:
    def test_warmed_hits_count_as_persist_hits(self, tmp_path):
        PersistentStore(tmp_path).flush(_warm_cache(2))
        warmed = VerdictCache()
        PersistentStore(tmp_path).load(warmed)
        assert warmed.lookup("key-0", "x") is not None
        assert warmed.lookup("key-1", "x") is not None
        assert warmed.stats.persist_hits == 2
        assert warmed.stats.hits == 2

    def test_in_memory_entries_win_over_disk(self, tmp_path):
        PersistentStore(tmp_path).flush(_warm_cache(1))
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "key-0", _verdict(note="fresher"))
        PersistentStore(tmp_path).load(cache)
        assert cache.lookup("key-0", "x").note == "fresher"
        assert cache.stats.persist_hits == 0


class TestOpenStore:
    def test_no_persist_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert open_store(str(tmp_path), no_persist=True) is None

    def test_explicit_dir(self, tmp_path):
        store = open_store(str(tmp_path))
        assert store is not None
        assert store.directory == tmp_path

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = open_store(None)
        assert store is not None
        assert str(store.directory) == str(tmp_path)

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert open_store(None) is None
