"""Soundness of the verdict cache, fingerprints, and parallel dispatch.

The cache is only sound if (a) structurally equal analysis objects get
equal fingerprints while different ones don't, and (b) a warm run returns
verdicts identical to a cold run on every application.  Parallel dispatch
is only sound if it is invisible: ``workers=4`` must reproduce the
``workers=1`` analysis bit for bit.
"""

import pytest

from repro.apps import banking, orders, tpcc
from repro.core.cache import (
    FORMULA_SCOPE,
    FULL_SCOPE,
    VerdictCache,
    clear_fingerprint_cache,
    fingerprint,
    fingerprint_many,
    reset_shared_cache,
    shared_cache,
)
from repro.core.chooser import analyze_application
from repro.core.conditions import EXTENDED_LADDER, READ_COMMITTED, check_transaction_at
from repro.core.formula import TRUE, conj, eq, ge
from repro.core.interference import InterferenceChecker
from repro.core.parallel import ParallelPolicy, chunked, parallel_map, resolve_workers
from repro.core.program import Read, TransactionType, Write
from repro.core.prover import clear_prover_caches, prover_cache_stats, simplify
from repro.core.terms import IntConst, Item, Local


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_equal_structures_collide(self):
        a = conj(ge(Item("x"), 0), eq(Item("y"), IntConst(1)))
        b = conj(ge(Item("x"), 0), eq(Item("y"), IntConst(1)))
        # hash-consing interns structurally equal formulas into one node...
        assert a is b
        assert fingerprint(a) == fingerprint(b)
        # ...but fingerprints must collide even for distinct equal objects
        # (e.g. nodes unpickled from a process worker bypass interning)
        import pickle

        c = pickle.loads(pickle.dumps(a))
        assert c is not a and c == a
        assert fingerprint(c) == fingerprint(a)

    def test_different_structures_do_not_collide(self):
        assert fingerprint(ge(Item("x"), 0)) != fingerprint(ge(Item("x"), 1))
        assert fingerprint(ge(Item("x"), 0)) != fingerprint(ge(Item("y"), 0))

    def test_statement_and_transaction_fingerprints(self):
        t1 = TransactionType(
            name="T", body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1))
        )
        t2 = TransactionType(
            name="T", body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1))
        )
        assert t1.fingerprint() == t2.fingerprint()
        assert t1.body[0].fingerprint() == t2.body[0].fingerprint()
        t3 = TransactionType(
            name="T", body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 2))
        )
        assert t1.fingerprint() != t3.fingerprint()

    def test_closures_over_equal_captures_collide(self):
        def make(formula):
            def post(env, state):
                return formula
            return post

        f1 = make(ge(Item("x"), 0))
        f2 = make(ge(Item("x"), 0))
        g = make(ge(Item("x"), 5))
        assert fingerprint(f1) == fingerprint(f2)
        assert fingerprint(f1) != fingerprint(g)

    def test_fingerprint_many_is_order_sensitive(self):
        a, b = ge(Item("x"), 0), TRUE
        assert fingerprint_many(a, b) != fingerprint_many(b, a)

    def test_interning_survives_clear(self):
        formula = ge(Item("x"), 0)
        before = fingerprint(formula)
        clear_fingerprint_cache()
        assert fingerprint(formula) == before


# ---------------------------------------------------------------------------
# the VerdictCache container
# ---------------------------------------------------------------------------


class TestVerdictCache:
    def test_formula_scope_shared_across_full_keys(self):
        cache = VerdictCache()
        cache.store(FORMULA_SCOPE, "fk", "verdict")
        assert cache.lookup("fk", "full-1") == "verdict"
        assert cache.lookup("fk", "full-2") == "verdict"
        assert cache.stats.hits == 2

    def test_full_scope_not_shared(self):
        cache = VerdictCache()
        cache.store(FULL_SCOPE, "full-1", "verdict")
        assert cache.lookup("other", "full-1") == "verdict"
        assert cache.lookup("other", "full-2") is None
        assert cache.stats.misses == 1

    def test_disabled_cache_never_hits(self):
        cache = VerdictCache(enabled=False)
        cache.store(FORMULA_SCOPE, "fk", "verdict")
        assert cache.lookup("fk", "fk") is None
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_eviction_keeps_cache_bounded(self):
        cache = VerdictCache(cap=100)
        for i in range(250):
            cache.store(FULL_SCOPE, f"k{i}", i)
        assert len(cache) <= 100
        assert cache.stats.evictions > 0
        # newest entries survive FIFO eviction
        assert cache.lookup("none", "k249") == 249

    def test_clear_resets_stats(self):
        cache = VerdictCache()
        cache.store(FULL_SCOPE, "k", 1)
        cache.lookup("none", "k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_shared_cache_is_a_singleton(self):
        reset_shared_cache()
        assert shared_cache() is shared_cache()
        reset_shared_cache()


# ---------------------------------------------------------------------------
# parallel primitives
# ---------------------------------------------------------------------------


class TestParallelPrimitives:
    def test_chunked_preserves_order(self):
        items = list(range(10))
        chunks = chunked(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunk for chunk in chunks)

    def test_parallel_map_matches_serial(self):
        fn = lambda x: x * x
        serial, _ = parallel_map(fn, list(range(20)), workers=1)
        threaded, _ = parallel_map(fn, list(range(20)), workers=4)
        assert serial == threaded

    def test_parallel_map_first_hit_is_deterministic(self):
        items = list(range(20))
        stop = lambda r: r >= 5
        for workers in (1, 4):
            results, stopped = parallel_map(lambda x: x, items, workers, stop_on=stop)
            assert stopped == 5
            assert results[:6] == items[:6]

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(7) == 7
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1


# ---------------------------------------------------------------------------
# cache soundness on real applications
# ---------------------------------------------------------------------------


APPS = {
    "banking": banking.make_application,
    "orders": lambda: orders.make_application("no_gap"),
    "tpcc": tpcc.make_application,
}


def _verdict_digest(report):
    """Every obligation's outcome, excluding the free-text note (the BMC
    note counts scenario cases, which chunking may split differently)."""
    digest = {}
    for choice in report.choices:
        for attempt in choice.attempts:
            for index, ob in enumerate(attempt.obligations):
                key = (choice.transaction, attempt.level, index)
                if ob.verdict is None:
                    digest[key] = ("excused", ob.excused)
                    continue
                v = ob.verdict
                witness = None
                if v.witness is not None:
                    witness = (
                        v.witness.description,
                        None if v.witness.state is None else repr(v.witness.state),
                        None if v.witness.env is None else repr(v.witness.env),
                    )
                digest[key] = (v.interferes, v.method, v.confidence, witness)
    return digest


@pytest.mark.parametrize("app_name", sorted(APPS))
def test_warm_run_identical_to_cold_run(app_name):
    app = APPS[app_name]()
    budget = 16
    cache = VerdictCache()

    cold_checker = InterferenceChecker(app.spec, budget=budget, cache=cache)
    cold = analyze_application(app, cold_checker, ladder=EXTENDED_LADDER)

    warm_checker = InterferenceChecker(app.spec, budget=budget, cache=cache)
    warm = analyze_application(app, warm_checker, ladder=EXTENDED_LADDER)

    assert warm_checker.stats["cache_hits"] > 0
    assert _verdict_digest(warm) == _verdict_digest(cold)
    assert warm.levels() == cold.levels()


def test_workers4_identical_to_serial():
    app = banking.make_application()
    serial_checker = InterferenceChecker(app.spec, budget=16, workers=1)
    serial = analyze_application(app, serial_checker, ladder=EXTENDED_LADDER)

    policy = ParallelPolicy(workers=4, backend="thread")
    par_checker = InterferenceChecker(app.spec, budget=16, workers=4)
    par = analyze_application(app, par_checker, ladder=EXTENDED_LADDER, policy=policy)

    assert _verdict_digest(par) == _verdict_digest(serial)
    assert par.levels() == serial.levels()


def test_no_cache_matches_cached_single_level():
    app = banking.make_application()
    target = app.transactions[0]
    plain = check_transaction_at(
        app, target, READ_COMMITTED,
        InterferenceChecker(app.spec, budget=16, cache=VerdictCache(enabled=False)),
    )
    cached = check_transaction_at(
        app, target, READ_COMMITTED, InterferenceChecker(app.spec, budget=16)
    )
    assert plain.ok == cached.ok
    assert len(plain.obligations) == len(cached.obligations)
    for a, b in zip(plain.obligations, cached.obligations):
        if a.verdict is None:
            assert b.verdict is None
            continue
        assert (a.verdict.interferes, a.verdict.method) == (
            b.verdict.interferes,
            b.verdict.method,
        )


def test_cross_level_sharing_hits_within_one_cold_run():
    """Obligations recur across ladder levels, so even a cold chooser run
    sees cache hits — the effect the E8 benchmark quantifies."""
    app = banking.make_application()
    checker = InterferenceChecker(app.spec, budget=16)
    analyze_application(app, checker, ladder=EXTENDED_LADDER)
    assert checker.stats["cache_hits"] > 0


# ---------------------------------------------------------------------------
# prover memoisation
# ---------------------------------------------------------------------------


def test_prover_memo_counts_hits():
    clear_prover_caches()
    formula = conj(ge(Item("x"), 0), eq(Item("y"), IntConst(1)))
    first = simplify(formula)
    before = prover_cache_stats()
    second = simplify(formula)
    after = prover_cache_stats()
    assert second == first
    assert after["simplify_hits"] == before["simplify_hits"] + 1

    # a simplified formula is a fixed point: re-simplifying hits the memo
    third = simplify(first)
    assert third == first
    assert prover_cache_stats()["simplify_hits"] >= after["simplify_hits"] + 1
