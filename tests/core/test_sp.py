"""Unit tests for strongest postconditions and path annotation."""

import pytest

from repro.core.formula import FALSE, Not, TRUE, conj, eq, ge, lt
from repro.core.program import If, LocalAssign, Read, ReadRecord, Select, TransactionType, While, Write
from repro.core.prover import Verdict, is_valid
from repro.core.sp import AnnotatedPath, annotate_paths, fresh_logical, sp_statement
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local, LogicalVar, Param
from repro.errors import ProgramError


def entails(premise, conclusion) -> bool:
    from repro.core.formula import implies

    return is_valid(implies(premise, conclusion)).verdict == Verdict.VALID


class TestFreshLogical:
    def test_fresh_variables_are_distinct(self):
        assert fresh_logical() != fresh_logical()

    def test_sort_respected(self):
        assert fresh_logical("bool").sort == "bool"


class TestAssignmentSp:
    def test_read_simple(self):
        pre = ge(Item("x"), 0)
        result = sp_statement(pre, Read(Local("v"), Item("x")))
        assert result.exact
        # sp => pre is preserved and v == x
        assert entails(result.formula, pre)
        assert entails(result.formula, eq(Local("v"), Item("x")))

    def test_read_shadows_previous_value(self):
        # {v == 5} v := x {exists u. u == 5 and v == x}
        pre = eq(Local("v"), 5)
        result = sp_statement(pre, Read(Local("v"), Item("x")))
        assert entails(result.formula, eq(Local("v"), Item("x")))
        # the old fact about v must NOT survive verbatim
        assert not entails(result.formula, eq(Local("v"), 5))

    def test_local_assign_self_reference(self):
        # {v == 3} v := v + 1 {v == 4}
        pre = eq(Local("v"), 3)
        result = sp_statement(pre, LocalAssign(Local("v"), Local("v") + 1))
        assert entails(result.formula, eq(Local("v"), 4))

    def test_write_updates_database_fact(self):
        # {x == 0 and V == 7} x := V {x == 7}
        pre = conj(eq(Item("x"), 0), eq(Local("V"), 7))
        result = sp_statement(pre, Write(Item("x"), Local("V")))
        assert entails(result.formula, eq(Item("x"), 7))

    def test_write_to_field(self):
        pre = eq(Local("V"), 1)
        stmt = Write(Field("a", Param("i"), "bal"), Local("V"))
        result = sp_statement(pre, stmt)
        assert entails(result.formula, eq(Field("a", Param("i"), "bal"), 1))

    def test_read_record_binds_all_attrs(self):
        pre = TRUE
        stmt = ReadRecord("emp", Param("i"), (("rate", Local("R")), ("sal", Local("S"))))
        result = sp_statement(pre, stmt)
        assert entails(result.formula, eq(Local("R"), Field("emp", Param("i"), "rate")))
        assert entails(result.formula, eq(Local("S"), Field("emp", Param("i"), "sal")))

    def test_relational_disjoint_passthrough(self):
        pre = ge(Item("x"), 0)
        stmt = Select("T", Local("buff", "str"))
        result = sp_statement(pre, stmt)
        assert result.formula == pre
        assert not result.exact

    def test_relational_overlapping_gives_none(self):
        from repro.core.formula import ForAllRows, RowAttr

        pre = ForAllRows("T", "r", ge(RowAttr("r", "k"), 0))
        from repro.core.program import Insert

        stmt = Insert("T", (("k", IntConst(1)),))
        result = sp_statement(pre, stmt)
        assert result.formula is None

    def test_control_statement_rejected(self):
        with pytest.raises(ProgramError):
            sp_statement(TRUE, If(TRUE, ()))


class TestAnnotatePaths:
    def test_straight_line(self):
        body = (
            Read(Local("v"), Item("x")),
            LocalAssign(Local("v"), Local("v") + 1),
            Write(Item("x"), Local("v")),
        )
        paths = annotate_paths(body, ge(Item("x"), 0))
        assert len(paths) == 1
        final = paths[0].final
        # x was incremented from a non-negative value
        assert entails(final, ge(Item("x"), 1))

    def test_if_forks_paths(self):
        body = (
            Read(Local("v"), Item("x")),
            If(ge(Local("v"), 0), then=(Write(Item("x"), Local("v") + 1),)),
        )
        paths = annotate_paths(body, TRUE)
        assert len(paths) == 2
        # entering the then-branch conjoins the guard
        branch_entries = [path.points[1].derived_post for path in paths]
        assert any(entails(g, ge(Local("v"), 0)) for g in branch_entries)

    def test_else_branch_negates_guard(self):
        body = (
            Read(Local("v"), Item("x")),
            If(ge(Local("v"), 0), then=(), orelse=(LocalAssign(Local("y"), IntConst(0)),)),
        )
        paths = annotate_paths(body, TRUE)
        finals = [path.final for path in paths]
        assert any(entails(f, lt(Local("v"), 0)) for f in finals)

    def test_while_unrolled(self):
        body = (
            LocalAssign(Local("k"), IntConst(0)),
            While(lt(Local("k"), 1), body=(LocalAssign(Local("k"), Local("k") + 1),)),
        )
        paths = annotate_paths(body, TRUE, max_loop_unroll=2)
        # 0, 1 and 2 unrollings
        assert len(paths) == 3
        # every surviving path ends with the negated guard
        for path in paths:
            assert entails(path.final, ge(Local("k"), 1)) or not path.points[-1].exact

    def test_statement_preconditions_found(self):
        write = Write(Item("x"), Local("v"))
        body = (Read(Local("v"), Item("x")), write)
        paths = annotate_paths(body, ge(Item("x"), 2))
        point = next(p for p in paths[0].points if p.statement is write)
        assert entails(point.pre, ge(Local("v"), 2))
