"""Unit tests for strongest postconditions and path annotation."""

import pytest

from repro.core.formula import FALSE, Not, TRUE, conj, eq, ge, lt
from repro.core.program import If, LocalAssign, Read, ReadRecord, Select, TransactionType, While, Write
from repro.core.prover import Verdict, is_valid
from repro.core.sp import AnnotatedPath, annotate_paths, fresh_logical, sp_statement
from repro.core.state import DbState
from repro.core.terms import Field, IntConst, Item, Local, LogicalVar, Param
from repro.errors import ProgramError


def entails(premise, conclusion) -> bool:
    from repro.core.formula import implies

    return is_valid(implies(premise, conclusion)).verdict == Verdict.VALID


class TestFreshLogical:
    def test_fresh_variables_are_distinct(self):
        assert fresh_logical() != fresh_logical()

    def test_sort_respected(self):
        assert fresh_logical("bool").sort == "bool"


class TestAssignmentSp:
    def test_read_simple(self):
        pre = ge(Item("x"), 0)
        result = sp_statement(pre, Read(Local("v"), Item("x")))
        assert result.exact
        # sp => pre is preserved and v == x
        assert entails(result.formula, pre)
        assert entails(result.formula, eq(Local("v"), Item("x")))

    def test_read_shadows_previous_value(self):
        # {v == 5} v := x {exists u. u == 5 and v == x}
        pre = eq(Local("v"), 5)
        result = sp_statement(pre, Read(Local("v"), Item("x")))
        assert entails(result.formula, eq(Local("v"), Item("x")))
        # the old fact about v must NOT survive verbatim
        assert not entails(result.formula, eq(Local("v"), 5))

    def test_local_assign_self_reference(self):
        # {v == 3} v := v + 1 {v == 4}
        pre = eq(Local("v"), 3)
        result = sp_statement(pre, LocalAssign(Local("v"), Local("v") + 1))
        assert entails(result.formula, eq(Local("v"), 4))

    def test_write_updates_database_fact(self):
        # {x == 0 and V == 7} x := V {x == 7}
        pre = conj(eq(Item("x"), 0), eq(Local("V"), 7))
        result = sp_statement(pre, Write(Item("x"), Local("V")))
        assert entails(result.formula, eq(Item("x"), 7))

    def test_write_to_field(self):
        pre = eq(Local("V"), 1)
        stmt = Write(Field("a", Param("i"), "bal"), Local("V"))
        result = sp_statement(pre, stmt)
        assert entails(result.formula, eq(Field("a", Param("i"), "bal"), 1))

    def test_read_record_binds_all_attrs(self):
        pre = TRUE
        stmt = ReadRecord("emp", Param("i"), (("rate", Local("R")), ("sal", Local("S"))))
        result = sp_statement(pre, stmt)
        assert entails(result.formula, eq(Local("R"), Field("emp", Param("i"), "rate")))
        assert entails(result.formula, eq(Local("S"), Field("emp", Param("i"), "sal")))

    def test_relational_disjoint_passthrough(self):
        pre = ge(Item("x"), 0)
        stmt = Select("T", Local("buff", "str"))
        result = sp_statement(pre, stmt)
        assert result.formula == pre
        assert not result.exact

    def test_relational_overlapping_gives_none(self):
        from repro.core.formula import ForAllRows, RowAttr

        pre = ForAllRows("T", "r", ge(RowAttr("r", "k"), 0))
        from repro.core.program import Insert

        stmt = Insert("T", (("k", IntConst(1)),))
        result = sp_statement(pre, stmt)
        assert result.formula is None

    def test_control_statement_rejected(self):
        with pytest.raises(ProgramError):
            sp_statement(TRUE, If(TRUE, ()))


class TestAnnotatePaths:
    def test_straight_line(self):
        body = (
            Read(Local("v"), Item("x")),
            LocalAssign(Local("v"), Local("v") + 1),
            Write(Item("x"), Local("v")),
        )
        paths = annotate_paths(body, ge(Item("x"), 0))
        assert len(paths) == 1
        final = paths[0].final
        # x was incremented from a non-negative value
        assert entails(final, ge(Item("x"), 1))

    def test_if_forks_paths(self):
        body = (
            Read(Local("v"), Item("x")),
            If(ge(Local("v"), 0), then=(Write(Item("x"), Local("v") + 1),)),
        )
        paths = annotate_paths(body, TRUE)
        assert len(paths) == 2
        # entering the then-branch conjoins the guard
        branch_entries = [path.points[1].derived_post for path in paths]
        assert any(entails(g, ge(Local("v"), 0)) for g in branch_entries)

    def test_else_branch_negates_guard(self):
        body = (
            Read(Local("v"), Item("x")),
            If(ge(Local("v"), 0), then=(), orelse=(LocalAssign(Local("y"), IntConst(0)),)),
        )
        paths = annotate_paths(body, TRUE)
        finals = [path.final for path in paths]
        assert any(entails(f, lt(Local("v"), 0)) for f in finals)

    def test_while_unrolled(self):
        body = (
            LocalAssign(Local("k"), IntConst(0)),
            While(lt(Local("k"), 1), body=(LocalAssign(Local("k"), Local("k") + 1),)),
        )
        paths = annotate_paths(body, TRUE, max_loop_unroll=2)
        # 0, 1 and 2 unrollings
        assert len(paths) == 3
        # every surviving path ends with the negated guard
        for path in paths:
            assert entails(path.final, ge(Local("k"), 1)) or not path.points[-1].exact

    def test_statement_preconditions_found(self):
        write = Write(Item("x"), Local("v"))
        body = (Read(Local("v"), Item("x")), write)
        paths = annotate_paths(body, ge(Item("x"), 2))
        point = next(p for p in paths[0].points if p.statement is write)
        assert entails(point.pre, ge(Local("v"), 2))


class TestLoopHandling:
    """Loop unrolling: nesting, exit guards, and exactness degradation."""

    @staticmethod
    def _counter_loop(local, bound, unroll_body=None):
        return While(
            lt(Local(local), bound),
            body=unroll_body or (LocalAssign(Local(local), Local(local) + 1),),
        )

    def test_nested_while_forks_inner_per_outer_iteration(self):
        # outer 0x -> 1 path; outer 1x -> the inner loop runs once and
        # itself forks 0x/1x -> 2 paths; 3 total at max_loop_unroll=1
        inner = self._counter_loop("j", 1)
        outer = While(
            lt(Local("i"), 1),
            body=(LocalAssign(Local("j"), IntConst(0)), inner,
                  LocalAssign(Local("i"), Local("i") + 1)),
        )
        body = (LocalAssign(Local("i"), IntConst(0)), outer)
        paths = annotate_paths(body, TRUE, max_loop_unroll=1)
        assert len(paths) == 3

    def test_nested_while_inner_exit_guard_in_final(self):
        inner = self._counter_loop("j", 1)
        outer = While(
            lt(Local("i"), 1),
            body=(LocalAssign(Local("j"), IntConst(0)), inner,
                  LocalAssign(Local("i"), Local("i") + 1)),
        )
        body = (LocalAssign(Local("i"), IntConst(0)), outer)
        paths = annotate_paths(body, TRUE, max_loop_unroll=1)
        # the path that entered both loops carries both negated guards
        both = [p for p in paths if entails(p.final, ge(Local("i"), 1))
                and entails(p.final, ge(Local("j"), 1))]
        assert both

    def test_loop_exit_conjoins_negated_guard(self):
        body = (
            LocalAssign(Local("k"), IntConst(0)),
            self._counter_loop("k", 2),
        )
        paths = annotate_paths(body, TRUE, max_loop_unroll=2)
        # the 2x-unrolled path knows k == 2 exactly: two increments from 0
        # plus the negated guard not(k < 2)
        full = [p for p in paths if entails(p.final, eq(Local("k"), 2))]
        assert full
        # and every path's final conjoins the negated guard (k >= 2) or is
        # a truncated unrolling marked inexact
        for path in paths:
            assert entails(path.final, ge(Local("k"), 2)) or not path.points[-1].exact

    def test_loop_exit_point_attributed_to_loop_statement(self):
        loop = self._counter_loop("k", 1)
        body = (LocalAssign(Local("k"), IntConst(0)), loop)
        paths = annotate_paths(body, TRUE, max_loop_unroll=1)
        one_iter = max(paths, key=lambda p: len(p.points))
        # the synthetic _LoopExit point reports the While itself
        loop_points = [pt for pt in one_iter.points if pt.statement is loop]
        assert len(loop_points) == 2  # loop entry + loop exit

    def test_exactness_degrades_at_unroll_bound(self):
        body = (
            LocalAssign(Local("k"), IntConst(0)),
            self._counter_loop("k", 1),
        )
        paths = annotate_paths(body, TRUE, max_loop_unroll=2)
        assert len(paths) == 3
        by_unroll = {
            next(n for n in p.condition_notes if "unrolled" in n): p for p in paths
        }
        # 0x: guard refuted but propagation itself stays exact
        assert by_unroll["loop unrolled 0x"].points[-1].exact
        # 1x: below the bound, still exact
        assert by_unroll["loop unrolled 1x"].points[-1].exact
        # 2x: at the bound the unrolling may be truncated -> inexact
        assert not by_unroll["loop unrolled 2x"].points[-1].exact

    def test_relational_statement_poisons_exactness(self):
        body = (
            Read(Local("v"), Item("x")),
            Select("T", Local("buff", "str")),
            LocalAssign(Local("v"), Local("v") + 1),
        )
        paths = annotate_paths(body, ge(Item("x"), 0))
        (path,) = paths
        read_pt, select_pt, assign_pt = path.points
        assert read_pt.exact
        assert not select_pt.exact  # disjoint passthrough is sound, not sp
        assert not assign_pt.exact  # poisoned from the Select onward

    def test_relational_without_sp_degrades_to_true_weakening(self):
        from repro.core.formula import ForAllRows, RowAttr
        from repro.core.program import Insert

        pre = ForAllRows("T", "r", ge(RowAttr("r", "k"), 0))
        body = (Insert("T", (("k", IntConst(1)),)),)
        paths = annotate_paths(body, pre)
        (path,) = paths
        (point,) = path.points
        assert not point.exact
        assert point.derived_post == TRUE  # sound but maximally weak

    def test_relational_with_explicit_post_trusted_but_inexact(self):
        from repro.core.formula import ForAllRows, RowAttr
        from repro.core.program import Insert

        pre = ForAllRows("T", "r", ge(RowAttr("r", "k"), 0))
        declared = ge(Item("x"), 0)
        body = (
            Insert("T", (("k", IntConst(1)),), post=declared),
            Read(Local("v"), Item("x")),
        )
        paths = annotate_paths(body, pre)
        (path,) = paths
        insert_pt, read_pt = path.points
        assert insert_pt.derived_post == declared
        assert not insert_pt.exact
        # downstream propagation continues from the declared post
        assert entails(read_pt.derived_post, ge(Local("v"), 0))
        assert not read_pt.exact
