"""Hash-consing invariants: interning, cached digests, pickle safety."""

import pickle

from repro.core import terms as tm
from repro.core.formula import (
    AbstractPred,
    And,
    Cmp,
    Formula,
    Not,
    TRUE,
    conj,
    eq,
    lt,
)
from repro.core.terms import (
    Add,
    HASH_CONSING,
    IntConst,
    Item,
    Local,
    Param,
    hashcons_stats,
)


def _deep(n=6):
    node = eq(Add(Item("x"), IntConst(1)), Param("p"))
    for i in range(n):
        node = And((node, lt(Item("x"), IntConst(i))))
    return node


class TestInterning:
    def test_equal_terms_are_identical(self):
        assert Item("x") is Item("x")
        assert Add(Item("x"), IntConst(1)) is Add(Item("x"), IntConst(1))

    def test_equal_formulas_are_identical(self):
        assert _deep() is _deep()

    def test_distinct_structures_stay_distinct(self):
        assert Item("x") is not Item("y")
        assert eq(Item("x"), IntConst(1)) is not eq(Item("x"), IntConst(2))

    def test_abstract_pred_is_never_interned(self):
        a = AbstractPred("labels printed", evaluator=lambda state, env: True)
        b = AbstractPred("labels printed", evaluator=lambda state, env: False)
        # equality ignores the evaluator, so interning would conflate them
        assert a == b
        assert a is not b

    def test_intern_tables_report_sizes(self):
        Item("hashcons-stat-probe")
        stats = hashcons_stats()
        assert stats.get("Item", 0) >= 1

    def test_flag_defaults_on(self):
        assert HASH_CONSING is True


class TestCachedDigests:
    def test_hash_is_cached_on_the_instance(self):
        node = _deep()
        hash(node)
        assert node.__dict__.get("_hc_hash") == hash(node)

    def test_fingerprint_is_stable_and_cached(self):
        from repro.core.cache import fingerprint

        node = _deep()
        first = fingerprint(node)
        assert fingerprint(node) == first
        assert node.__dict__.get("_hc_fp") == first

    def test_atom_set_cached(self):
        node = _deep()
        atoms = node.atom_set()
        assert node.atom_set() is atoms
        assert Item("x") in atoms


class TestSubstitution:
    def test_identity_preserving_on_untouched_trees(self):
        node = _deep()
        assert node.substitute({Item("absent"): IntConst(0)}) is node

    def test_substitution_still_rewrites(self):
        node = eq(Item("x"), Param("p"))
        rewritten = node.substitute({Param("p"): IntConst(7)})
        assert rewritten is eq(Item("x"), IntConst(7))

    def test_partial_sharing(self):
        left = eq(Item("x"), IntConst(1))
        right = eq(Param("p"), IntConst(2))
        both = And((left, right))
        rewritten = both.substitute({Param("p"): Local("l")})
        assert isinstance(rewritten, And)
        # the untouched conjunct is shared, not rebuilt
        assert rewritten.operands[0] is left


class TestPickle:
    def test_roundtrip_drops_node_caches(self):
        node = _deep()
        hash(node)
        node.fingerprint()
        clone = pickle.loads(pickle.dumps(node))
        assert clone == node
        assert "_hc_hash" not in clone.__dict__
        assert "_hc_fp" not in clone.__dict__

    def test_roundtrip_re_interns_on_equality(self):
        node = eq(Item("x"), IntConst(3))
        clone = pickle.loads(pickle.dumps(node))
        # unpickling builds an equal node; memo probes hit via equality
        assert clone == node
        assert hash(clone) == hash(node)


class TestProjectable:
    def test_structural_formulas_project(self):
        assert _deep().projectable() is True
        assert TRUE.projectable() is True

    def test_abstract_pred_trees_do_not(self):
        opaque = AbstractPred("prose clause", evaluator=lambda state, env: True)
        assert opaque.projectable() is False
        assert And((TRUE, opaque)).projectable() is False
        assert Not(opaque).projectable() is False
