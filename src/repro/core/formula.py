"""The assertion language: first-order formulas over database states.

Formulas annotate transaction programs (preconditions of control points,
read-statement postconditions, the consistency constraint ``I_i`` and the
result ``Q_i`` of the paper's triple (1)) and are the objects the
interference check (paper's triple (3)) is discharged over.

The language covers everything the paper's examples need:

* boolean combinations of linear integer comparisons (Figure 1's
  ``acct_sav[i].bal + acct_ch[i].bal >= 0``);
* bounded quantification over table rows — ``ForAllRows`` expresses
  constraints such as *order consistency* ("for every CUST row, ``#orders``
  equals the number of ORDERS rows for that customer");
* bounded quantification over integer ranges — ``ForAllInts`` expresses the
  *no gaps* business rule ("for every date up to ``maximum_date`` there is at
  least one order");
* ``COUNT(*)`` aggregates as integer terms (:class:`CountWhere`);
* tuple membership (:class:`InTable`) for postconditions like
  ``(order_info, customer, maxdate+1, false) ∈ ORDERS``;
* named abstract predicates (:class:`AbstractPred`) with a declared resource
  footprint and an optional concrete evaluator, for specification clauses
  the annotation keeps symbolic (e.g. "labels have been printed").

Every formula supports substitution, atom/resource extraction and concrete
evaluation, mirroring :class:`repro.core.terms.Term`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.core import terms
from repro.core.resources import ArrayResource, Resource, ScalarResource, TableResource
from repro.core.terms import HashConsMeta, Term, Value, coerce
from repro.errors import EvaluationError, SortError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import DbState

Env = dict

_CMP_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATED_OP = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


# ---------------------------------------------------------------------------
# relational terms (defined here because they embed formulas)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowAttr(Term):
    """An attribute of a row variable bound by a row quantifier."""

    row: str
    attr: str
    var_sort: str = "int"

    @property
    def sort(self) -> str:
        return self.var_sort

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def atoms(self) -> Iterator[Term]:
        yield self

    def evaluate(self, state: "DbState", env: Env) -> Value:
        try:
            return env[self]
        except KeyError:
            raise EvaluationError(f"unbound row attribute {self.row}.{self.attr}")

    def __repr__(self) -> str:
        return f"{self.row}.{self.attr}"


@dataclass(frozen=True)
class BoundVar(Term):
    """An integer variable bound by :class:`ForAllInts`."""

    name: str

    @property
    def sort(self) -> str:
        return "int"

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def atoms(self) -> Iterator[Term]:
        yield self

    def evaluate(self, state: "DbState", env: Env) -> Value:
        try:
            return env[self]
        except KeyError:
            raise EvaluationError(f"unbound quantified variable {self.name!r}")

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class CountWhere(Term):
    """``COUNT(*)`` over the rows of ``table`` satisfying ``where``.

    ``where`` is a formula over :class:`RowAttr` terms of the bound row
    variable ``row`` (plus any parameters and items).  The term's value is
    the number of matching rows, so any INSERT or DELETE into the predicate
    potentially changes it — which is exactly how phantom interference with
    COUNT-based assertions (the paper's ``Audit`` transaction) is detected.
    """

    table: str
    row: str
    where: "Formula"

    @property
    def sort(self) -> str:
        return "int"

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        inner = _drop_bound(mapping, self.row)
        return CountWhere(self.table, self.row, self.where.substitute(inner))

    def atoms(self) -> Iterator[Term]:
        yield self
        for atom in self.where.atoms():
            if not (isinstance(atom, RowAttr) and atom.row == self.row):
                yield atom

    def resources(self) -> frozenset[Resource]:
        out = {TableResource(self.table)}
        for atom in self.where.atoms():
            if isinstance(atom, RowAttr) and atom.row == self.row:
                out.add(TableResource(self.table, atom.attr))
        return frozenset(out)

    def evaluate(self, state: "DbState", env: Env) -> Value:
        count = 0
        for row in state.rows(self.table):
            row_env = _bind_row(env, self.row, row)
            if self.where.evaluate(state, row_env):
                count += 1
        return count

    def __repr__(self) -> str:
        return f"COUNT({self.row} in {self.table} where {self.where!r})"


#: (row_var, attr) -> the three sorted RowAttr keys; row binding happens in
#: the innermost loop of every quantifier/aggregate evaluation, so the keys
#: are looked up here instead of going through the constructor each time.
_ROW_KEYS: dict = {}


def _bind_row(env: Env, row_var: str, row: Mapping[str, Value]) -> Env:
    """Extend an environment with bindings for every attribute of a row."""
    extended = dict(env)
    for attr, value in row.items():
        try:
            int_key, bool_key, str_key = _ROW_KEYS[(row_var, attr)]
        except KeyError:
            int_key = RowAttr(row_var, attr)
            bool_key = RowAttr(row_var, attr, "bool")
            str_key = RowAttr(row_var, attr, "str")
            _ROW_KEYS[(row_var, attr)] = (int_key, bool_key, str_key)
        extended[int_key] = value
        extended[bool_key] = value
        extended[str_key] = value
    return extended


def _drop_bound(mapping: Mapping[Term, Term], row_var: str) -> dict:
    """Remove substitutions that would capture a bound row variable."""
    return {
        key: value
        for key, value in mapping.items()
        if not (isinstance(key, RowAttr) and key.row == row_var)
    }


# ---------------------------------------------------------------------------
# formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula(metaclass=HashConsMeta):
    """Base class of all assertions."""

    _hc_intern = True

    def substitute(self, mapping: Mapping[Term, Term]) -> "Formula":
        """Capture-free substitution; returns ``self`` untouched (identity-
        preserving) when no key of ``mapping`` occurs free in the formula."""
        if self.atom_set().isdisjoint(mapping):
            return self
        return self._substitute(mapping)

    def _substitute(self, mapping: Mapping[Term, Term]) -> "Formula":
        """Per-class substitution body; only called when atoms intersect."""
        raise NotImplementedError

    def atoms(self) -> Iterator[Term]:
        """Yield every free atomic reference term in the formula."""
        raise NotImplementedError

    def atom_set(self) -> frozenset:
        """The free atoms of this formula as a set, computed once and cached."""
        cached = self.__dict__.get("_hc_atoms")
        if cached is None:
            cached = frozenset(self.atoms())
            object.__setattr__(self, "_hc_atoms", cached)
        return cached

    def projectable(self) -> bool:
        """Whether :meth:`atom_set` fully describes this formula's env reads.

        True for every structural formula: evaluation looks up the
        environment only at free atoms.  False as soon as the tree contains
        an :class:`AbstractPred` — its opaque evaluator may read anything —
        which tells evaluation memos they must key on the whole environment.
        Computed once and cached on the node.
        """
        cached = self.__dict__.get("_hc_projectable")
        if cached is None:
            cached = True
            stack: list = [self]
            while stack:
                node = stack.pop()
                if isinstance(node, AbstractPred):
                    cached = False
                    break
                for f in dataclass_fields(node):
                    value = getattr(node, f.name)
                    if isinstance(value, Formula):
                        stack.append(value)
                    elif isinstance(value, tuple):
                        stack.extend(v for v in value if isinstance(v, Formula))
            object.__setattr__(self, "_hc_projectable", cached)
        return cached

    def evaluate(self, state: "DbState", env: Env) -> bool:
        raise NotImplementedError

    def resources(self) -> frozenset[Resource]:
        """Database resources this assertion's truth can depend on (cached)."""
        cached = self.__dict__.get("_hc_resources")
        if cached is None:
            cached = frozenset(_resources_of_atoms(self.atoms())) | self._extra_resources()
            object.__setattr__(self, "_hc_resources", cached)
        return cached

    def fingerprint(self) -> str:
        """Stable structural digest, cached on the node (see :mod:`repro.core.cache`)."""
        cached = self.__dict__.get("_hc_fp")
        if cached is not None:
            return cached
        from repro.core.cache import fingerprint

        return fingerprint(self)

    def __getstate__(self) -> dict:
        # Mirror Term.__getstate__: the cached hash is per-process (string
        # hash salting), so no _hc_* cache may cross a pickle boundary.
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_hc_")}

    def _extra_resources(self) -> frozenset[Resource]:
        return frozenset()

    # boolean-algebra sugar
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


def _resources_of_atoms(atoms: Iterator[Term]) -> set[Resource]:
    out: set[Resource] = set()
    for atom in atoms:
        if isinstance(atom, terms.Item):
            out.add(ScalarResource(atom.name))
        elif isinstance(atom, terms.Field):
            out.add(ArrayResource(atom.array, atom.attr))
        elif isinstance(atom, CountWhere):
            out |= atom.resources()
    return out


@dataclass(frozen=True)
class Top(Formula):
    """The trivially true assertion."""

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The trivially false assertion."""

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return False

    def __repr__(self) -> str:
        return "false"


TRUE = Top()
FALSE = Bottom()


@dataclass(frozen=True)
class Cmp(Formula):
    """A comparison between two terms of the same sort."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise SortError(f"unknown comparison operator {self.op!r}")
        if self.op not in ("==", "!=") and (self.left.sort == "str" or self.right.sort == "str"):
            raise SortError(f"ordering comparison on string terms: {self!r}")

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Cmp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        lhs = self.left.evaluate(state, env)
        rhs = self.right.evaluate(state, env)
        return _CMP_OPS[self.op](lhs, rhs)

    def negated(self) -> "Cmp":
        """The comparison asserting the opposite relation."""
        return Cmp(_NEGATED_OP[self.op], self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class BoolAtom(Formula):
    """A boolean-sorted term used directly as an assertion."""

    term: Term

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return BoolAtom(self.term.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.term.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        value = self.term.evaluate(state, env)
        return bool(value)

    def __repr__(self) -> str:
        return repr(self.term)


@dataclass(frozen=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.operand.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return not self.operand.evaluate(state, env)

    def _extra_resources(self) -> frozenset[Resource]:
        return self.operand._extra_resources()

    def __repr__(self) -> str:
        return f"!{self.operand!r}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    operands: tuple[Formula, ...]

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return And(tuple(op.substitute(mapping) for op in self.operands))

    def atoms(self) -> Iterator[Term]:
        for op in self.operands:
            yield from op.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return all(op.evaluate(state, env) for op in self.operands)

    def _extra_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for op in self.operands:
            out |= op._extra_resources()
        return out

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    operands: tuple[Formula, ...]

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Or(tuple(op.substitute(mapping) for op in self.operands))

    def atoms(self) -> Iterator[Term]:
        for op in self.operands:
            yield from op.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return any(op.evaluate(state, env) for op in self.operands)

    def _extra_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for op in self.operands:
            out |= op._extra_resources()
        return out

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    """Logical implication."""

    premise: Formula
    conclusion: Formula

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Implies(self.premise.substitute(mapping), self.conclusion.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.premise.atoms()
        yield from self.conclusion.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        return (not self.premise.evaluate(state, env)) or self.conclusion.evaluate(state, env)

    def _extra_resources(self) -> frozenset[Resource]:
        return self.premise._extra_resources() | self.conclusion._extra_resources()

    def __repr__(self) -> str:
        return f"({self.premise!r} => {self.conclusion!r})"


@dataclass(frozen=True)
class ForAllRows(Formula):
    """``for every row of table (satisfying where): body`` — bounded ∀."""

    table: str
    row: str
    body: Formula
    where: Formula = TRUE

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        inner = _drop_bound(mapping, self.row)
        return ForAllRows(self.table, self.row, self.body.substitute(inner), self.where.substitute(inner))

    def atoms(self) -> Iterator[Term]:
        for atom in self.body.atoms():
            if not (isinstance(atom, RowAttr) and atom.row == self.row):
                yield atom
        for atom in self.where.atoms():
            if not (isinstance(atom, RowAttr) and atom.row == self.row):
                yield atom

    def evaluate(self, state: "DbState", env: Env) -> bool:
        for row in state.rows(self.table):
            row_env = _bind_row(env, self.row, row)
            if self.where.evaluate(state, row_env) and not self.body.evaluate(state, row_env):
                return False
        return True

    def _extra_resources(self) -> frozenset[Resource]:
        out: set[Resource] = {TableResource(self.table)}
        for sub in (self.body, self.where):
            for atom in sub.atoms_with_bound():
                if isinstance(atom, RowAttr) and atom.row == self.row:
                    out.add(TableResource(self.table, atom.attr))
            out |= sub._extra_resources()
        return frozenset(out)

    def __repr__(self) -> str:
        if self.where == TRUE:
            return f"(forall {self.row} in {self.table}: {self.body!r})"
        return f"(forall {self.row} in {self.table} where {self.where!r}: {self.body!r})"


@dataclass(frozen=True)
class ExistsRow(Formula):
    """``some row of table (satisfying where) has: body`` — bounded ∃."""

    table: str
    row: str
    body: Formula
    where: Formula = TRUE

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        inner = _drop_bound(mapping, self.row)
        return ExistsRow(self.table, self.row, self.body.substitute(inner), self.where.substitute(inner))

    def atoms(self) -> Iterator[Term]:
        for atom in self.body.atoms():
            if not (isinstance(atom, RowAttr) and atom.row == self.row):
                yield atom
        for atom in self.where.atoms():
            if not (isinstance(atom, RowAttr) and atom.row == self.row):
                yield atom

    def evaluate(self, state: "DbState", env: Env) -> bool:
        for row in state.rows(self.table):
            row_env = _bind_row(env, self.row, row)
            if self.where.evaluate(state, row_env) and self.body.evaluate(state, row_env):
                return True
        return False

    def _extra_resources(self) -> frozenset[Resource]:
        out: set[Resource] = {TableResource(self.table)}
        for sub in (self.body, self.where):
            for atom in sub.atoms_with_bound():
                if isinstance(atom, RowAttr) and atom.row == self.row:
                    out.add(TableResource(self.table, atom.attr))
            out |= sub._extra_resources()
        return frozenset(out)

    def __repr__(self) -> str:
        if self.where == TRUE:
            return f"(exists {self.row} in {self.table}: {self.body!r})"
        return f"(exists {self.row} in {self.table} where {self.where!r}: {self.body!r})"


@dataclass(frozen=True)
class ForAllInts(Formula):
    """``for every integer v with low <= v <= high: body`` — bounded ∀.

    Used for business rules quantifying over value ranges, e.g. the paper's
    *no gaps* constraint over delivery dates.
    """

    var: str
    low: Term
    high: Term
    body: Formula

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        inner = {k: v for k, v in mapping.items() if k != BoundVar(self.var)}
        return ForAllInts(self.var, self.low.substitute(inner), self.high.substitute(inner), self.body.substitute(inner))

    def atoms(self) -> Iterator[Term]:
        yield from self.low.atoms()
        yield from self.high.atoms()
        for atom in self.body.atoms():
            if atom != BoundVar(self.var):
                yield atom

    def evaluate(self, state: "DbState", env: Env) -> bool:
        low = self.low.evaluate(state, env)
        high = self.high.evaluate(state, env)
        if not isinstance(low, int) or not isinstance(high, int):
            raise EvaluationError(f"non-integer bounds in {self!r}")
        bound = BoundVar(self.var)
        for value in range(low, high + 1):
            extended = dict(env)
            extended[bound] = value
            if not self.body.evaluate(state, extended):
                return False
        return True

    def _extra_resources(self) -> frozenset[Resource]:
        return self.body._extra_resources()

    def __repr__(self) -> str:
        return f"(forall {self.low!r} <= ${self.var} <= {self.high!r}: {self.body!r})"


@dataclass(frozen=True)
class InTable(Formula):
    """Tuple membership: some row of ``table`` matches every listed attribute."""

    table: str
    values: tuple[tuple[str, Term], ...]

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return InTable(self.table, tuple((attr, term.substitute(mapping)) for attr, term in self.values))

    def atoms(self) -> Iterator[Term]:
        for _attr, term in self.values:
            yield from term.atoms()

    def evaluate(self, state: "DbState", env: Env) -> bool:
        wanted = {attr: term.evaluate(state, env) for attr, term in self.values}
        for row in state.rows(self.table):
            if all(attr in row and row[attr] == value for attr, value in wanted.items()):
                return True
        return False

    def _extra_resources(self) -> frozenset[Resource]:
        out: set[Resource] = {TableResource(self.table)}
        for attr, _term in self.values:
            out.add(TableResource(self.table, attr))
        return frozenset(out)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{attr}={term!r}" for attr, term in self.values)
        return f"({pairs}) in {self.table}"


@dataclass(frozen=True)
class AbstractPred(Formula):
    """A named abstract specification clause with a declared footprint.

    Some annotation clauses in the paper are stated in prose ("Labels have
    been printed", "returned values are undelivered orders").  They are kept
    symbolic here: ``reads`` declares the database resources the clause
    depends on (the empty set for pure output clauses, which therefore can
    never be interfered with), and ``evaluator``, when given, makes the
    clause checkable by the bounded model checker and the dynamic semantic
    checker.  The evaluator receives ``(state, env)``.
    """

    name: str
    reads: frozenset[Resource] = frozenset()
    evaluator: Callable[["DbState", Env], bool] | None = field(default=None, compare=False)

    # Interning keys on equality, and equality ignores ``evaluator``; an
    # interned AbstractPred would silently swap one predicate's evaluator
    # for another's.  Construction stays un-interned for this class.
    _hc_intern = False

    def _substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> bool:
        if self.evaluator is None:
            raise EvaluationError(f"abstract predicate {self.name!r} has no evaluator")
        return self.evaluator(state, env)

    def _extra_resources(self) -> frozenset[Resource]:
        return frozenset(self.reads)

    def __repr__(self) -> str:
        return f"<{self.name}>"


# ---------------------------------------------------------------------------
# constructors and traversal helpers
# ---------------------------------------------------------------------------


def _atoms_with_bound(formula: Formula) -> Iterator[Term]:
    """Like :meth:`Formula.atoms` but includes bound row attributes."""
    if isinstance(formula, (ForAllRows, ExistsRow)):
        yield from _atoms_with_bound(formula.body)
        yield from _atoms_with_bound(formula.where)
    elif isinstance(formula, ForAllInts):
        yield from formula.low.atoms()
        yield from formula.high.atoms()
        yield from _atoms_with_bound(formula.body)
    elif isinstance(formula, Not):
        yield from _atoms_with_bound(formula.operand)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            yield from _atoms_with_bound(op)
    elif isinstance(formula, Implies):
        yield from _atoms_with_bound(formula.premise)
        yield from _atoms_with_bound(formula.conclusion)
    else:
        yield from formula.atoms()


# expose as a method so quantifier footprints can see nested bound attrs
Formula.atoms_with_bound = _atoms_with_bound  # type: ignore[attr-defined]

# register the formula hierarchy with the hash-consing helpers in terms.py
terms._HASHCONS_BASES.append(Formula)


def cmp(op: str, left, right) -> Cmp:
    """Build a comparison, lifting Python literals to constant terms."""
    return Cmp(op, coerce(left), coerce(right))


def eq(left, right) -> Cmp:
    return cmp("==", left, right)


def ne(left, right) -> Cmp:
    return cmp("!=", left, right)


def lt(left, right) -> Cmp:
    return cmp("<", left, right)


def le(left, right) -> Cmp:
    return cmp("<=", left, right)


def gt(left, right) -> Cmp:
    return cmp(">", left, right)


def ge(left, right) -> Cmp:
    return cmp(">=", left, right)


def conj(*operands: Formula) -> Formula:
    """N-ary conjunction with flattening and unit simplification."""
    flat: list[Formula] = []
    for op in operands:
        if isinstance(op, And):
            flat.extend(op.operands)
        elif isinstance(op, Bottom):
            return FALSE
        elif not isinstance(op, Top):
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*operands: Formula) -> Formula:
    """N-ary disjunction with flattening and unit simplification."""
    flat: list[Formula] = []
    for op in operands:
        if isinstance(op, Or):
            flat.extend(op.operands)
        elif isinstance(op, Top):
            return TRUE
        elif not isinstance(op, Bottom):
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(premise: Formula, conclusion: Formula) -> Formula:
    if isinstance(premise, Top):
        return conclusion
    if isinstance(premise, Bottom) or isinstance(conclusion, Top):
        return TRUE
    return Implies(premise, conclusion)


def conjuncts(formula: Formula) -> Sequence[Formula]:
    """Top-level conjuncts of a formula (the formula itself if not an And)."""
    if isinstance(formula, And):
        return formula.operands
    if isinstance(formula, Top):
        return ()
    return (formula,)
