"""Typed expression terms for the assertion and program language.

The paper models transactions over two kinds of stores:

* a *conventional* database of named items and record arrays (Sections 3, 6
  use ``acct_sav[i].bal``-style references), and
* a *relational* database of tables accessed through predicates (Section 4).

Terms are immutable trees.  Atomic reference terms come in five flavours:

``Local``
    a variable in the transaction's private workspace (``Sav``, ``maxdate``);
``Param``
    a transaction parameter, rigid for the duration of the transaction
    (``i``, ``w``, ``customer``);
``LogicalVar``
    a rigid logical variable used to record an initial value, the paper's
    ``X_i`` in triple (1) (``BAL``, ``Sav0``);
``Item``
    a named scalar database item (``maximum_date``);
``Field``
    an element of a record array, optionally a named attribute of the record
    (``acct_sav[i].bal``).

Compound terms cover integer arithmetic.  Relational terms (row attributes,
``COUNT(*)`` aggregates) live in :mod:`repro.core.formula` because they embed
formulas; they subclass :class:`Term` so everything composes.

Every term supports three generic operations used throughout the library:

* :meth:`Term.substitute` — capture-free syntactic substitution of atomic
  reference terms (the workhorse of strongest-postcondition computation);
* :meth:`Term.atoms` — the set of atomic reference terms occurring in the
  term (used for footprint and interference analysis);
* :meth:`Term.evaluate` — concrete evaluation against a database state and a
  variable environment (used by the bounded model checker and the dynamic
  semantic-correctness checker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Union

from repro.errors import EvaluationError, SortError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.state import DbState

#: Concrete values terms evaluate to.
Value = Union[int, bool, str]

# ---------------------------------------------------------------------------
# hash-consing
# ---------------------------------------------------------------------------

#: Global switch; benchmarks flip it off to measure the un-consed baseline.
HASH_CONSING = True

#: Per-class intern-table capacity.  Past the cap construction stops
#: interning (the table is never cleared, so existing identities and any
#: identity-based fast paths stay valid).
_INTERN_CAP = 1 << 20


class HashConsMeta(type):
    """Metaclass interning instances per concrete class (hash-consing).

    Structurally equal nodes become identity-equal, which turns the deep
    structural hashing and equality of memo-table probes into pointer work:
    the structural hash is computed once and cached on the instance
    (``_hc_hash``), and dict probes against interned nodes hit the identity
    fast path of ``==``.  Classes with ``_hc_intern = False`` (e.g.
    ``AbstractPred``, whose ``evaluator`` field is excluded from equality,
    so interning would conflate predicates with different evaluators) are
    never interned but still get the cached hash.
    """

    def __call__(cls, *args, **kwargs):
        if "_hc_ready" not in cls.__dict__:
            _prepare_hashcons_class(cls)
        obj = super().__call__(*args, **kwargs)
        if not HASH_CONSING or not cls._hc_intern:
            return obj
        table = cls.__dict__["_hc_table"]
        interned = table.get(obj)
        if interned is not None:
            return interned
        if len(table) < _INTERN_CAP:
            table[obj] = obj
        return obj


def _prepare_hashcons_class(cls) -> None:
    """Install the caching ``__hash__`` wrapper on first instantiation.

    The dataclass decorator runs *after* the metaclass creates the class,
    so the generated field-based ``__hash__`` can only be wrapped lazily.
    """
    generated = cls.__hash__

    def cached_hash(self, _orig=generated):
        h = self.__dict__.get("_hc_hash")
        if h is None:
            h = _orig(self)
            object.__setattr__(self, "_hc_hash", h)
        return h

    cls.__hash__ = cached_hash
    cls._hc_table = {}
    cls._hc_ready = True


def hashcons_stats() -> dict:
    """Sizes of every intern table (for diagnostics and tests)."""
    out: dict = {}
    for node_base in _HASHCONS_BASES:
        for sub in _all_subclasses(node_base):
            table = sub.__dict__.get("_hc_table")
            if table:
                out[sub.__name__] = len(table)
    return out


def clear_hashcons_tables() -> None:
    """Drop every intern table (benchmarking/test isolation only).

    Nodes interned earlier stay alive wherever they are referenced and
    remain structurally equal to newly built ones; only the identity
    guarantee for *future* constructions is reset.
    """
    for node_base in _HASHCONS_BASES:
        for sub in _all_subclasses(node_base):
            table = sub.__dict__.get("_hc_table")
            if table is not None:
                table.clear()


def _all_subclasses(cls) -> Iterator[type]:
    yield cls
    for sub in cls.__subclasses__():
        yield from _all_subclasses(sub)


#: Root classes whose subclass intern tables the helpers above walk;
#: ``formula.py`` appends its ``Formula`` root on import.
_HASHCONS_BASES: list = []

#: Environment mapping atomic reference terms (``Local``/``Param``/
#: ``LogicalVar``) to concrete values.  Keyed by the term itself, which is
#: hashable because all terms are frozen dataclasses.
Env = Mapping["Term", Value]

_INT = "int"
_BOOL = "bool"
_STR = "str"


@dataclass(frozen=True)
class Term(metaclass=HashConsMeta):
    """Base class of all expression terms."""

    _hc_intern = True

    @property
    def sort(self) -> str:
        """The sort of this term: ``"int"``, ``"bool"`` or ``"str"``."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping["Term", "Term"]) -> "Term":
        """Replace syntactic occurrences of atomic reference terms.

        ``mapping`` maps atomic reference terms to replacement terms.  The
        substitution is simultaneous and purely syntactic: a ``Field`` whose
        index mentions a substituted ``Param`` has the index rewritten, and a
        ``Field`` that is itself a key in ``mapping`` is replaced wholesale
        (index rewriting is applied first, then whole-term lookup).

        Returns ``self`` (identity-preserving) when no key of ``mapping``
        occurs free in the term, without traversing it.
        """
        if self.atom_set().isdisjoint(mapping):
            return self
        return self._substitute(mapping)

    def _substitute(self, mapping: Mapping["Term", "Term"]) -> "Term":
        """Per-class substitution body; only called when atoms intersect."""
        raise NotImplementedError

    def atoms(self) -> Iterator["Term"]:
        """Yield every atomic reference term occurring in this term."""
        raise NotImplementedError

    def atom_set(self) -> frozenset:
        """The atoms of this term as a set, computed once and cached."""
        cached = self.__dict__.get("_hc_atoms")
        if cached is None:
            cached = frozenset(self.atoms())
            object.__setattr__(self, "_hc_atoms", cached)
        return cached

    def evaluate(self, state: "DbState", env: Env) -> Value:
        """Evaluate against a concrete database state and environment."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable structural digest, cached on the node (see :mod:`repro.core.cache`)."""
        cached = self.__dict__.get("_hc_fp")
        if cached is not None:
            return cached
        from repro.core.cache import fingerprint

        return fingerprint(self)

    def __getstate__(self) -> dict:
        # The cached structural hash must not cross process boundaries
        # (string hashing is per-process salted via PYTHONHASHSEED), and the
        # other _hc_* caches are cheap to recompute; strip them all.
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_hc_")}

    # -- convenience constructors -----------------------------------------
    def __add__(self, other: "Term | int") -> "Add":
        return Add(self, _coerce(other))

    def __sub__(self, other: "Term | int") -> "Sub":
        return Sub(self, _coerce(other))

    def __mul__(self, other: "Term | int") -> "Mul":
        return Mul(self, _coerce(other))

    def __neg__(self) -> "Neg":
        return Neg(self)


def _coerce(value: "Term | int | bool | str") -> Term:
    """Lift a Python literal into a constant term; pass terms through."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return StrConst(value)
    raise SortError(f"cannot coerce {value!r} into a term")


def coerce(value: "Term | int | bool | str") -> Term:
    """Public alias of the literal-lifting helper used across the package."""
    return _coerce(value)


# ---------------------------------------------------------------------------
# constants
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntConst(Term):
    """An integer literal."""

    value: int

    @property
    def sort(self) -> str:
        return _INT

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> Value:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolConst(Term):
    """A boolean literal."""

    value: bool

    @property
    def sort(self) -> str:
        return _BOOL

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> Value:
        return self.value

    def __repr__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StrConst(Term):
    """A string literal (used for names, addresses, status fields)."""

    value: str

    @property
    def sort(self) -> str:
        return _STR

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return self

    def atoms(self) -> Iterator[Term]:
        return iter(())

    def evaluate(self, state: "DbState", env: Env) -> Value:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


# ---------------------------------------------------------------------------
# atomic reference terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Ref(Term):
    """Common behaviour of atomic reference terms."""

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def atoms(self) -> Iterator[Term]:
        yield self


@dataclass(frozen=True)
class Local(_Ref):
    """A workspace (local) variable of a transaction program."""

    name: str
    var_sort: str = _INT

    @property
    def sort(self) -> str:
        return self.var_sort

    def evaluate(self, state: "DbState", env: Env) -> Value:
        try:
            return env[self]
        except KeyError:
            raise EvaluationError(f"unbound local variable {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Param(_Ref):
    """A transaction parameter; rigid during the transaction's execution."""

    name: str
    var_sort: str = _INT

    @property
    def sort(self) -> str:
        return self.var_sort

    def evaluate(self, state: "DbState", env: Env) -> Value:
        try:
            return env[self]
        except KeyError:
            raise EvaluationError(f"unbound parameter {self.name!r}")

    def __repr__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class LogicalVar(_Ref):
    """A rigid logical variable recording an initial value (paper's ``X_i``)."""

    name: str
    var_sort: str = _INT

    @property
    def sort(self) -> str:
        return self.var_sort

    def evaluate(self, state: "DbState", env: Env) -> Value:
        try:
            return env[self]
        except KeyError:
            raise EvaluationError(f"unbound logical variable {self.name!r}")

    def __repr__(self) -> str:
        return self.name.upper()


@dataclass(frozen=True)
class Item(_Ref):
    """A named scalar database item (conventional database model)."""

    name: str
    var_sort: str = _INT

    @property
    def sort(self) -> str:
        return self.var_sort

    def evaluate(self, state: "DbState", env: Env) -> Value:
        return state.read_item(self.name)

    def __repr__(self) -> str:
        return f"db:{self.name}"


@dataclass(frozen=True)
class Field(Term):
    """An array-element reference, e.g. ``acct_sav[i].bal``.

    ``attr`` may be ``None`` for arrays of plain values.  The index is an
    arbitrary integer term (typically a :class:`Param` or a constant).
    """

    array: str
    index: Term
    attr: str | None = None
    var_sort: str = _INT

    @property
    def sort(self) -> str:
        return self.var_sort

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        rewritten = Field(self.array, self.index.substitute(mapping), self.attr, self.var_sort)
        return mapping.get(rewritten, rewritten)

    def atoms(self) -> Iterator[Term]:
        yield self
        yield from self.index.atoms()

    def evaluate(self, state: "DbState", env: Env) -> Value:
        index = self.index.evaluate(state, env)
        if not isinstance(index, int):
            raise EvaluationError(f"array index of {self!r} is not an integer")
        return state.read_field(self.array, index, self.attr)

    def __repr__(self) -> str:
        suffix = f".{self.attr}" if self.attr is not None else ""
        return f"{self.array}[{self.index!r}]{suffix}"


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _BinOp(Term):
    """Common behaviour of binary integer operators."""

    left: Term
    right: Term

    _symbol = "?"

    @property
    def sort(self) -> str:
        return _INT

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return type(self)(self.left.substitute(mapping), self.right.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def _apply(self, lhs: int, rhs: int) -> int:
        raise NotImplementedError

    def evaluate(self, state: "DbState", env: Env) -> Value:
        lhs = self.left.evaluate(state, env)
        rhs = self.right.evaluate(state, env)
        if not isinstance(lhs, int) or not isinstance(rhs, int):
            raise EvaluationError(f"non-integer operand in {self!r}")
        return self._apply(lhs, rhs)

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"


@dataclass(frozen=True)
class Add(_BinOp):
    """Integer addition."""

    _symbol = "+"

    def _apply(self, lhs: int, rhs: int) -> int:
        return lhs + rhs


@dataclass(frozen=True)
class Sub(_BinOp):
    """Integer subtraction."""

    _symbol = "-"

    def _apply(self, lhs: int, rhs: int) -> int:
        return lhs - rhs


@dataclass(frozen=True)
class Mul(_BinOp):
    """Integer multiplication."""

    _symbol = "*"

    def _apply(self, lhs: int, rhs: int) -> int:
        return lhs * rhs


@dataclass(frozen=True)
class Neg(Term):
    """Integer negation."""

    operand: Term

    @property
    def sort(self) -> str:
        return _INT

    def _substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return Neg(self.operand.substitute(mapping))

    def atoms(self) -> Iterator[Term]:
        yield from self.operand.atoms()

    def evaluate(self, state: "DbState", env: Env) -> Value:
        value = self.operand.evaluate(state, env)
        if not isinstance(value, int):
            raise EvaluationError(f"non-integer operand in {self!r}")
        return -value

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def is_rigid(term: Term) -> bool:
    """True if the term cannot change during any transaction's execution.

    Constants, parameters and logical variables are rigid; locals are rigid
    with respect to *other* transactions (no transaction can write another's
    workspace) but not with respect to the owning transaction.
    """
    if isinstance(term, (IntConst, BoolConst, StrConst, Param, LogicalVar)):
        return True
    if isinstance(term, (Add, Sub, Mul)):
        return is_rigid(term.left) and is_rigid(term.right)
    if isinstance(term, Neg):
        return is_rigid(term.operand)
    return False


def references_database(term: Term) -> bool:
    """True if evaluating the term touches the database state."""
    return any(isinstance(atom, (Item, Field)) for atom in term.atoms())


_HASHCONS_BASES.append(Term)
