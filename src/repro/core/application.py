"""Application declarations: the unit the analysis operates on.

The paper's setting (Section 5) is an *application* — a fixed set of
transaction types sharing a database with a consistency constraint ``I``.
The designer's problem is to pick, per type, the lowest isolation level at
which the type executes semantically correctly given the other types in the
set.  :class:`Application` packages exactly those ingredients, plus the
finite domains the bounded model checker needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domains import DomainSpec
from repro.core.formula import Formula, TRUE
from repro.core.program import (
    Delete,
    ForEach,
    Insert,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
)
from repro.errors import AnalysisError

_RELATIONAL_STATEMENTS = (Select, SelectScalar, SelectCount, Update, Insert, Delete, ForEach)


@dataclass
class Application:
    """A set of transaction types over one database.

    ``invariant`` is the full consistency constraint ``I`` (each
    transaction's ``consistency`` field holds its relevant conjuncts
    ``I_i``); ``spec`` is the bounded-model-checking domain, which should
    generate states satisfying ``I`` via its ``state_constraint``.
    """

    name: str
    transactions: tuple
    spec: DomainSpec | None = None
    invariant: Formula = TRUE
    description: str = ""
    assumptions: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [txn.name for txn in self.transactions]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise AnalysisError(
                f"duplicate transaction names in application {self.name!r}:"
                f" {', '.join(duplicates)} — every lookup by name"
                " (assumptions, level assignments, plans) would silently"
                " pick one of the duplicates"
            )

    def transaction(self, name: str) -> TransactionType:
        for txn in self.transactions:
            if txn.name == name:
                return txn
        raise AnalysisError(f"application {self.name!r} has no transaction {name!r}")

    @property
    def is_relational(self) -> bool:
        """Whether any transaction uses relational (predicate) statements."""
        return any(
            isinstance(stmt, _RELATIONAL_STATEMENTS)
            for txn in self.transactions
            for stmt in txn.statements()
        )

    def transaction_names(self) -> list:
        return [txn.name for txn in self.transactions]

    def assumption(self, target_name: str, source_name: str) -> Formula:
        """Concurrency assumption for a (target, source-instance) pair.

        The formula ranges over the target's parameters and the source's
        parameters renamed with the ``!2`` suffix (as produced by
        ``TransactionType.rename_params``).  It encodes application-level
        facts the paper uses implicitly — e.g. concurrent ``New_Order``
        instances are placed by *different* customers.  Defaults to TRUE.
        """
        return self.assumptions.get((target_name, source_name), TRUE)
