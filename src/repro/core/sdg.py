"""The static dependency graph (SDG): a conflict-graph view of an application.

The per-level theorems discharge non-interference obligations with a prover
and a bounded model checker, but a large fraction of those obligations are
trivially non-interfering because the statement and the assertion touch
disjoint data — a fact decidable from read/write sets alone.  This module
makes that fact a first-class artifact, in the spirit of the syntactic
"dangerous structures" line of work (Berenson et al., *A Critique of ANSI
SQL Isolation Levels*; Fekete et al.'s adjacent rw-antidependency pairs):

* per-statement and per-transaction **footprints** — the read, written and
  predicate-read :mod:`repro.core.resources` of a program, plus the
  resources its critical assertions (``I_i``, read postconditions, ``Q_i``)
  depend on;
* the **static conflict graph** over transaction *types*, with directed
  edges labelled ``wr`` (the source writes something the target reads),
  ``ww`` (overlapping write sets) and ``rw`` (the anti-dependency: the
  source reads something the target writes);
* **dangerous structures** — edge patterns that match the Critique's
  anomalies: an adjacent pair of rw-antidependencies with disjoint write
  sets (SNAPSHOT write skew, the paper's Example 3), and a
  read-modify-write cycle on a shared resource (the READ COMMITTED lost
  update);
* a per-level **statically safe** verdict: a type none of whose protected
  assertions can be reached by any partner's writes is correct at that
  level with no prover involvement at all;
* **plan pre-pruning** (:func:`prune_plan`): obligations whose
  footprint-disjointness the graph certifies are excused before they are
  dispatched to the interference checker.

Soundness boundary: footprint disjointness may only *certify safety*
(resources over-approximate reachable locations, so "disjoint" is exact);
dangerous structures may only *flag risk* (the annotations may tolerate the
anomaly, as the paper's Theorem 5 examples show).  The certification
pipeline (:mod:`repro.pipeline.certify`) therefore treats an SDG "safe"
verdict contradicting a prover failure as a bug, but an un-confirmed
dangerous structure as ordinary imprecision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import Application
from repro.core.program import (
    Delete,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
)
from repro.core.resources import Resource, overlaps
from repro.errors import AnalysisError

#: Conflict edge kinds (source -> target).
WR = "wr"  # source writes a resource the target reads
WW = "ww"  # source and target write sets overlap
RW = "rw"  # source reads a resource the target writes (anti-dependency)

EDGE_KINDS = (WR, WW, RW)

#: Excuse label stamped on pre-pruned obligations (see :func:`prune_plan`).
SDG_EXCUSE = "statically disjoint footprint (SDG)"


# ---------------------------------------------------------------------------
# footprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Footprint:
    """The resource footprint of one transaction type.

    ``reads``/``writes`` come from the program body; ``predicate_reads`` is
    the subset of reads contributed by relational WHERE clauses (the
    phantom-sensitive part); ``asserts`` is what the type's critical
    assertions — ``I_i``, every read postcondition, ``Q_i`` — depend on,
    i.e. the surface a partner's write must touch to interfere at all.
    """

    reads: frozenset
    writes: frozenset
    predicate_reads: frozenset
    asserts: frozenset

    def to_dict(self) -> dict:
        return {
            "reads": sorted(map(repr, self.reads)),
            "writes": sorted(map(repr, self.writes)),
            "predicate_reads": sorted(map(repr, self.predicate_reads)),
            "asserts": sorted(map(repr, self.asserts)),
        }


def _predicate_read_resources(txn: TransactionType) -> frozenset:
    """Resources read through relational predicates (WHERE clauses)."""
    out: set[Resource] = set()
    for stmt in txn.statements():
        if isinstance(stmt, (Select, SelectScalar, SelectCount, Update, Delete)):
            from repro.core.program import _where_resources

            out |= _where_resources(stmt.table, stmt.row, stmt.where)
    return frozenset(out)


def assertion_resources(txn: TransactionType) -> frozenset:
    """Resources the type's critical assertions depend on.

    Mirrors exactly the assertions the theorems protect: the consistency
    conjuncts ``I_i``, the (explicit or canonical) postcondition of every
    read, and the result ``Q_i``.  Over-approximating here is safe; the
    union is what a partner's write set must miss for the type to be
    statically safe.
    """
    from repro.core.conditions import read_post_assertions

    out: set[Resource] = set(txn.consistency.resources())
    out |= set(txn.result.resources())
    for _stmt, assertion in read_post_assertions(txn):
        out |= set(assertion.formula.resources())
    return frozenset(out)


def transaction_footprint(txn: TransactionType) -> Footprint:
    """The full static footprint of one transaction type."""
    return Footprint(
        reads=txn.read_resources(),
        writes=txn.written_resources(),
        predicate_reads=_predicate_read_resources(txn),
        asserts=assertion_resources(txn),
    )


def _overlap(a, b) -> frozenset:
    """The resources of ``a`` that can overlap some resource of ``b``."""
    from repro.core.resources import _pair_overlaps

    return frozenset(x for x in a if any(_pair_overlaps(x, y) for y in b))


# ---------------------------------------------------------------------------
# the conflict graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConflictEdge:
    """One labelled conflict between two transaction types.

    ``source == target`` models two concurrent instances of the same type
    (the paper's obligations always include the self-pair).  ``resources``
    is the overlapping resource set that induces the edge, taken from the
    source's side of the conflict.
    """

    source: str
    target: str
    kind: str
    resources: frozenset

    def __repr__(self) -> str:
        shared = ", ".join(sorted(map(repr, self.resources)))
        return f"<{self.kind} {self.source} -> {self.target} on {{{shared}}}>"

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "kind": self.kind,
            "resources": sorted(map(repr, self.resources)),
        }


@dataclass
class ConflictGraph:
    """The static conflict graph of one application."""

    application: str
    nodes: tuple
    footprints: dict = field(default_factory=dict)  # name -> Footprint
    edges: list = field(default_factory=list)  # ConflictEdge
    relational: bool = False

    def footprint(self, name: str) -> Footprint:
        try:
            return self.footprints[name]
        except KeyError:
            raise AnalysisError(f"no transaction type {name!r} in the conflict graph")

    def edges_between(self, source: str, target: str, kind: str | None = None) -> list:
        return [
            edge
            for edge in self.edges
            if edge.source == source
            and edge.target == target
            and (kind is None or edge.kind == kind)
        ]

    def edges_into(self, target: str, kind: str | None = None) -> list:
        return [
            edge
            for edge in self.edges
            if edge.target == target and (kind is None or edge.kind == kind)
        ]

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "nodes": list(self.nodes),
            "relational": self.relational,
            "footprints": {name: fp.to_dict() for name, fp in self.footprints.items()},
            "edges": [edge.to_dict() for edge in self.edges],
        }


def build_graph(app: Application) -> ConflictGraph:
    """Construct the static conflict graph of an application.

    Every ordered pair of types (self-pairs included — two instances of the
    same type run concurrently) gets a ``wr``, ``ww`` and/or ``rw`` edge
    when the corresponding footprints overlap at the resource granularity
    of :mod:`repro.core.resources` (indices and predicates ignored — sound
    for disjointness, conservative for conflict).
    """
    graph = ConflictGraph(
        application=app.name,
        nodes=tuple(app.transaction_names()),
        relational=app.is_relational,
    )
    for txn in app.transactions:
        graph.footprints[txn.name] = transaction_footprint(txn)
    for source in graph.nodes:
        src = graph.footprints[source]
        for target in graph.nodes:
            dst = graph.footprints[target]
            ww = _overlap(src.writes, dst.writes)
            if ww:
                graph.edges.append(ConflictEdge(source, target, WW, ww))
            wr = _overlap(src.writes, dst.reads | dst.asserts)
            if wr:
                graph.edges.append(ConflictEdge(source, target, WR, wr))
            rw = _overlap(src.reads | src.asserts, dst.writes)
            if rw:
                graph.edges.append(ConflictEdge(source, target, RW, rw))
    return graph


# ---------------------------------------------------------------------------
# dangerous structures
# ---------------------------------------------------------------------------

WRITE_SKEW = "snapshot-write-skew"
LOST_UPDATE = "rc-lost-update"


@dataclass(frozen=True)
class DangerousStructure:
    """One edge pattern matching a Critique anomaly.

    These are *risk flags*, not verdicts: the assertions of the involved
    types may tolerate the anomaly (the prover decides), and conversely
    their absence does not certify safety at the flagged level (predicate-
    level conflicts are coarsened away).  ``level`` names the weakest
    isolation level at which the pattern is live.
    """

    kind: str
    transactions: tuple  # involved type names, sorted
    level: str
    resources: frozenset
    detail: str

    def __repr__(self) -> str:
        return f"<{self.kind} {'/'.join(self.transactions)}>"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "transactions": list(self.transactions),
            "level": self.level,
            "resources": sorted(map(repr, self.resources)),
            "detail": self.detail,
        }


def dangerous_structures(graph: ConflictGraph) -> list:
    """Detect the Critique's anomaly patterns in the conflict graph.

    * **SNAPSHOT write skew** (A5B): a pair of types with rw
      anti-dependencies in both directions and *disjoint* write sets —
      first-committer-wins cannot break the cycle, so Theorem 5's
      condition 1 never applies (the banking Withdraw_sav/Withdraw_ch
      pair).
    * **READ COMMITTED lost update** (P4): a type that reads and rewrites a
      resource some partner also writes — short read locks admit the
      partner's write between the read and the write (the withdraw-race
      pair; self-pairs count).
    """
    from repro.core.conditions import READ_COMMITTED, SNAPSHOT

    found: list[DangerousStructure] = []
    seen_skew: set = set()
    for a in graph.nodes:
        fp_a = graph.footprints[a]
        for b in graph.nodes:
            fp_b = graph.footprints[b]
            pair = tuple(sorted((a, b)))
            # write skew: rw both ways, ww empty, distinct writes on each side
            if (
                pair not in seen_skew
                and fp_a.writes
                and fp_b.writes
                and not _overlap(fp_a.writes, fp_b.writes)
                and _overlap(fp_a.reads | fp_a.asserts, fp_b.writes)
                and _overlap(fp_b.reads | fp_b.asserts, fp_a.writes)
            ):
                seen_skew.add(pair)
                shared = _overlap(fp_a.reads | fp_a.asserts, fp_b.writes) | _overlap(
                    fp_b.reads | fp_b.asserts, fp_a.writes
                )
                found.append(
                    DangerousStructure(
                        kind=WRITE_SKEW,
                        transactions=pair,
                        level=SNAPSHOT,
                        resources=shared,
                        detail=(
                            f"adjacent rw anti-dependencies {a} <-> {b} with disjoint"
                            " write sets: first-committer-wins cannot break the cycle"
                        ),
                    )
                )
            # lost update: a reads-and-writes r, b writes r
            rmw = _overlap(_overlap(fp_a.reads, fp_a.writes), fp_b.writes)
            if rmw:
                found.append(
                    DangerousStructure(
                        kind=LOST_UPDATE,
                        transactions=tuple(sorted({a, b})),
                        level=READ_COMMITTED,
                        resources=rmw,
                        detail=(
                            f"{a} reads then rewrites {sorted(map(repr, rmw))} which"
                            f" {b} also writes: short read locks admit the lost update"
                        ),
                    )
                )
    # one lost-update record per unordered pair
    unique: dict = {}
    for structure in found:
        key = (structure.kind, structure.transactions)
        if key not in unique:
            unique[key] = structure
    return sorted(unique.values(), key=lambda s: (s.kind, s.transactions))


# ---------------------------------------------------------------------------
# per-level statically-safe verdicts
# ---------------------------------------------------------------------------


def statically_safe(graph: ConflictGraph, name: str, level: str) -> bool:
    """Whether the SDG alone certifies ``name`` correct at ``level``.

    The verdict is sound by construction: it holds exactly when every
    obligation the level's theorem would enumerate has a disjoint
    footprint, so the prover could only confirm it.

    * SERIALIZABLE — unconditionally correct (the paper's base case);
    * REPEATABLE READ in the conventional model — Theorem 4;
    * READ UNCOMMITTED — partner writes must miss ``I_i``, the read
      postconditions *and* ``Q_i`` (Theorem 1 checks all three);
    * everything else — partner writes must miss the read postconditions
      and ``Q_i`` (Theorems 2/3/5/6 protect those).

    ``I_i`` is part of the protected surface at every level: it appears in
    the Theorem 1 obligations directly, and read postconditions in the
    bundled applications conjoin it.  The distinction between levels is the
    granularity of the incoming edges — at READ UNCOMMITTED *statement*
    writes and rollbacks are the sources, above it whole transactions — but
    both coarsen to the same resource union, which is why one wr/ww edge
    check decides each rung.
    """
    from repro.core.conditions import (
        LEVEL_ORDER,
        REPEATABLE_READ,
        SERIALIZABLE,
    )

    if level not in LEVEL_ORDER:
        raise AnalysisError(f"unknown isolation level {level!r}")
    if level == SERIALIZABLE:
        return True
    if level == REPEATABLE_READ and not graph.relational:
        return True
    protected = graph.footprint(name).asserts
    for source in graph.nodes:
        if overlaps(protected, graph.footprints[source].writes):
            return False
    return True


def safe_levels(graph: ConflictGraph, name: str, ladder) -> list:
    """The ladder levels at which ``name`` is statically safe, in order."""
    return [level for level in ladder if statically_safe(graph, name, level)]


# ---------------------------------------------------------------------------
# obligation pre-pruning
# ---------------------------------------------------------------------------


def spec_write_resources(spec) -> frozenset:
    """The write surface of one planned obligation.

    Matches what the checker's own disjointness tier would compare against:
    the single statement's writes in ``statement`` mode, the source's whole
    write set in ``rollback`` and ``unit`` modes.
    """
    if spec.check == "statement":
        return spec.statement.written_resources()
    if spec.check in ("rollback", "unit"):
        return spec.source.written_resources()
    raise AnalysisError(f"unknown obligation check {spec.check!r}")


def prune_plan(specs) -> int:
    """Excuse footprint-disjoint obligations in place; returns the count.

    Sound and verdict-preserving: the excused obligations are exactly those
    the checker's first tier would decide "no interference (proved)" —
    disjointness is computed with the same :func:`repro.core.resources.
    overlaps` over the same resource sets — so level choices are identical
    with pruning on or off; only the dispatch work disappears.
    """
    pruned = 0
    for spec in specs:
        if spec.excused is not None:
            continue
        if not overlaps(spec.assertion.formula.resources(), spec_write_resources(spec)):
            spec.excused = SDG_EXCUSE
            pruned += 1
    return pruned
