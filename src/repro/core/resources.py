"""Coarse database *resources* used for footprint-disjointness reasoning.

The first (and cheapest) tier of the interference checker is purely
syntactic: a statement whose written resources are disjoint from the
resources an assertion depends on cannot interfere with that assertion
(paper, Section 2 — interference requires the statement to change something
the assertion mentions).

Resources deliberately ignore array indices and row predicates: two accesses
to ``acct_sav[i].bal`` and ``acct_sav[j].bal`` map to the *same* resource.
That keeps the disjointness tier sound (it may only declare disjointness when
no aliasing is possible); index- and predicate-level precision is recovered
by the symbolic and bounded-model tiers in :mod:`repro.core.interference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Resource:
    """Base class for resources; only the subclasses below are instantiated."""


@dataclass(frozen=True)
class ScalarResource(Resource):
    """A named scalar database item."""

    name: str

    def __repr__(self) -> str:
        return f"item:{self.name}"


@dataclass(frozen=True)
class ArrayResource(Resource):
    """All elements of one attribute of a record array.

    ``attr`` is ``None`` for arrays of plain values and for whole-record
    operations (insert/delete of a record touches every attribute).
    """

    array: str
    attr: str | None = None

    def __repr__(self) -> str:
        suffix = f".{self.attr}" if self.attr is not None else ".*"
        return f"array:{self.array}{suffix}"


@dataclass(frozen=True)
class TableResource(Resource):
    """One attribute of a relational table, or its row membership.

    ``attr is None`` denotes row membership itself — the resource written by
    INSERT and DELETE and read by every quantifier, aggregate and membership
    assertion over the table.
    """

    table: str
    attr: str | None = None

    def __repr__(self) -> str:
        suffix = f".{self.attr}" if self.attr is not None else ".<rows>"
        return f"table:{self.table}{suffix}"


def _pair_overlaps(a: Resource, b: Resource) -> bool:
    """Whether two individual resources can denote overlapping state."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ScalarResource):
        return a == b
    if isinstance(a, ArrayResource) and isinstance(b, ArrayResource):
        if a.array != b.array:
            return False
        return a.attr is None or b.attr is None or a.attr == b.attr
    if isinstance(a, TableResource) and isinstance(b, TableResource):
        if a.table != b.table:
            return False
        return a.attr is None or b.attr is None or a.attr == b.attr
    return False


def overlaps(read: Iterable[Resource], written: Iterable[Resource]) -> bool:
    """Whether any written resource can overlap any read resource.

    Membership resources (``attr is None``) overlap every attribute of the
    same table or array, so INSERT/DELETE conservatively clash with any
    assertion over the table.
    """
    written_list = list(written)
    return any(_pair_overlaps(r, w) for r in read for w in written_list)
