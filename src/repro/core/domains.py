"""Finite domains for bounded model checking.

The symbolic tier of the interference checker covers the conventional
(scalar/array) fragment exactly.  Relational assertions — quantifiers over
table rows, COUNT aggregates, membership, phantoms — are checked by *bounded
model checking* instead: enumerate (or sample) small concrete database
states and variable assignments, execute the candidate interfering statement
or transaction, and watch whether the assertion flips from true to false.

A :class:`DomainSpec` describes that finite search space for one
application: value ranges for items, array elements, table attributes and
variables, bounds on table sizes, and an optional global constraint (the
application's consistency constraint ``I``) that generated states must
satisfy.

Enumeration is exhaustive whenever the space fits the case budget;
otherwise a seeded pseudo-random sample of the same budget is drawn and the
result is flagged as sampled (see :class:`SearchSpace.exhaustive`).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.formula import Formula
from repro.core.state import DbState
from repro.core.terms import Local, LogicalVar, Param, Term, Value
from repro.errors import AnalysisError

#: Default budget of concrete cases examined per obligation.
DEFAULT_BUDGET = 4000

#: Default value pool used for variables with no declared domain.
DEFAULT_INT_VALUES = (0, 1, 2)


@dataclass(frozen=True)
class ItemDomain:
    """Value pool for a scalar database item."""

    name: str
    values: tuple

    def size(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class ArrayDomain:
    """Index set and per-attribute value pools for a record array."""

    name: str
    indices: tuple
    attrs: tuple  # tuple of (attr_name_or_None, value_pool)

    def size(self) -> int:
        total = 1
        for _attr, pool in self.attrs:
            total *= len(pool) ** len(self.indices)
        return total


@dataclass(frozen=True)
class TableDomain:
    """Row shape and size bounds for a relational table.

    ``attrs`` maps attribute names to value pools.  Tables are enumerated as
    multisets of rows drawn from the attribute product, with between
    ``min_rows`` and ``max_rows`` rows.  ``row_filter`` (a plain callable on
    the row dict) prunes structurally impossible rows early.
    """

    name: str
    attrs: tuple  # tuple of (attr_name, value_pool)
    max_rows: int = 2
    min_rows: int = 0
    row_filter: Callable[[dict], bool] | None = None

    def candidate_rows(self) -> list:
        names = [attr for attr, _pool in self.attrs]
        pools = [pool for _attr, pool in self.attrs]
        rows = [dict(zip(names, combo)) for combo in itertools.product(*pools)]
        if self.row_filter is not None:
            rows = [row for row in rows if self.row_filter(row)]
        return rows

    def size(self) -> int:
        per_row = len(self.candidate_rows())
        total = 0
        for count in range(self.min_rows, self.max_rows + 1):
            total += _multiset_count(per_row, count)
        return total


def _multiset_count(pool: int, take: int) -> int:
    """Number of multisets of size ``take`` from ``pool`` distinct elements."""
    if take == 0:
        return 1
    if pool == 0:
        return 0
    import math

    return math.comb(pool + take - 1, take)


@dataclass
class DomainSpec:
    """The complete finite search space for one application's analysis."""

    items: tuple = ()
    arrays: tuple = ()
    tables: tuple = ()
    var_domains: dict = field(default_factory=dict)  # var name -> value pool
    default_values: tuple = DEFAULT_INT_VALUES
    state_constraint: Callable[[DbState], bool] | None = None

    def values_for(self, term: Term) -> tuple:
        """Value pool for a free variable term (local/param/logical)."""
        name = getattr(term, "name", None)
        if name is not None and name in self.var_domains:
            return tuple(self.var_domains[name])
        # parameter renamed for pairwise analysis: strip the instance suffix
        if name is not None:
            for suffix in ("!1", "!2"):
                if name.endswith(suffix) and name[: -len(suffix)] in self.var_domains:
                    return tuple(self.var_domains[name[: -len(suffix)]])
        if term.sort == "bool":
            return (False, True)
        if term.sort == "str":
            return ("a", "b")
        return self.default_values

    # -- state enumeration ---------------------------------------------------
    def state_space_size(self) -> int:
        total = 1
        for item in self.items:
            total *= item.size()
        for array in self.arrays:
            total *= array.size()
        for table in self.tables:
            total *= table.size()
        return total

    def _state_choices(self) -> list:
        """Per-slot choice lists whose product is the full state space."""
        slots: list = []
        for item in self.items:
            slots.append([("item", item.name, value) for value in item.values])
        for array in self.arrays:
            for index in array.indices:
                for attr, pool in array.attrs:
                    slots.append([("field", array.name, index, attr, value) for value in pool])
        for table in self.tables:
            rows = table.candidate_rows()
            contents: list = []
            for count in range(table.min_rows, table.max_rows + 1):
                for combo in itertools.combinations_with_replacement(range(len(rows)), count):
                    contents.append(("table", table.name, tuple(rows[i] for i in combo)))
            slots.append(contents)
        return slots

    def _build_state(self, picks: Sequence) -> DbState:
        state = DbState()
        for pick in picks:
            kind = pick[0]
            if kind == "item":
                state.write_item(pick[1], pick[2])
            elif kind == "field":
                state.write_field(pick[1], pick[2], pick[3], pick[4])
            else:
                for row in pick[2]:
                    state.insert_row(pick[1], dict(row))
        return state

    def iter_states(self, budget: int, rng: random.Random) -> "SearchSpace":
        """States of the space, exhaustive when they fit the budget."""
        slots = self._state_choices()
        return SearchSpace(slots, self._build_state, budget, rng, self.state_constraint)


class SearchSpace:
    """Iterator over a cartesian product, exhaustive or sampled.

    ``exhaustive`` reports which mode was used — the interference checker
    propagates it into the confidence of its "no witness found" verdicts.
    """

    def __init__(
        self,
        slots: Sequence,
        build: Callable,
        budget: int,
        rng: random.Random,
        constraint: Callable | None = None,
    ) -> None:
        if any(len(slot) == 0 for slot in slots):
            raise AnalysisError("empty domain slot: the search space is void")
        self._slots = slots
        self._build = build
        self._budget = budget
        self._rng = rng
        self._constraint = constraint
        size = 1
        for slot in slots:
            size *= len(slot)
            if size > budget:
                break
        self.size = size
        self.exhaustive = size <= budget

    def __iter__(self) -> Iterator:
        produced = 0
        if self.exhaustive:
            for picks in itertools.product(*self._slots):
                candidate = self._build(picks)
                if self._constraint is not None and not self._constraint(candidate):
                    continue
                yield candidate
            return
        while produced < self._budget:
            picks = [self._rng.choice(slot) for slot in self._slots]
            candidate = self._build(picks)
            produced += 1
            if self._constraint is not None and not self._constraint(candidate):
                continue
            yield candidate


def iter_assignments(
    terms: Sequence[Term],
    spec: DomainSpec,
    budget: int,
    rng: random.Random,
) -> SearchSpace:
    """Enumerate value assignments for the given free variable terms."""
    unique: list[Term] = []
    seen = set()
    for term in terms:
        if term not in seen and isinstance(term, (Local, Param, LogicalVar)):
            seen.add(term)
            unique.append(term)
    slots = [[(term, value) for value in spec.values_for(term)] for term in unique]

    def build(picks: Sequence) -> dict:
        return {term: value for term, value in picks}

    return SearchSpace(slots, build, budget, rng)


def split_budget(total: int, parts: int) -> int:
    """Divide a case budget across nested enumeration levels."""
    if parts <= 0:
        return total
    return max(1, int(total ** (1.0 / parts)))


def partition_assignments(space: "SearchSpace | Iterable", chunks: int) -> list:
    """Materialise a search space and split it into contiguous chunks.

    The partition is only meaningful for exhaustive spaces (a sampled
    space's draws depend on shared rng state, so splitting it would change
    which cases are examined); callers gate on
    :attr:`SearchSpace.exhaustive` before fanning chunks out — see
    :meth:`repro.core.interference.InterferenceChecker._bmc_chunkable`.
    """
    from repro.core.parallel import chunked

    return chunked(list(space), chunks)
