"""Transaction programs: the statement IR and transaction-type declarations.

The paper's program model (Section 3.1) has three statement kinds for the
conventional database — read, write and local assignment — plus conditionals
and loops whose guards mention only local variables.  Section 4 extends the
model to relational databases with predicate-bearing SELECT / UPDATE /
INSERT / DELETE statements.  This module implements both.

Statements are immutable and serve three masters:

* the *static analysis* asks for their read/written resources, their
  symbolic effects (via :mod:`repro.core.sp` and :mod:`repro.core.effects`)
  and their annotations;
* the *bounded model checker* executes them directly against a
  :class:`repro.core.state.DbState`;
* the *schedule simulator* executes them operation-by-operation through the
  transactional engine (:mod:`repro.sched.interpreter`).

A :class:`TransactionType` packages a program body with the paper's triple
(1): the relevant consistency conjuncts ``I_i``, the parameter precondition
``B_i``, the result ``Q_i``, and the logical-variable snapshot (``x_i = X_i``)
that lets ``Q_i`` refer to initial values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Mapping, Sequence

from repro.core.formula import (
    Formula,
    RowAttr,
    TRUE,
    _bind_row,
)
from repro.core.resources import ArrayResource, Resource, ScalarResource, TableResource
from repro.core.state import DbState, Row
from repro.core.terms import Field, Item, Local, LogicalVar, Param, Term, Value
from repro.errors import EvaluationError, ProgramError

#: Fuel cap for concrete execution of While loops (model checking only).
LOOP_FUEL = 64


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class of all program statements."""

    def written_resources(self) -> frozenset[Resource]:
        """Database resources this statement (or its body) may write."""
        return frozenset()

    def read_resources(self) -> frozenset[Resource]:
        """Database resources this statement (or its body) may read."""
        return frozenset()

    def execute(self, state: DbState, env: dict) -> None:
        """Concrete big-step execution, mutating ``state`` and ``env``."""
        raise NotImplementedError

    def substatements(self) -> Sequence["Statement"]:
        """Directly nested statements (bodies of control structures)."""
        return ()

    def fingerprint(self) -> str:
        """Stable structural digest (see :mod:`repro.core.cache`)."""
        from repro.core.cache import fingerprint

        return fingerprint(self)

    @property
    def is_db_write(self) -> bool:
        """Whether this single statement writes the database."""
        return False

    @property
    def is_db_read(self) -> bool:
        """Whether this single statement reads the database."""
        return False


def _target_resource(target: Term) -> Resource:
    if isinstance(target, Item):
        return ScalarResource(target.name)
    if isinstance(target, Field):
        return ArrayResource(target.array, target.attr)
    raise ProgramError(f"not a writable database reference: {target!r}")


def _term_read_resources(term: Term) -> frozenset[Resource]:
    out: set[Resource] = set()
    for atom in term.atoms():
        if isinstance(atom, Item):
            out.add(ScalarResource(atom.name))
        elif isinstance(atom, Field):
            out.add(ArrayResource(atom.array, atom.attr))
    return frozenset(out)


@dataclass(frozen=True)
class Read(Statement):
    """``local := database_item`` — an atomic read statement.

    ``post`` is the statement's *critical assertion*: the postcondition of
    the read that the per-level theorems require to be interference-free.
    When omitted the strongest postcondition is derived automatically.
    """

    into: Local
    source: Term  # Item or Field
    post: Formula | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Item, Field)):
            raise ProgramError(f"read source must be an item or field: {self.source!r}")

    def read_resources(self) -> frozenset[Resource]:
        return _term_read_resources(self.source)

    def execute(self, state: DbState, env: dict) -> None:
        env[self.into] = self.source.evaluate(state, env)

    @property
    def is_db_read(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.into!r} := {self.source!r}"


@dataclass(frozen=True)
class ReadRecord(Statement):
    """Atomically read several attributes of one array record.

    Locking granularity in the paper's Example 2 is *records*: a reader of
    ``emp[i]`` sees the whole record under one short read lock, so a
    half-updated record (``Hours`` between its two writes) is either fully
    visible or not at all at READ COMMITTED and above.  ``binds`` maps
    attribute names to the locals that receive them.
    """

    array: str
    index: Term
    binds: tuple[tuple[str, Local], ...]
    post: Formula | None = None
    label: str | None = None

    def read_resources(self) -> frozenset[Resource]:
        out = {ArrayResource(self.array, attr) for attr, _local in self.binds}
        return frozenset(out) | _term_read_resources(self.index)

    def execute(self, state: DbState, env: dict) -> None:
        index = self.index.evaluate(state, env)
        for attr, local in self.binds:
            env[local] = state.read_field(self.array, index, attr)

    @property
    def is_db_read(self) -> bool:
        return True

    def __repr__(self) -> str:
        attrs = ", ".join(attr for attr, _local in self.binds)
        return f"read record {self.array}[{self.index!r}].({attrs})"


@dataclass(frozen=True)
class Write(Statement):
    """``database_item := expr`` — an atomic write statement.

    The expression may mention locals, parameters and logical variables but
    not database items (the model's write statement transfers a workspace
    value into the database; computations happen in local assignments).
    """

    target: Term  # Item or Field
    value: Term
    post: Formula | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.target, (Item, Field)):
            raise ProgramError(f"write target must be an item or field: {self.target!r}")
        for atom in self.value.atoms():
            if isinstance(atom, (Item, Field)):
                raise ProgramError(
                    f"write value must not read the database directly: {self.value!r};"
                    " read into a local first"
                )

    def written_resources(self) -> frozenset[Resource]:
        return frozenset({_target_resource(self.target)})

    def read_resources(self) -> frozenset[Resource]:
        if isinstance(self.target, Field):
            return _term_read_resources(self.target.index)
        return frozenset()

    def execute(self, state: DbState, env: dict) -> None:
        value = self.value.evaluate(state, env)
        if isinstance(self.target, Item):
            state.write_item(self.target.name, value)
        else:
            index = self.target.index.evaluate(state, env)
            state.write_field(self.target.array, index, self.target.attr, value)

    @property
    def is_db_write(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.target!r} := {self.value!r}"


@dataclass(frozen=True)
class LocalAssign(Statement):
    """``local := expr`` over workspace values only."""

    into: Local
    value: Term
    post: Formula | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        for atom in self.value.atoms():
            if isinstance(atom, (Item, Field)):
                raise ProgramError(
                    f"local assignment must not read the database: {self.value!r}"
                )

    def execute(self, state: DbState, env: dict) -> None:
        env[self.into] = self.value.evaluate(state, env)

    def __repr__(self) -> str:
        return f"{self.into!r} := {self.value!r} (local)"


@dataclass(frozen=True)
class If(Statement):
    """Conditional with a guard over local variables and parameters."""

    cond: Formula
    then: tuple[Statement, ...]
    orelse: tuple[Statement, ...] = ()
    label: str | None = None

    def __post_init__(self) -> None:
        for atom in self.cond.atoms():
            if isinstance(atom, (Item, Field)):
                raise ProgramError(f"guard must not read the database: {self.cond!r}")

    def written_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in itertools.chain(self.then, self.orelse):
            out |= stmt.written_resources()
        return out

    def read_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in itertools.chain(self.then, self.orelse):
            out |= stmt.read_resources()
        return out

    def substatements(self) -> Sequence[Statement]:
        return tuple(self.then) + tuple(self.orelse)

    def execute(self, state: DbState, env: dict) -> None:
        branch = self.then if self.cond.evaluate(state, env) else self.orelse
        for stmt in branch:
            stmt.execute(state, env)

    def __repr__(self) -> str:
        return f"if {self.cond!r} then <{len(self.then)} stmts> else <{len(self.orelse)} stmts>"


@dataclass(frozen=True)
class While(Statement):
    """Loop with a guard over local variables and parameters."""

    cond: Formula
    body: tuple[Statement, ...]
    label: str | None = None

    def __post_init__(self) -> None:
        for atom in self.cond.atoms():
            if isinstance(atom, (Item, Field)):
                raise ProgramError(f"guard must not read the database: {self.cond!r}")

    def written_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.written_resources()
        return out

    def read_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.read_resources()
        return out

    def substatements(self) -> Sequence[Statement]:
        return tuple(self.body)

    def execute(self, state: DbState, env: dict) -> None:
        fuel = LOOP_FUEL
        while self.cond.evaluate(state, env):
            fuel -= 1
            if fuel < 0:
                raise EvaluationError(f"loop fuel exhausted in {self!r}")
            for stmt in self.body:
                stmt.execute(state, env)

    def __repr__(self) -> str:
        return f"while {self.cond!r} do <{len(self.body)} stmts>"


# ---------------------------------------------------------------------------
# relational statements
# ---------------------------------------------------------------------------


def _where_resources(table: str, row: str, where: Formula) -> frozenset[Resource]:
    out: set[Resource] = {TableResource(table)}
    for atom in where.atoms_with_bound():
        if isinstance(atom, RowAttr) and atom.row == row:
            out.add(TableResource(table, atom.attr))
    return frozenset(out)


def _match(where: Formula, row_var: str, state: DbState, env: dict) -> Callable[[Row], bool]:
    def predicate(row: Row) -> bool:
        return where.evaluate(state, _bind_row(env, row_var, row))

    return predicate


@dataclass(frozen=True)
class Select(Statement):
    """``SELECT attrs INTO :into FROM table WHERE where`` — a buffer read.

    Binds the local ``into`` to the list of matching rows (projected to
    ``attrs`` when given, whole rows otherwise).  The distinguished row
    variable of ``where`` is ``row``.
    """

    table: str
    into: Local
    where: Formula = TRUE
    attrs: tuple[str, ...] | None = None
    row: str = "r"
    post: Formula | None = None
    label: str | None = None

    def read_resources(self) -> frozenset[Resource]:
        out = set(_where_resources(self.table, self.row, self.where))
        for attr in self.attrs or ():
            out.add(TableResource(self.table, attr))
        return frozenset(out)

    def execute(self, state: DbState, env: dict) -> None:
        rows = [dict(row) for row in state.rows(self.table) if _match(self.where, self.row, state, env)(row)]
        if self.attrs is not None:
            rows = [{attr: row.get(attr) for attr in self.attrs} for row in rows]
        env[self.into] = tuple(tuple(sorted(row.items())) for row in rows)

    @property
    def is_db_read(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SELECT * INTO {self.into!r} FROM {self.table} WHERE {self.where!r}"


@dataclass(frozen=True)
class SelectScalar(Statement):
    """``SELECT attr INTO :into FROM table WHERE where`` — single value.

    Reads the attribute of the first matching row; ``default`` is bound when
    no row matches (mirrors an SQL reader returning an empty result).
    """

    table: str
    attr: str
    into: Local
    where: Formula = TRUE
    row: str = "r"
    default: Value | None = None
    post: Formula | None = None
    label: str | None = None

    def read_resources(self) -> frozenset[Resource]:
        out = set(_where_resources(self.table, self.row, self.where))
        out.add(TableResource(self.table, self.attr))
        return frozenset(out)

    def execute(self, state: DbState, env: dict) -> None:
        for row in state.rows(self.table):
            if self.where.evaluate(state, _bind_row(env, self.row, row)):
                env[self.into] = row.get(self.attr, self.default)
                return
        env[self.into] = self.default

    @property
    def is_db_read(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SELECT {self.attr} INTO {self.into!r} FROM {self.table} WHERE {self.where!r}"


@dataclass(frozen=True)
class SelectCount(Statement):
    """``SELECT COUNT(*) INTO :into FROM table WHERE where``."""

    table: str
    into: Local
    where: Formula = TRUE
    row: str = "r"
    post: Formula | None = None
    label: str | None = None

    def read_resources(self) -> frozenset[Resource]:
        return _where_resources(self.table, self.row, self.where)

    def execute(self, state: DbState, env: dict) -> None:
        count = 0
        for row in state.rows(self.table):
            if self.where.evaluate(state, _bind_row(env, self.row, row)):
                count += 1
        env[self.into] = count

    @property
    def is_db_read(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SELECT COUNT(*) INTO {self.into!r} FROM {self.table} WHERE {self.where!r}"


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET attr = expr, ... WHERE where``.

    Set expressions may mention the row being updated through
    :class:`RowAttr` terms of the statement's row variable, plus locals and
    parameters.
    """

    table: str
    sets: tuple[tuple[str, Term], ...]
    where: Formula = TRUE
    row: str = "r"
    post: Formula | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        from repro.core.terms import coerce

        object.__setattr__(
            self, "sets", tuple((attr, coerce(term)) for attr, term in self.sets)
        )

    def written_resources(self) -> frozenset[Resource]:
        return frozenset(TableResource(self.table, attr) for attr, _term in self.sets)

    def read_resources(self) -> frozenset[Resource]:
        out = set(_where_resources(self.table, self.row, self.where))
        for _attr, term in self.sets:
            for atom in term.atoms():
                if isinstance(atom, RowAttr) and atom.row == self.row:
                    out.add(TableResource(self.table, atom.attr))
        return frozenset(out)

    def execute(self, state: DbState, env: dict) -> None:
        def updater(row: Row) -> Mapping[str, Value]:
            row_env = _bind_row(env, self.row, row)
            return {attr: term.evaluate(state, row_env) for attr, term in self.sets}

        state.update_rows(self.table, _match(self.where, self.row, state, env), updater)

    @property
    def is_db_write(self) -> bool:
        return True

    def __repr__(self) -> str:
        assignments = ", ".join(f"{attr} = {term!r}" for attr, term in self.sets)
        return f"UPDATE {self.table} SET {assignments} WHERE {self.where!r}"


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table VALUES (...)`` with expression-valued attributes."""

    table: str
    values: tuple[tuple[str, Term], ...]
    post: Formula | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        from repro.core.terms import coerce

        object.__setattr__(
            self, "values", tuple((attr, coerce(term)) for attr, term in self.values)
        )

    def written_resources(self) -> frozenset[Resource]:
        return frozenset({TableResource(self.table)})

    def execute(self, state: DbState, env: dict) -> None:
        row = {attr: term.evaluate(state, env) for attr, term in self.values}
        state.insert_row(self.table, row)

    @property
    def is_db_write(self) -> bool:
        return True

    def __repr__(self) -> str:
        pairs = ", ".join(f"{attr}={term!r}" for attr, term in self.values)
        return f"INSERT INTO {self.table} ({pairs})"


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table WHERE where``."""

    table: str
    where: Formula = TRUE
    row: str = "r"
    post: Formula | None = None
    label: str | None = None

    def written_resources(self) -> frozenset[Resource]:
        return frozenset({TableResource(self.table)})

    def read_resources(self) -> frozenset[Resource]:
        return _where_resources(self.table, self.row, self.where)

    def execute(self, state: DbState, env: dict) -> None:
        state.delete_rows(self.table, _match(self.where, self.row, state, env))

    @property
    def is_db_write(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"DELETE FROM {self.table} WHERE {self.where!r}"


@dataclass(frozen=True)
class Rollback(Statement):
    """Explicitly abort the enclosing transaction — an engine-level rollback.

    Only meaningful under the step interpreter, where the engine undoes the
    transaction's earlier writes; the big-step executor cannot un-execute
    preceding statements, so atomic execution rejects it.  Used to model
    scripted ``a<t>`` history tokens and rollback scenarios.
    """

    reason: str = "rollback"
    label: str | None = None

    def execute(self, state: DbState, env: dict) -> None:
        raise ProgramError("Rollback cannot be executed atomically")

    def __repr__(self) -> str:
        return "ROLLBACK"


@dataclass(frozen=True)
class ForEach(Statement):
    """Iterate over a row buffer previously bound by :class:`Select`.

    For each buffered row, the listed attributes are copied into locals and
    the body runs — the shape of the paper's ``Delivery`` loop
    (``while ord_inf := next in buff``).
    """

    buffer: Local
    bind: tuple[tuple[str, Local], ...]
    body: tuple[Statement, ...]
    label: str | None = None

    def written_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.written_resources()
        return out

    def read_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.read_resources()
        return out

    def substatements(self) -> Sequence[Statement]:
        return tuple(self.body)

    def execute(self, state: DbState, env: dict) -> None:
        buffered = env.get(self.buffer, ())
        for packed in buffered:
            row = dict(packed)
            for attr, local in self.bind:
                env[local] = row.get(attr)
            for stmt in self.body:
                stmt.execute(state, env)

    def __repr__(self) -> str:
        return f"foreach row of {self.buffer!r} do <{len(self.body)} stmts>"


# ---------------------------------------------------------------------------
# transaction types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransactionType:
    """A transaction program together with its specification triple (1).

    ``consistency`` is ``I_i`` — the conjuncts of the database consistency
    constraint the transaction relies on and re-establishes; ``param_pre``
    is ``B_i``; ``result`` is ``Q_i``.  ``snapshot`` binds logical variables
    to terms evaluated at transaction start (the paper's ``x_i = X_i``
    conjunct), so ``Q_i`` can refer to initial values.
    """

    name: str
    params: tuple[Param, ...] = ()
    body: tuple[Statement, ...] = ()
    consistency: Formula = TRUE
    param_pre: Formula = TRUE
    result: Formula = TRUE
    snapshot: tuple[tuple[LogicalVar, Term], ...] = ()

    def fingerprint(self) -> str:
        """Stable structural digest (see :mod:`repro.core.cache`)."""
        from repro.core.cache import fingerprint

        return fingerprint(self)

    def walk(self) -> Iterator[tuple[tuple[int, ...], Statement]]:
        """Yield ``(path, statement)`` for every statement, depth-first."""

        def visit(stmts: Sequence[Statement], prefix: tuple[int, ...]):
            for position, stmt in enumerate(stmts):
                path = prefix + (position,)
                yield path, stmt
                yield from visit(stmt.substatements(), path)

        yield from visit(self.body, ())

    def statements(self) -> list:
        """All statements in program order, control bodies flattened."""
        return [stmt for _path, stmt in self.walk()]

    def read_statements(self) -> list:
        """All database-reading statements (reads and SELECT variants)."""
        return [stmt for stmt in self.statements() if stmt.is_db_read]

    def write_statements(self) -> list:
        """All database-writing statements."""
        return [stmt for stmt in self.statements() if stmt.is_db_write]

    def written_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.written_resources()
        return out

    def read_resources(self) -> frozenset[Resource]:
        out: frozenset[Resource] = frozenset()
        for stmt in self.body:
            out |= stmt.read_resources()
        return out

    def initial_env(self, args: Mapping[str, Value], state: DbState) -> dict:
        """Bind parameters and the logical-variable snapshot at start."""
        env: dict = {}
        for param in self.params:
            if param.name not in args:
                raise ProgramError(f"{self.name}: missing argument {param.name!r}")
            env[param] = args[param.name]
        for logical, term in self.snapshot:
            env[logical] = term.evaluate(state, env)
        return env

    def run(self, state: DbState, args: Mapping[str, Value]) -> dict:
        """Execute the whole program atomically against ``state``.

        Used by the bounded model checker and the serial oracle; returns the
        final environment (so ``Q_i`` can be evaluated against it).
        """
        env = self.initial_env(args, state)
        for stmt in self.body:
            stmt.execute(state, env)
        return env

    def rename_params(self, suffix: str) -> "TransactionType":
        """A copy with every parameter renamed ``p`` -> ``p<suffix>``.

        Pairwise interference analysis must keep the two transactions'
        parameters distinct so the prover can case-split on aliasing.
        """
        mapping: dict[Term, Term] = {
            param: Param(param.name + suffix, param.var_sort) for param in self.params
        }
        mapping.update(
            {
                logical: LogicalVar(logical.name + suffix, logical.var_sort)
                for logical, _term in self.snapshot
            }
        )
        renamed_locals = _collect_locals(self.body)
        mapping.update(
            {local: Local(local.name + suffix, local.var_sort) for local in renamed_locals}
        )
        return TransactionType(
            name=self.name,
            params=tuple(mapping[p] for p in self.params),  # type: ignore[misc]
            body=tuple(_substitute_statement(stmt, mapping) for stmt in self.body),
            consistency=self.consistency.substitute(mapping),
            param_pre=self.param_pre.substitute(mapping),
            result=self.result.substitute(mapping),
            snapshot=tuple(
                (mapping[logical], term.substitute(mapping))  # type: ignore[misc]
                for logical, term in self.snapshot
            ),
        )


def _collect_locals(stmts: Sequence[Statement]) -> set:
    out: set = set()

    def visit(statement: Statement) -> None:
        for attr_name in ("into", "buffer"):
            target = getattr(statement, attr_name, None)
            if isinstance(target, Local):
                out.add(target)
        if isinstance(statement, ForEach):
            for _attr, local in statement.bind:
                out.add(local)
        if isinstance(statement, ReadRecord):
            for _attr, local in statement.binds:
                out.add(local)
        for term_attr in ("value", "source", "target"):
            term = getattr(statement, term_attr, None)
            if isinstance(term, Term):
                for atom in term.atoms():
                    if isinstance(atom, Local):
                        out.add(atom)
        for formula_attr in ("cond", "where"):
            guard = getattr(statement, formula_attr, None)
            if isinstance(guard, Formula):
                for atom in guard.atoms():
                    if isinstance(atom, Local):
                        out.add(atom)
        for pairs_attr in ("sets", "values"):
            pairs = getattr(statement, pairs_attr, None)
            if pairs:
                for _attr, term in pairs:
                    for atom in term.atoms():
                        if isinstance(atom, Local):
                            out.add(atom)
        for sub in statement.substatements():
            visit(sub)

    for stmt in stmts:
        visit(stmt)
    return out


def _substitute_statement(stmt: Statement, mapping: Mapping[Term, Term]) -> Statement:
    """Apply a term substitution across a statement tree."""

    def sub_formula(f: Formula | None) -> Formula | None:
        return None if f is None else f.substitute(mapping)

    if isinstance(stmt, Read):
        return replace(
            stmt,
            into=mapping.get(stmt.into, stmt.into),
            source=stmt.source.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, Write):
        return replace(
            stmt,
            target=stmt.target.substitute(mapping),
            value=stmt.value.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, LocalAssign):
        return replace(
            stmt,
            into=mapping.get(stmt.into, stmt.into),
            value=stmt.value.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, If):
        return replace(
            stmt,
            cond=stmt.cond.substitute(mapping),
            then=tuple(_substitute_statement(s, mapping) for s in stmt.then),
            orelse=tuple(_substitute_statement(s, mapping) for s in stmt.orelse),
        )
    if isinstance(stmt, While):
        return replace(
            stmt,
            cond=stmt.cond.substitute(mapping),
            body=tuple(_substitute_statement(s, mapping) for s in stmt.body),
        )
    if isinstance(stmt, Select):
        return replace(
            stmt,
            into=mapping.get(stmt.into, stmt.into),
            where=stmt.where.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, SelectScalar):
        return replace(
            stmt,
            into=mapping.get(stmt.into, stmt.into),
            where=stmt.where.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, SelectCount):
        return replace(
            stmt,
            into=mapping.get(stmt.into, stmt.into),
            where=stmt.where.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, Update):
        return replace(
            stmt,
            sets=tuple((attr, term.substitute(mapping)) for attr, term in stmt.sets),
            where=stmt.where.substitute(mapping),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, Insert):
        return replace(
            stmt,
            values=tuple((attr, term.substitute(mapping)) for attr, term in stmt.values),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, Delete):
        return replace(stmt, where=stmt.where.substitute(mapping), post=sub_formula(stmt.post))
    if isinstance(stmt, ForEach):
        return replace(
            stmt,
            buffer=mapping.get(stmt.buffer, stmt.buffer),
            bind=tuple((attr, mapping.get(local, local)) for attr, local in stmt.bind),
            body=tuple(_substitute_statement(s, mapping) for s in stmt.body),
        )
    if isinstance(stmt, ReadRecord):
        return replace(
            stmt,
            index=stmt.index.substitute(mapping),
            binds=tuple((attr, mapping.get(local, local)) for attr, local in stmt.binds),
            post=sub_formula(stmt.post),
        )
    if isinstance(stmt, Rollback):
        return stmt
    raise ProgramError(f"unknown statement kind: {stmt!r}")
