"""Verdict cache: memoised interference checks with structural fingerprints.

The per-level theorems (Thms 1-6) generate heavily overlapping obligation
sets.  A single chooser run over the extended ladder re-discharges the same
``(statement, assertion, assumption)`` triple at READ UNCOMMITTED, READ
COMMITTED, REPEATABLE READ and SNAPSHOT, and — because the consistency
constraint ``I`` is shared — across target transactions too.  The verdict of
one interference check is *level-independent*: it states whether the Hoare
triple ``{P ∧ pre} S {P}`` holds, a fact about the statement and the
assertion, not about the isolation level whose theorem demanded it (see
``docs/PERFORMANCE.md``).  Caching it once is therefore sound, and the E1
benchmark shows the same obligations recur across the ladder.

Two ingredients live here:

* :func:`fingerprint` — a stable structural digest of the immutable analysis
  objects (:class:`~repro.core.terms.Term`, formulas, statements,
  transaction types, domain specs).  Closures are fingerprinted through
  their code identity *and* their captured cells, so two
  ``canonical_read_post`` closures over equal statements collide (they
  should: they denote the same predicate) while closures over different
  captured formulas do not.  Sub-object digests are interned per object
  identity, so deep formulas are hashed once.

* :class:`VerdictCache` — a bounded mapping from obligation fingerprints to
  :class:`~repro.core.interference.InterferenceVerdict`, with hit/miss
  counters.  Verdicts decided by the target-independent tiers (footprint
  disjointness, symbolic proof) are stored under a *formula-scope* key and
  shared across target transactions; bounded-model-checking verdicts depend
  on the target's trace (the assertion's activation window) and are stored
  under a *full-scope* key that includes the target.

The default cache is per-:class:`~repro.core.interference.InterferenceChecker`
(one analysis run shares verdicts across its levels and targets); pass
:func:`shared_cache` explicitly to share across checkers in one process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any

#: Scope tags for cached verdicts (see module docstring).
FORMULA_SCOPE = "formula"
FULL_SCOPE = "full"

#: Version of the fingerprint scheme itself; part of the persistent-store
#: salt so digests computed by an older scheme can never satisfy a lookup.
FINGERPRINT_VERSION = "1"

#: Cap on the number of interned sub-object digests kept alive.
_INTERN_CAP = 1_000_000

#: Cap on cached verdicts per cache instance.
DEFAULT_CACHE_CAP = 500_000

# id -> (strong ref keeping the id valid, digest).  Strong refs are required:
# without them a collected object's id could be reused by a new, different
# object and alias its digest.
_intern: dict[int, tuple[Any, str]] = {}


def clear_fingerprint_cache() -> None:
    """Drop all interned digests (test isolation; frees the strong refs)."""
    _intern.clear()


def _callable_token(obj: Any, _depth: int) -> tuple:
    """Fingerprint token for a function or bound method.

    Identity is (module, qualname) plus the fingerprints of the captured
    closure cells and defaults — the parts that make two same-named closures
    denote different predicates.  Builtins and callables without inspectable
    innards fall back to their name alone.
    """
    code = getattr(obj, "__code__", None)
    parts: list = [
        "fn",
        getattr(obj, "__module__", ""),
        getattr(obj, "__qualname__", getattr(obj, "__name__", "?")),
    ]
    if code is not None:
        parts.append(code.co_code.hex())
        closure = getattr(obj, "__closure__", None) or ()
        for cell in closure:
            try:
                contents = cell.cell_contents
            except ValueError:  # empty cell
                parts.append("<empty-cell>")
                continue
            parts.append(_token(contents, _depth + 1))
        defaults = getattr(obj, "__defaults__", None) or ()
        for default in defaults:
            parts.append(_token(default, _depth + 1))
    self_obj = getattr(obj, "__self__", None)
    if self_obj is not None:
        parts.append(_token(self_obj, _depth + 1))
    return tuple(parts)


_NODE_BASES: tuple | None = None


def _node_bases() -> tuple:
    """The hash-consed node roots (resolved lazily to avoid an import cycle)."""
    global _NODE_BASES
    if _NODE_BASES is None:
        from repro.core.formula import Formula
        from repro.core.terms import Term

        _NODE_BASES = (Term, Formula)
    return _NODE_BASES


def _token(obj: Any, _depth: int = 0) -> object:
    """A hashable, order-stable token structurally identifying ``obj``."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return (type(obj).__name__, obj)
    if _depth > 64:
        return ("deep", _opaque(obj))
    is_node = isinstance(obj, _node_bases())
    if is_node:
        # Term/Formula nodes carry their digest; interned nodes compute it
        # exactly once per process no matter how many trees share them.
        cached_fp = obj.__dict__.get("_hc_fp")
        if cached_fp is not None:
            return cached_fp
    key = id(obj)
    cached = _intern.get(key)
    if cached is not None and cached[0] is obj:
        return cached[1]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        token: object = (
            type(obj).__module__,
            type(obj).__qualname__,
            tuple(
                (f.name, _token(getattr(obj, f.name), _depth + 1))
                for f in dataclasses.fields(obj)
            ),
        )
    elif isinstance(obj, (tuple, list)):
        token = (type(obj).__name__, tuple(_token(item, _depth + 1) for item in obj))
    elif isinstance(obj, (set, frozenset)):
        token = ("set", tuple(sorted(repr(_token(item, _depth + 1)) for item in obj)))
    elif isinstance(obj, dict):
        token = (
            "dict",
            tuple(
                sorted(
                    (repr(_token(k, _depth + 1)), _token(v, _depth + 1))
                    for k, v in obj.items()
                )
            ),
        )
    elif callable(obj):
        token = _callable_token(obj, _depth)
    else:
        token = ("opaque", _opaque(obj))
    digest = hashlib.sha256(repr(token).encode()).hexdigest()[:24]
    if is_node:
        object.__setattr__(obj, "_hc_fp", digest)
        return digest
    if len(_intern) >= _INTERN_CAP:
        _intern.clear()
    _intern[key] = (obj, digest)
    return digest


def _opaque(obj: Any) -> str:
    """Identity-based fallback for objects with no structural reading.

    Sound within a process (the intern table keeps the object alive so its
    id cannot be reused) but deliberately not stable across processes —
    process workers rebuild their own keys, so fingerprints never travel.
    """
    if len(_intern) < _INTERN_CAP:
        _intern[id(obj)] = (obj, f"@{id(obj):x}")
    return f"@{id(obj):x}"


def fingerprint(obj: Any) -> str:
    """Stable structural digest of an analysis object (hex string)."""
    token = _token(obj)
    if isinstance(token, str):
        return token
    return hashlib.sha256(repr(token).encode()).hexdigest()[:24]


def fingerprint_many(*objs: Any) -> str:
    """Digest of a sequence of objects, order-sensitive."""
    return hashlib.sha256(
        "|".join(fingerprint(obj) for obj in objs).encode()
    ).hexdigest()[:24]


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`VerdictCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    persist_hits: int = 0  # hits answered by an entry warmed from disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
            "persist_hits": self.persist_hits,
        }


class VerdictCache:
    """Bounded verdict store keyed by obligation fingerprints.

    Keys arrive pre-composed (see
    :meth:`~repro.core.interference.InterferenceChecker._cache_key`); the
    cache itself only provides bounded storage, the two-scope lookup
    discipline and counters.  Eviction is FIFO (insertion order), which is
    adequate because one analysis run rarely overflows the cap and the cap
    exists only to bound memory on pathological inputs.

    One instance may be shared across threads (the parallel thread backend
    and the service's worker pool both do): lookups read plain dicts, which
    is safe under the GIL, while every mutation — store, eviction, absorb,
    clear, the flush snapshot — takes a lock so the eviction scan can never
    interleave with a concurrent store and the persisted-flag bookkeeping
    stays consistent.
    """

    def __init__(self, cap: int = DEFAULT_CACHE_CAP, enabled: bool = True) -> None:
        self.cap = cap
        self.enabled = enabled
        self.stats = CacheStats()
        self._store: dict = {}
        self._persisted: set = set()  # keys warmed from the on-disk store
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, formula_key: str, full_key: str):
        """Return a cached verdict under either scope, or None.

        The formula-scope key is tried first: a tier-1/tier-2 verdict is
        independent of the target transaction, so it satisfies any obligation
        sharing the (assertion-formula, source, statement, assumption)
        fingerprint.  The full-scope key covers BMC verdicts, which are only
        valid for the same target/assertion-kind pair.
        """
        if not self.enabled:
            return None
        key = (FORMULA_SCOPE, formula_key)
        verdict = self._store.get(key)
        if verdict is None:
            key = (FULL_SCOPE, full_key)
            verdict = self._store.get(key)
        if verdict is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if key in self._persisted:
            self.stats.persist_hits += 1
        return verdict

    def store(self, scope: str, key: str, verdict) -> None:
        if not self.enabled:
            return
        with self._lock:
            if len(self._store) >= self.cap:
                # FIFO eviction of the oldest ~1% keeps the common path O(1)
                drop = max(1, self.cap // 100)
                for stale in list(self._store)[:drop]:
                    del self._store[stale]
                    self._persisted.discard(stale)
                self.stats.evictions += drop
            self._store[(scope, key)] = verdict
            self.stats.stores += 1

    def absorb(self, scope: str, key: str, verdict) -> bool:
        """Warm one entry from the persistent store.

        In-memory entries win (they are at least as fresh); returns whether
        the entry was actually added.  Warmed entries are tracked so hits on
        them count as ``persist_hits``.
        """
        if not self.enabled:
            return False
        with self._lock:
            composite = (scope, key)
            if composite in self._store:
                return False
            self._store[composite] = verdict
            self._persisted.add(composite)
            return True

    def items(self):
        """All ``((scope, key), verdict)`` pairs plus their persisted flag.

        Snapshotted under the lock so a flush iterating the cache can never
        race a concurrent store's eviction scan.
        """
        with self._lock:
            snapshot = [
                (composite, verdict, composite in self._persisted)
                for composite, verdict in self._store.items()
            ]
        return iter(snapshot)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._persisted.clear()
            self.stats = CacheStats()


_shared: VerdictCache | None = None


def shared_cache() -> VerdictCache:
    """The process-wide shared cache (created on first use).

    Checkers default to a private cache; the CLI and the benchmarks pass
    this one so successive analyses in the same process share verdicts.
    """
    global _shared
    if _shared is None:
        _shared = VerdictCache()
    return _shared


def reset_shared_cache() -> None:
    """Drop the process-wide cache (test isolation)."""
    global _shared
    _shared = None
