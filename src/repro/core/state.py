"""Concrete database states.

A :class:`DbState` is the common currency of the dynamic half of the
library: formulas evaluate against it, the bounded model checker enumerates
instances of it, the transactional engine's committed store is one, and the
semantic-correctness oracle compares them.

A state holds the three kinds of storage the paper's models use:

* scalar *items* (conventional model, e.g. ``maximum_date``);
* record *arrays* indexed by integers with named attributes
  (e.g. ``acct_sav[i].bal``); plain value arrays use the attribute ``None``;
* relational *tables* as multisets of attribute/value rows.

States are mutable; use :meth:`copy` to snapshot.  Multiset table equality
makes state comparison insensitive to physical row order, matching the
relational model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.terms import Value
from repro.errors import EvaluationError

Row = dict


@dataclass
class DbState:
    """A concrete database state over items, arrays and tables."""

    items: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)

    # -- scalar items ------------------------------------------------------
    def read_item(self, name: str) -> Value:
        try:
            return self.items[name]
        except KeyError:
            raise EvaluationError(f"unknown database item {name!r}")

    def write_item(self, name: str, value: Value) -> None:
        self.items[name] = value

    def has_item(self, name: str) -> bool:
        return name in self.items

    # -- record arrays -----------------------------------------------------
    def read_field(self, array: str, index: int, attr: str | None) -> Value:
        try:
            return self.arrays[array][index][attr]
        except KeyError:
            where = f"{array}[{index}]" + (f".{attr}" if attr is not None else "")
            raise EvaluationError(f"unknown array element {where}")

    def write_field(self, array: str, index: int, attr: str | None, value: Value) -> None:
        # Replaces the per-array containers instead of mutating them so
        # :meth:`fork` snapshots sharing them stay isolated.
        elems = dict(self.arrays.get(array, ()))
        attrs = dict(elems.get(index, ()))
        attrs[attr] = value
        elems[index] = attrs
        self.arrays[array] = elems

    def has_field(self, array: str, index: int, attr: str | None) -> bool:
        return attr in self.arrays.get(array, {}).get(index, {})

    def array_indices(self, array: str) -> Iterator[int]:
        yield from self.arrays.get(array, {})

    # -- relational tables -------------------------------------------------
    def rows(self, table: str) -> Iterator[Row]:
        """Iterate over the rows of a table (empty if the table is unknown)."""
        yield from self.tables.get(table, ())

    def insert_row(self, table: str, row: Mapping[str, Value]) -> None:
        rows = list(self.tables.get(table, ()))
        rows.append(dict(row))
        self.tables[table] = rows

    def delete_rows(self, table: str, predicate: Callable[[Row], bool]) -> int:
        """Delete matching rows; returns the number deleted."""
        rows = self.tables.get(table)
        if rows is None:
            return 0
        kept = [row for row in rows if not predicate(row)]
        deleted = len(rows) - len(kept)
        if deleted:
            self.tables[table] = kept
        return deleted

    def update_rows(
        self,
        table: str,
        predicate: Callable[[Row], bool],
        updater: Callable[[Row], Mapping[str, Value]],
    ) -> int:
        """Apply ``updater`` to matching rows; returns the number updated.

        ``updater`` receives the current row and returns the attributes to
        overwrite (it must not mutate the row it receives).  Updated rows are
        replaced, not mutated, so :meth:`fork` snapshots stay isolated.
        """
        rows = self.tables.get(table)
        if rows is None:
            return 0
        updated = 0
        new_rows: list | None = None
        for position, row in enumerate(rows):
            if predicate(row):
                if new_rows is None:
                    new_rows = list(rows)
                new_rows[position] = {**row, **updater(row)}
                updated += 1
        if new_rows is not None:
            self.tables[table] = new_rows
        return updated

    def table_size(self, table: str) -> int:
        return len(self.tables.get(table, ()))

    # -- whole-state operations ---------------------------------------------
    def copy(self) -> "DbState":
        """A deep, independent copy of this state."""
        return DbState(
            items=dict(self.items),
            arrays={
                array: {index: dict(attrs) for index, attrs in elems.items()}
                for array, elems in self.arrays.items()
            },
            tables={table: [dict(row) for row in rows] for table, rows in self.tables.items()},
        )

    def fork(self) -> "DbState":
        """A copy-on-write snapshot sharing the inner containers.

        Valid only for consumers that mutate states exclusively through the
        write methods above, which replace the shared per-array/per-table
        containers rather than mutating them.  Code that reaches into
        ``arrays``/``tables`` and mutates elements or rows in place (the
        transactional engine's row-id machinery) must use :meth:`copy`.
        Shared containers also make the bounded model checker's trace
        delta-diffing O(changed locations): untouched tables and arrays
        keep their identity across a fork, so ``is`` checks skip them.
        """
        return DbState(
            items=dict(self.items),
            arrays=dict(self.arrays),
            tables=dict(self.tables),
        )

    def canonical(self) -> tuple:
        """A hashable normal form; table rows compare as multisets."""
        return (
            tuple(sorted(self.items.items())),
            tuple(
                sorted(
                    (array, index, tuple(sorted(attrs.items(), key=_attr_key)))
                    for array, elems in self.arrays.items()
                    for index, attrs in elems.items()
                )
            ),
            tuple(
                sorted(
                    (table, tuple(sorted((tuple(sorted(row.items())) for row in rows))))
                    for table, rows in self.tables.items()
                    if rows
                )
            ),
        )

    def same_as(self, other: "DbState") -> bool:
        """State equality up to table row order."""
        return self.canonical() == other.canonical()

    def diff(self, other: "DbState") -> list:
        """Human-readable differences between two states (for reports)."""
        out: list[str] = []
        for name in sorted(set(self.items) | set(other.items)):
            mine = self.items.get(name, "<absent>")
            theirs = other.items.get(name, "<absent>")
            if mine != theirs:
                out.append(f"item {name}: {mine!r} vs {theirs!r}")
        arrays = set(self.arrays) | set(other.arrays)
        for array in sorted(arrays):
            indices = set(self.arrays.get(array, {})) | set(other.arrays.get(array, {}))
            for index in sorted(indices):
                mine_rec = self.arrays.get(array, {}).get(index, {})
                theirs_rec = other.arrays.get(array, {}).get(index, {})
                attrs = set(mine_rec) | set(theirs_rec)
                for attr in sorted(attrs, key=_attr_key):
                    if mine_rec.get(attr) != theirs_rec.get(attr):
                        label = f"{array}[{index}]" + (f".{attr}" if attr is not None else "")
                        out.append(
                            f"array {label}: {mine_rec.get(attr, '<absent>')!r}"
                            f" vs {theirs_rec.get(attr, '<absent>')!r}"
                        )
        tables = set(self.tables) | set(other.tables)
        for table in sorted(tables):
            mine_rows = _row_multiset(self.tables.get(table, []))
            theirs_rows = _row_multiset(other.tables.get(table, []))
            if mine_rows != theirs_rows:
                only_mine = _multiset_minus(mine_rows, theirs_rows)
                only_theirs = _multiset_minus(theirs_rows, mine_rows)
                if only_mine:
                    out.append(f"table {table}: extra rows {sorted(only_mine)}")
                if only_theirs:
                    out.append(f"table {table}: missing rows {sorted(only_theirs)}")
        return out


def _attr_key(pair_or_attr) -> tuple:
    """Sort key tolerating the ``None`` attribute of plain-value arrays."""
    attr = pair_or_attr[0] if isinstance(pair_or_attr, tuple) else pair_or_attr
    return (attr is None, attr or "")


def _row_multiset(rows: Iterable[Row]) -> dict:
    out: dict = {}
    for row in rows:
        key = tuple(sorted(row.items()))
        out[key] = out.get(key, 0) + 1
    return out


def _multiset_minus(a: dict, b: dict) -> list:
    out = []
    for key, count in a.items():
        extra = count - b.get(key, 0)
        out.extend([key] * max(0, extra))
    return out
