"""The interference check — paper's triple (3) — in three tiers.

``S_k,l`` *interferes* with assertion ``P_i,j`` when
``{P_i,j ∧ P_k,l} S_k,l {P_i,j}`` is not a theorem.  The per-level theorems
reduce semantic correctness to a finite set of such checks.  Each check runs
through up to three tiers, from cheapest and exact to most general:

1. **Footprint disjointness** — the statement writes no resource the
   assertion depends on.  Exact, instantaneous, and in realistic
   applications discharges the bulk of the obligations (benchmarked in E1).

2. **Symbolic proof** — for the conventional (scalar/array) fragment the
   check becomes a validity query: ``P ∧ pre ⇒ P'`` where ``P'`` is the
   assertion after the write (alias-aware substitution,
   :mod:`repro.core.effects`).  Counterexamples are genuine interference
   witnesses at the formula level.

3. **Bounded model checking** — relational statements, quantified
   assertions, aggregates, buffers and rollback scenarios are checked by
   *simulating the scenario*: enumerate small initial databases and
   arguments (a :class:`repro.core.domains.DomainSpec`), trace the target
   transaction to every control point where the assertion is active — with
   the target's own local bindings — then run the candidate interfering
   statement/transaction and watch whether the assertion flips from true to
   false.  Exhaustive enumeration certifies non-interference *for the
   bounded domain*; sampling downgrades the confidence flag.

A verdict records which tier decided it and at what confidence, so reports
separate proved facts from bounded evidence — the honesty knob this
mechanisation adds over the paper's hand proofs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import effects as fx
from repro.core.cache import FORMULA_SCOPE, FULL_SCOPE, VerdictCache, fingerprint_many
from repro.core.domains import DEFAULT_BUDGET, DomainSpec, iter_assignments, split_budget
from repro.core.parallel import chunked, parallel_map
from repro.core.formula import FALSE, Formula, TRUE, conj, disj, eq, implies
from repro.core.program import (
    ForEach,
    If,
    Statement,
    TransactionType,
    While,
    Write,
)
from repro.core.prover import Verdict, is_valid
from repro.core.resources import overlaps
from repro.core.sp import annotate_paths, fresh_logical
from repro.core.state import DbState, _multiset_minus, _row_multiset
from repro.core.terms import Field, Item, Term
from repro.errors import EvaluationError

#: Confidence levels of a verdict, strongest first.
PROVED = "proved"
BOUNDED = "bounded-exhaustive"
SAMPLED = "bounded-sampled"
ASSUMED = "assumed"

#: Kinds of critical assertions (what the theorems quantify over).
CONSISTENCY = "consistency"  # I_i — checked throughout execution
READ_POST = "read_post"  # postcondition of one read statement
RESULT = "result"  # Q_i — checked at completion
READ_STEP_POST = "read_step_post"  # SNAPSHOT model: after the read step


@dataclass(frozen=True)
class CriticalAssertion:
    """One assertion the per-level theorems require to be interference-free."""

    label: str
    formula: Formula
    kind: str
    read_stmt: Statement | None = None

    def __repr__(self) -> str:
        return f"<{self.kind} {self.label}>"


@dataclass
class Witness:
    """Concrete or symbolic evidence that interference can occur."""

    kind: str  # "symbolic" | "concrete" | "rollback"
    description: str
    state: DbState | None = None
    env: dict | None = None
    model: dict | None = None

    def __repr__(self) -> str:
        return f"<witness {self.kind}: {self.description}>"


@dataclass
class InterferenceVerdict:
    """Outcome of one interference check."""

    interferes: bool
    confidence: str
    method: str
    witness: Witness | None = None
    note: str = ""

    @property
    def safe(self) -> bool:
        """True when the check certifies non-interference."""
        return not self.interferes

    def __repr__(self) -> str:
        head = "INTERFERES" if self.interferes else "no-interference"
        return f"<{head} via {self.method} ({self.confidence})>"


# ---------------------------------------------------------------------------
# concrete tracing
# ---------------------------------------------------------------------------


@dataclass
class TraceEvent:
    """One database operation observed during a concrete trace.

    ``before`` and ``after`` are snapshots shared with the trace's ``states``
    list (and with each other for reads, which never mutate the database) —
    consumers must copy before mutating.  ``undo`` and ``delta`` lazily cache
    the event's inverse write recipe and changed-location set; both are pure
    functions of the immutable snapshots.
    """

    statement: Statement
    before: DbState
    after: DbState
    is_write: bool
    undo: tuple | None = None
    delta: frozenset | None = None


@dataclass
class Trace:
    """A traced transaction execution.

    ``envs[p]`` is the local environment when ``p`` database operations have
    completed (intervening local assignments included); ``envs[len(events)]``
    is the final environment.  ``states[p]`` mirrors the database.
    """

    events: list
    envs: list
    states: list
    _cumulative: list | None = None
    _undo_memo: dict | None = None

    @property
    def length(self) -> int:
        return len(self.events)

    def cumulative_writes(self) -> list:
        """``result[p]`` = locations written by the first ``p`` events.

        Cached on the trace; scenario filtering consults it once per
        activation position instead of re-unioning deltas per call.
        """
        if self._cumulative is None:
            acc: frozenset = frozenset()
            cumulative = [acc]
            for event in self.events:
                if event.is_write:
                    acc = acc | _event_delta(event)
                cumulative.append(acc)
            self._cumulative = cumulative
        return self._cumulative


def trace(txn: TransactionType, state: DbState, args: dict) -> Trace:
    """Execute a transaction concretely, snapshotting around every DB op.

    Snapshots are shared, not duplicated: the checkpoint state at position
    ``p`` *is* event ``p``'s ``before`` state, and a read event's ``after``
    is its ``before`` (reads never mutate the database).  Only writes pay
    for a second copy.  State copying dominated BMC cost before this
    sharing (benchmarked in E14).
    """
    events: list[TraceEvent] = []
    envs: list[dict] = []
    states: list[DbState] = []
    env = txn.initial_env(args, state)
    # one live snapshot, reused until the next write invalidates it: reads
    # never mutate the database, so every position between two writes shares
    # a single state object (which also lets identity-keyed evaluation memos
    # collapse those positions)
    snap: DbState | None = None

    def run(stmts: Sequence[Statement]) -> None:
        nonlocal snap
        for stmt in stmts:
            if isinstance(stmt, If):
                branch = stmt.then if stmt.cond.evaluate(state, env) else stmt.orelse
                run(branch)
            elif isinstance(stmt, While):
                fuel = 64
                while stmt.cond.evaluate(state, env):
                    fuel -= 1
                    if fuel < 0:
                        raise EvaluationError("loop fuel exhausted in trace")
                    run(stmt.body)
            elif isinstance(stmt, ForEach):
                buffered = env.get(stmt.buffer, ())
                for packed in buffered:
                    row = dict(packed)
                    for attr, local in stmt.bind:
                        env[local] = row.get(attr)
                    run(stmt.body)
            elif stmt.is_db_write:
                envs.append(dict(env))
                if snap is None:
                    snap = state.fork()
                states.append(snap)
                stmt.execute(state, env)
                after = state.fork()
                events.append(TraceEvent(stmt, snap, after, True))
                snap = after
            elif stmt.is_db_read:
                envs.append(dict(env))
                if snap is None:
                    snap = state.fork()
                states.append(snap)
                stmt.execute(state, env)
                events.append(TraceEvent(stmt, snap, snap, False))
            else:
                stmt.execute(state, env)

    run(txn.body)
    envs.append(dict(env))
    states.append(snap if snap is not None else state.fork())
    return Trace(events, envs, states)


def undo_states(events: Sequence[TraceEvent]) -> list:
    """States passed through while rolling back a traced prefix, in order."""
    if not events:
        return []
    current = events[-1].after.fork()
    states = []
    for event in reversed(events):
        if not event.is_write:
            continue
        _apply_undo(current, _event_undo(event))
        states.append(current.fork())
    return states


def _cached_undo_states(tr: Trace, k: int) -> list:
    """``undo_states`` of the trace's first ``k + 1`` events, cached.

    The rolled-back state sequence depends only on the trace prefix, not on
    the assertion being checked against it; rollback injection probes the
    same prefix once per (assertion, activation position), so the states are
    materialised once per trace.  Callers must not mutate them.
    """
    memo = tr._undo_memo
    if memo is None:
        memo = tr._undo_memo = {}
    states = memo.get(k)
    if states is None:
        states = undo_states(tr.events[: k + 1])
        memo[k] = states
    return states


#: Marker for "location absent before the write" in undo recipes.
_MISSING = object()


def _event_undo(event: TraceEvent) -> tuple:
    """The event's undo recipe, diffed once and cached on the event.

    Rollback scenarios replay the same event's inverse against many
    states; diffing the full snapshots each time (the old ``_restore``)
    was a top-three BMC cost.  The recipe is a pure function of the
    immutable ``before``/``after`` snapshots.
    """
    recipe = event.undo
    if recipe is None:
        recipe = _undo_recipe(event.before, event.after)
        event.undo = recipe
    return recipe


def _undo_recipe(before: DbState, after: DbState) -> tuple:
    """Compact inverse of the ``before -> after`` delta.

    Returns ``(items, fields, rows)``: item/field restorations (with
    :data:`_MISSING` for locations the write created) and per-table row
    multiset corrections.
    """
    if before is after:
        return ((), (), ())
    items = []
    for name in set(after.items) | set(before.items):
        if after.items.get(name) != before.items.get(name):
            items.append((name, before.items.get(name, _MISSING)))
    fields = []
    for array in set(after.arrays) | set(before.arrays):
        before_elems = before.arrays.get(array, {})
        after_elems = after.arrays.get(array, {})
        if before_elems is after_elems:  # shared through fork(): untouched
            continue
        indices = set(after_elems) | set(before_elems)
        for index in indices:
            old = before_elems.get(index, {})
            new = after_elems.get(index, {})
            if old is new:
                continue
            for attr in set(old) | set(new):
                if old.get(attr) != new.get(attr):
                    fields.append((array, index, attr, old.get(attr, _MISSING)))
    rows = []
    for table in set(after.tables) | set(before.tables):
        before_rows = before.tables.get(table, [])
        after_rows = after.tables.get(table, [])
        if before_rows is after_rows or before_rows == after_rows:
            continue
        added = _multiset_minus(
            _row_multiset(after_rows), _row_multiset(before_rows)
        )
        removed = _multiset_minus(
            _row_multiset(before_rows), _row_multiset(after_rows)
        )
        if added or removed:
            rows.append((table, tuple(added), tuple(removed)))
    return (tuple(items), tuple(fields), tuple(rows))


def _apply_undo(current: DbState, recipe: tuple) -> None:
    """Apply a cached undo recipe onto ``current``."""
    items, fields, rows = recipe
    for name, old in items:
        if old is _MISSING:
            current.items.pop(name, None)
        else:
            current.items[name] = old
    for array, index, attr, old in fields:
        if old is _MISSING:
            # Replace, don't mutate: the attrs dict may be shared by forks.
            elems = dict(current.arrays.get(array, ()))
            attrs = dict(elems.get(index, ()))
            attrs.pop(attr, None)
            elems[index] = attrs
            current.arrays[array] = elems
        else:
            current.write_field(array, index, attr, old)
    for table, added, removed in rows:
        for key in added:
            current.delete_rows(table, _once_matcher(dict(key)))
        for key in removed:
            current.insert_row(table, dict(key))


def _restore(current: DbState, after: DbState, before: DbState) -> None:
    """Apply the inverse of the ``before -> after`` delta onto ``current``."""
    _apply_undo(current, _undo_recipe(before, after))


def _once_matcher(row: dict):
    """A predicate matching exactly one occurrence of ``row``."""
    done = {"hit": False}

    def predicate(candidate: dict) -> bool:
        if done["hit"] or candidate != row:
            return False
        done["hit"] = True
        return True

    return predicate


# ---------------------------------------------------------------------------
# static write targets (Theorem 5, condition 1)
# ---------------------------------------------------------------------------


def static_write_targets(txn: TransactionType) -> list:
    """Resolved conventional write targets of every Write in the body.

    Targets whose array index mentions locals are dropped (they cannot be
    compared statically), as are relational writes — both reduce the set of
    first-committer-wins excuses, which errs on the safe side.
    """
    out: list[Term] = []
    for stmt in txn.statements():
        if isinstance(stmt, Write):
            target = stmt.target
            if isinstance(target, Field):
                from repro.core.terms import Local

                if any(isinstance(atom, Local) for atom in target.index.atoms()):
                    continue
            out.append(target)
    return out


def fcw_excuse_formula(
    target: TransactionType,
    source: TransactionType,
    target_writes: list | None = None,
) -> Formula:
    """Theorem 5 condition 1 as a formula over the instances' parameters.

    ``target_writes`` restricts the target's side of the intersection —
    Theorem 3's variant of the excuse only covers items the target both
    read and wrote (the paper's remark: such a transaction has effectively
    held long read locks on them).
    """
    own = target_writes if target_writes is not None else static_write_targets(target)
    pairs = [(t, None) for t in own]
    source_targets = [(s, None) for s in static_write_targets(source)]
    return fx.write_sets_intersection_condition(pairs, source_targets)


def _concrete_write_targets(
    txn: TransactionType, args_env: dict, restrict: list | None = None
) -> set | None:
    """Static write targets with indices evaluated under concrete arguments.

    ``restrict`` (when given) replaces the static target list — Theorem 3's
    read-then-written subset.
    """
    out: set = set()
    targets = restrict if restrict is not None else static_write_targets(txn)
    for target in targets:
        if isinstance(target, Item):
            out.add(("item", target.name))
        else:
            try:
                index = target.index.evaluate(DbState(), args_env)
            except EvaluationError:
                return None
            out.add(("field", target.array, index, target.attr))
    return out


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


class InterferenceChecker:
    """Runs interference checks through the three tiers.

    ``spec`` supplies the bounded-model-checking domains; without one only
    the disjointness and symbolic tiers run, and anything they cannot decide
    is *assumed* to interfere — the conservative default that keeps the
    level chooser sound.
    """

    def __init__(
        self,
        spec: DomainSpec | None = None,
        budget: int = DEFAULT_BUDGET,
        seed: int = 0,
        unroll: int = fx.DEFAULT_UNROLL,
        use_disjoint: bool = True,
        use_symbolic: bool = True,
        use_sdg: bool = True,
        cache: VerdictCache | None = None,
        workers: int = 1,
    ) -> None:
        self.spec = spec
        self.budget = budget
        self.seed = seed
        self.unroll = unroll
        #: ablation switches: disable the cheap tiers to measure what each
        #: contributes (benchmarked in E10); correctness is unaffected —
        #: disabled tiers simply push obligations to the next tier down
        self.use_disjoint = use_disjoint
        self.use_symbolic = use_symbolic
        #: SDG pre-pruning (see :func:`repro.core.sdg.prune_plan`): excuse
        #: footprint-disjoint obligations before dispatch.  Deliberately
        #: absent from :meth:`config_dict` and the cache fingerprint — the
        #: pruned obligations are exactly the ones tier 1 would prove, so
        #: verdicts (and therefore cache entries) are identical either way
        self.use_sdg = use_sdg
        #: verdict cache — private per checker by default, so one analysis
        #: run shares verdicts across its levels and targets without leaking
        #: tier accounting into an unrelated run; pass
        #: :func:`repro.core.cache.shared_cache` to share process-wide
        self.cache = cache if cache is not None else VerdictCache()
        #: fan-out width for exhaustive BMC state chunks (1 = serial)
        self.workers = max(1, workers)
        self.stats = {
            "disjoint": 0,
            "symbolic": 0,
            "bmc": 0,
            "assumed": 0,
            "sdg_pruned": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        #: wall seconds spent inside each tier, accumulated per check
        self.tier_times = {"disjoint": 0.0, "symbolic": 0.0, "bmc": 0.0}
        #: optional callable(seconds) observing each *decided* obligation's
        #: wall time (cache hits are not observed); the CLI's ``--stats``
        #: wires a telemetry histogram here, the service its job metrics
        self.latency_observer = None
        self._config_key: str | None = None
        self._state_cache: tuple | None = None
        self._trace_memo: dict = {}
        self._eval_memo: dict = {}
        self._proj_key_memo: dict = {}
        self._args_key_memo: dict = {}
        self._unit_memo: dict = {}
        self._stmt_memo: dict = {}
        self._swt_memo: dict = {}
        self._overlap_memo: dict = {}
        self._pos_memo: dict = {}
        self._space_memo: dict = {}
        self._combined_memo: dict = {}

    def config_dict(self) -> dict:
        """Picklable constructor kwargs for rebuilding this checker elsewhere."""
        return {
            "budget": self.budget,
            "seed": self.seed,
            "unroll": self.unroll,
            "use_disjoint": self.use_disjoint,
            "use_symbolic": self.use_symbolic,
        }

    # -- cache keys ----------------------------------------------------------

    def _config_fingerprint(self) -> str:
        if self._config_key is None:
            self._config_key = fingerprint_many(
                self.budget, self.seed, self.unroll,
                self.use_disjoint, self.use_symbolic, self.spec,
            )
        return self._config_key

    def _keys(
        self,
        kind: str,
        assertion: CriticalAssertion,
        target: TransactionType,
        source: TransactionType,
        assumption: Formula,
        formula_extra: tuple = (),
        full_extra: tuple = (),
    ) -> tuple:
        """The two cache keys of one obligation.

        The *formula* key identifies everything the target-independent tiers
        (disjointness, symbolic) look at: assertion formula, source program,
        assumption, per-mode extras and the checker configuration.  The
        *full* key extends it with the target and the assertion's activation
        data (kind, read statement), which is what the BMC trace depends on.
        """
        formula_key = fingerprint_many(
            kind, assertion.formula, source, assumption,
            *formula_extra, self._config_fingerprint(),
        )
        full_key = fingerprint_many(
            formula_key, target, assertion.kind, assertion.read_stmt, *full_extra
        )
        return formula_key, full_key

    def _cached_check(self, keys: tuple | None, decide):
        """Run ``decide`` through the verdict cache.

        ``decide`` returns ``(verdict, scope)``; the verdict is stored under
        the formula- or full-scope key according to which tier decided it.
        """
        if keys is None or not self.cache.enabled:
            verdict, _scope = self._observed_decide(decide)
            return verdict
        formula_key, full_key = keys
        cached = self.cache.lookup(formula_key, full_key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return cached
        self.stats["cache_misses"] += 1
        verdict, scope = self._observed_decide(decide)
        self.cache.store(scope, formula_key if scope == FORMULA_SCOPE else full_key, verdict)
        return verdict

    def _observed_decide(self, decide):
        if self.latency_observer is None:
            return decide()
        start = time.perf_counter()
        try:
            return decide()
        finally:
            self.latency_observer(time.perf_counter() - start)

    def _cached_states(self, rng: random.Random) -> tuple:
        """Materialise the constraint-filtered state list once per checker.

        Evaluating an application's full consistency constraint (nested
        quantifiers and aggregates) dominates BMC cost; every obligation
        shares the same filtered state list, so it is computed only once.
        """
        if self._state_cache is None:
            space = self.spec.iter_states(self.budget, rng)
            self._state_cache = (list(space), space.exhaustive)
        return self._state_cache

    def _cached_trace(self, txn: TransactionType, state0: DbState, args: dict):
        """Trace a transaction from a cached state, memoised.

        Obligations share the same (state, argument) scenarios; traces are
        pure given those inputs, so they are computed once per checker.
        Keyed by state identity — valid because the cached state list is
        stable — and the transaction's name (renamed partner instances get
        distinct names only via the `!2` suffixed parameters, so the
        argument tuple disambiguates them).
        """
        key = (txn.name, self._args_key(args), id(state0))
        cached = self._trace_memo.get(key)
        if cached is not None:
            return cached
        result = trace(txn, state0.fork(), args)
        if len(self._trace_memo) < 200_000:
            self._trace_memo[key] = result
        return result

    def _memo_holds(self, formula, state, env) -> bool:
        """`_holds` memoised over trace-cached states.

        Scenario loops re-evaluate the same (assertion, state, env)
        combination for every partner argument assignment; formula
        evaluation (nested quantifiers, COUNT aggregates) dominates BMC
        cost, so this cache is the main lever.  The formula itself is part
        of the key (hash-consing makes hashing it an O(1) cached lookup and
        keeps it alive, so its entry can never alias another formula);
        states come from identity-stable caches.  Environments with
        unhashable values (none in practice — buffers are packed as
        tuples) fall back to direct evaluation.
        """
        return self._memo_holds_keyed(formula, state, env, self._env_key(formula, env))

    def _memo_holds_keyed(self, formula, state, env, env_key) -> bool:
        """:meth:`_memo_holds` with the environment key precomputed.

        The scenario loops already compute the assertion's env key for
        position deduplication; passing it through avoids a second
        projection probe per position.
        """
        if env_key is None:
            return _holds(formula, state, env)
        key = (formula, id(state), env_key)
        cached = self._eval_memo.get(key)
        if cached is None:
            cached = _holds(formula, state, env)
            if len(self._eval_memo) < 2_000_000:
                self._eval_memo[key] = cached
        return cached

    def _env_key(self, formula, env):
        """The formula's evaluation-relevant view of ``env``, memoised.

        Structural formulas read the environment only at their free atoms,
        so the key projects ``env`` onto them — a formula with no free
        parameters collapses to one entry per state no matter how many
        partner-argument environments probe it.  Opaque evaluators
        (:class:`~repro.core.formula.AbstractPred` trees) key on the whole
        environment.  Memoised per (formula, env) identity (entries keep
        strong references and are re-verified, so id reuse cannot alias);
        returns None when the environment holds unhashable values.
        """
        pkey = (id(formula), id(env))
        entry = self._proj_key_memo.get(pkey)
        if entry is not None and entry[0] is formula and entry[1] is env:
            return entry[2]
        try:
            if formula.projectable():
                atoms = formula.atom_set()
                env_key = frozenset(
                    (atom, env[atom]) for atom in atoms.intersection(env)
                )
            else:
                env_key = frozenset(env.items())
        except TypeError:
            env_key = None
        if len(self._proj_key_memo) < 1_000_000:
            self._proj_key_memo[pkey] = (formula, env, env_key)
        return env_key

    def _args_key(self, args: dict) -> tuple:
        """``tuple(sorted(args.items()))``, memoised by dict identity."""
        entry = self._args_key_memo.get(id(args))
        if entry is not None and entry[0] is args:
            return entry[1]
        key = tuple(sorted(args.items()))
        if len(self._args_key_memo) < 500_000:
            self._args_key_memo[id(args)] = (args, key)
        return key

    def _static_targets(self, txn: TransactionType) -> list:
        """:func:`static_write_targets`, memoised per transaction type."""
        entry = self._swt_memo.get(id(txn))
        if entry is not None and entry[0] is txn:
            return entry[1]
        targets = static_write_targets(txn)
        if len(self._swt_memo) < 10_000:
            self._swt_memo[id(txn)] = (txn, targets)
        return targets

    def _stmt_written(self, stmt: Statement) -> frozenset:
        """``stmt.written_resources()``, memoised per statement."""
        entry = self._swt_memo.get(("wr", id(stmt)))
        if entry is not None and entry[0] is stmt:
            return entry[1]
        written = stmt.written_resources()
        if len(self._swt_memo) < 10_000:
            self._swt_memo[("wr", id(stmt))] = (stmt, written)
        return written

    def _res_overlaps(self, res: frozenset, stmt: Statement) -> bool:
        """Whether ``stmt``'s written footprint overlaps ``res``, memoised.

        The rollback pruning asks this for the same (assertion-resources,
        statement) pair once per undo step per position; both operands are
        identity-stable (resources are cached on the interned formula), so
        the symbolic overlap test runs once per distinct pair.
        """
        key = (id(res), id(stmt))
        entry = self._overlap_memo.get(key)
        if entry is not None and entry[0] is res and entry[1] is stmt:
            return entry[2]
        result = overlaps(res, self._stmt_written(stmt))
        if len(self._overlap_memo) < 100_000:
            self._overlap_memo[key] = (res, stmt, result)
        return result

    def _assignment_space(self, params: tuple, rng: random.Random) -> tuple:
        """Materialised ``(env, args)`` pairs for a parameter tuple.

        Exhaustive spaces enumerate deterministically (``itertools.product``,
        no rng draws), so their materialisation is cached: the env and args
        dicts become identity-stable across every scan of the run, which is
        what the identity-keyed projection/args/trace memos feed on.  Sampled
        spaces stay uncached so each scan keeps drawing fresh cases.
        Returns ``(pairs, exhaustive)``.
        """
        key = tuple(id(param) for param in params)
        entry = self._space_memo.get(key)
        if entry is not None and all(a is b for a, b in zip(entry[0], params)):
            return entry[1], True
        space = iter_assignments(list(params), self.spec, 512, rng)
        pairs = [
            (env, {param.name: value for param, value in env.items()})
            for env in space
        ]
        if not space.exhaustive:
            return pairs, False
        if len(self._space_memo) < 10_000:
            self._space_memo[key] = (params, pairs)
        return pairs, True

    def _combined_env(self, target_env: dict, source_env: dict) -> dict:
        """The merged scan environment, memoised by operand identity."""
        key = (id(target_env), id(source_env))
        entry = self._combined_memo.get(key)
        if entry is not None and entry[0] is target_env and entry[1] is source_env:
            return entry[2]
        combined = dict(target_env)
        combined.update(source_env)
        if len(self._combined_memo) < 500_000:
            self._combined_memo[key] = (target_env, source_env, combined)
        return combined

    def _positions(self, assertion: CriticalAssertion, trace_obj: Trace) -> list:
        """:func:`_activation_positions`, memoised per (assertion, trace)."""
        key = (id(assertion), id(trace_obj))
        entry = self._pos_memo.get(key)
        if entry is not None and entry[0] is assertion and entry[1] is trace_obj:
            return entry[2]
        positions = list(_activation_positions(assertion, trace_obj))
        if len(self._pos_memo) < 500_000:
            self._pos_memo[key] = (assertion, trace_obj, positions)
        return positions

    def _memo_unit_final(self, source: TransactionType, state0: DbState, args: dict):
        """Final state of ``source`` run atomically from ``state0``, memoised.

        Unit-mode injection re-runs the same source from the same
        activation state for every assertion sharing the trace; the run is
        deterministic, so the final state is computed once.  Returns None
        when the run raises :class:`EvaluationError`.
        """
        key = (source.name, self._args_key(args), id(state0))
        if key in self._unit_memo:
            return self._unit_memo[key]
        final = state0.fork()
        try:
            source.run(final, args)
        except EvaluationError:
            final = None
        if len(self._unit_memo) < 200_000:
            self._unit_memo[key] = final
        return final

    def _memo_stmt_after(self, stmt: Statement, state: DbState, env: dict):
        """State after ``stmt`` executes on ``state`` under ``env``, memoised.

        Dirty-read scenarios inject the same source write into the same
        activation state once per assertion; execution is deterministic, so
        the result state is shared.  The entry keeps strong references and
        re-verifies identity, so id reuse cannot alias.  Returns None when
        execution raises :class:`EvaluationError`.
        """
        key = (id(stmt), id(state), id(env))
        entry = self._stmt_memo.get(key)
        if (
            entry is not None
            and entry[0] is stmt
            and entry[1] is state
            and entry[2] is env
        ):
            return entry[3]
        after = state.fork()
        try:
            stmt.execute(after, dict(env))
        except EvaluationError:
            after = None
        if len(self._stmt_memo) < 200_000:
            self._stmt_memo[key] = (stmt, state, env, after)
        return after

    # -- public checks -------------------------------------------------------

    def check_statement(
        self,
        target: TransactionType,
        assertion: CriticalAssertion,
        source: TransactionType,
        stmt: Statement,
        assumption: Formula = TRUE,
        dirty_reads: bool = True,
    ) -> InterferenceVerdict:
        """Theorem 1 obligation: one write statement vs one assertion.

        ``assumption`` is an application-level concurrency assumption over
        the two instances' parameters (e.g. concurrent ``New_Order``s are
        for distinct customers).  ``dirty_reads`` enables the ordering-B
        scenarios in which the target reads the source's uncommitted writes
        — legal at READ UNCOMMITTED, impossible at READ COMMITTED and above.
        """
        keys = None
        if self.cache.enabled:
            keys = self._keys(
                "statement", assertion, target, source, assumption,
                formula_extra=(stmt,), full_extra=(dirty_reads,),
            )
        return self._cached_check(
            keys,
            lambda: self._decide_statement(
                target, assertion, source, stmt, assumption, dirty_reads
            ),
        )

    def _decide_statement(
        self, target, assertion, source, stmt, assumption, dirty_reads
    ) -> tuple:
        start = time.perf_counter()
        if self.use_disjoint and not overlaps(
            assertion.formula.resources(), stmt.written_resources()
        ):
            self.stats["disjoint"] += 1
            self.tier_times["disjoint"] += time.perf_counter() - start
            return InterferenceVerdict(False, PROVED, "disjoint"), FORMULA_SCOPE
        self.tier_times["disjoint"] += time.perf_counter() - start
        start = time.perf_counter()
        if self.use_symbolic:
            symbolic = self._statement_symbolic(assertion.formula, source, stmt, assumption)
            if symbolic is not None:
                self.tier_times["symbolic"] += time.perf_counter() - start
                return symbolic, FORMULA_SCOPE
        self.tier_times["symbolic"] += time.perf_counter() - start
        start = time.perf_counter()
        verdict = self._bmc(
            target, assertion, source, mode="statement", stmt=stmt,
            assumption=assumption, dirty_reads=dirty_reads,
        )
        self.tier_times["bmc"] += time.perf_counter() - start
        return verdict, FULL_SCOPE

    def check_rollback(
        self,
        target: TransactionType,
        assertion: CriticalAssertion,
        source: TransactionType,
        assumption: Formula = TRUE,
    ) -> InterferenceVerdict:
        """Theorem 1 obligation: the rollback (undo) writes of ``source``."""
        keys = None
        if self.cache.enabled:
            keys = self._keys("rollback", assertion, target, source, assumption)
        return self._cached_check(
            keys,
            lambda: self._decide_rollback(target, assertion, source, assumption),
        )

    def _decide_rollback(self, target, assertion, source, assumption) -> tuple:
        start = time.perf_counter()
        written = frozenset()
        for stmt in source.body:
            written |= stmt.written_resources()
        if self.use_disjoint and not overlaps(assertion.formula.resources(), written):
            self.stats["disjoint"] += 1
            self.tier_times["disjoint"] += time.perf_counter() - start
            return InterferenceVerdict(False, PROVED, "disjoint"), FORMULA_SCOPE
        self.tier_times["disjoint"] += time.perf_counter() - start
        start = time.perf_counter()
        if self.use_symbolic:
            symbolic = self._rollback_symbolic(assertion.formula, source, assumption)
            if symbolic is not None:
                self.tier_times["symbolic"] += time.perf_counter() - start
                return symbolic, FORMULA_SCOPE
        self.tier_times["symbolic"] += time.perf_counter() - start
        start = time.perf_counter()
        verdict = self._bmc(
            target, assertion, source, mode="rollback", assumption=assumption,
        )
        self.tier_times["bmc"] += time.perf_counter() - start
        return verdict, FULL_SCOPE

    def check_unit(
        self,
        target: TransactionType,
        assertion: CriticalAssertion,
        source: TransactionType,
        fcw_excuse: bool = False,
        assumption: Formula = TRUE,
        fcw_targets: list | None = None,
    ) -> InterferenceVerdict:
        """Theorems 2/3/5 obligation: ``source`` as one atomic unit.

        With ``fcw_excuse``, instances whose write sets intersect are
        exempt: first-committer-wins aborts one of them.  Theorem 5 uses
        the target's full static write set; Theorem 3 passes
        ``fcw_targets`` — only the items the target read *and* wrote, the
        ones its commit effectively read-locked (the paper's remark after
        Theorem 3).
        """
        # the excuse formula is the only target-dependent input of the
        # symbolic tier, so it goes into the formula-scope key: obligations
        # with equal excuses (in particular FALSE, the no-excuse case) share
        # verdicts across targets
        excuse = (
            fcw_excuse_formula(target, source, fcw_targets) if fcw_excuse else FALSE
        )
        keys = None
        if self.cache.enabled:
            keys = self._keys(
                "unit", assertion, target, source, assumption,
                formula_extra=(excuse,), full_extra=(fcw_excuse, fcw_targets),
            )
        return self._cached_check(
            keys,
            lambda: self._decide_unit(
                target, assertion, source, excuse, fcw_excuse, assumption, fcw_targets
            ),
        )

    def _decide_unit(
        self, target, assertion, source, excuse, fcw_excuse, assumption, fcw_targets
    ) -> tuple:
        start = time.perf_counter()
        if self.use_disjoint and not overlaps(
            assertion.formula.resources(), source.written_resources()
        ):
            self.stats["disjoint"] += 1
            self.tier_times["disjoint"] += time.perf_counter() - start
            return InterferenceVerdict(False, PROVED, "disjoint"), FORMULA_SCOPE
        self.tier_times["disjoint"] += time.perf_counter() - start
        start = time.perf_counter()
        if self.use_symbolic:
            symbolic = self._transaction_symbolic(assertion.formula, source, excuse, assumption)
            if symbolic is not None:
                self.tier_times["symbolic"] += time.perf_counter() - start
                return symbolic, FORMULA_SCOPE
        self.tier_times["symbolic"] += time.perf_counter() - start
        start = time.perf_counter()
        verdict = self._bmc(
            target, assertion, source, mode="unit", fcw_excuse=fcw_excuse,
            assumption=assumption, fcw_targets=fcw_targets,
        )
        self.tier_times["bmc"] += time.perf_counter() - start
        return verdict, FULL_SCOPE

    # -- tier 2: symbolic ------------------------------------------------------

    def _statement_symbolic(
        self, assertion: Formula, source: TransactionType, stmt: Statement,
        assumption: Formula = TRUE,
    ) -> InterferenceVerdict | None:
        if not isinstance(stmt, Write):
            return None
        entry = conj(
            source.consistency,
            source.param_pre,
            *(eq(logical, term) for logical, term in source.snapshot),
        )
        paths = annotate_paths(source.body, entry, max_loop_unroll=1)
        obligations: list = []
        for path in paths:
            for point in path.points:
                if point.statement == stmt:
                    obligations.append((point.pre, point.exact))
        if not obligations:
            return None
        all_valid = True
        for pre, exact in obligations:
            after = fx.apply_single_write(assertion, stmt.target, stmt.value)
            if after is None:
                return None
            goal = implies(conj(assertion, pre, assumption), after)
            result = is_valid(goal)
            if result.verdict == Verdict.INVALID:
                self.stats["symbolic"] += 1
                return InterferenceVerdict(
                    True,
                    PROVED,
                    "symbolic",
                    witness=Witness("symbolic", f"{stmt!r} can falsify {assertion!r}", model=result.model),
                )
            if result.verdict != Verdict.VALID or not exact:
                all_valid = False
        if all_valid:
            self.stats["symbolic"] += 1
            return InterferenceVerdict(False, PROVED, "symbolic")
        return None

    def _rollback_symbolic(
        self, assertion: Formula, source: TransactionType, assumption: Formula = TRUE
    ) -> InterferenceVerdict | None:
        paths = fx.symbolic_paths(source, unroll=self.unroll)
        if paths is None:
            return None
        for path in paths:
            havoc = {
                written_target: fresh_logical(getattr(written_target, "var_sort", "int"))
                for written_target, _value in path.writes
            }
            if not havoc:
                continue
            after = fx.apply_store(assertion, havoc)
            if after is None:
                return None
            goal = implies(conj(assertion, path.condition, assumption), after)
            result = is_valid(goal)
            if result.verdict == Verdict.INVALID:
                self.stats["symbolic"] += 1
                return InterferenceVerdict(
                    True,
                    PROVED,
                    "rollback-symbolic",
                    witness=Witness("rollback", f"undo of {source.name} can falsify {assertion!r}", model=result.model),
                )
            if result.verdict != Verdict.VALID:
                return None
        self.stats["symbolic"] += 1
        return InterferenceVerdict(False, PROVED, "rollback-symbolic")

    def _transaction_symbolic(
        self, assertion: Formula, source: TransactionType, excuse: Formula,
        assumption: Formula = TRUE,
    ) -> InterferenceVerdict | None:
        paths = fx.symbolic_paths(source, unroll=self.unroll)
        if paths is None:
            return None
        for path in paths:
            after = fx.apply_store(assertion, path.store)
            if after is None:
                return None
            goal = implies(conj(assertion, path.condition, assumption), disj(excuse, after))
            result = is_valid(goal)
            if result.verdict == Verdict.INVALID:
                self.stats["symbolic"] += 1
                return InterferenceVerdict(
                    True,
                    PROVED,
                    "symbolic",
                    witness=Witness("symbolic", f"{source.name} as a unit can falsify {assertion!r}", model=result.model),
                )
            if result.verdict != Verdict.VALID:
                return None
        self.stats["symbolic"] += 1
        return InterferenceVerdict(False, PROVED, "symbolic")

    # -- tier 3: bounded model checking ---------------------------------------
    #
    # Scenario orderings.  Interference requires the source's offending
    # operation to execute while the target's assertion is active.  The
    # source may have started *before* the target reached that control
    # point, so two orderings are explored:
    #
    #   A. the target runs to an activation point, then the source acts
    #      (runs as a unit / runs far enough to execute the statement /
    #      runs and rolls back);
    #   B. (statement and rollback modes) the source runs a prefix first,
    #      the target executes to an activation point on the source-modified
    #      state — dirty reads, legal at READ UNCOMMITTED — and then the
    #      source's next write executes, or the source rolls back.
    #
    # Ordering B is what the paper's New_Order example needs: T2 inserts an
    # order and bumps MAXDATE, T1 reads the bumped MAXDATE, T2 rolls back —
    # invalidating T1's ``maxdate <= maximum_date``.
    #
    # Scenarios in which the target and the source wrote the same location
    # are skipped: long write locks (held at every level) make those
    # interleavings impossible.

    def _bmc(
        self,
        target: TransactionType,
        assertion: CriticalAssertion,
        source: TransactionType,
        mode: str,
        stmt: Statement | None = None,
        fcw_excuse: bool = False,
        assumption: Formula = TRUE,
        dirty_reads: bool = True,
        fcw_targets: list | None = None,
    ) -> InterferenceVerdict:
        if self.spec is None:
            self.stats["assumed"] += 1
            return InterferenceVerdict(
                True, ASSUMED, "no-domain-spec",
                note="no bounded domains available; conservatively assumed to interfere",
            )
        rng = random.Random(self.seed)
        states, exhaustive = self._cached_states(rng)
        if self._bmc_chunkable(target, source, exhaustive, len(states)):
            chunks = chunked(states, self.workers)
            results, stopped = parallel_map(
                lambda chunk: self._bmc_scan(
                    chunk, random.Random(self.seed), True, target, assertion,
                    source, mode, stmt, fcw_excuse, assumption, dirty_reads,
                    fcw_targets,
                ),
                chunks,
                self.workers,
                stop_on=lambda scanned: scanned[0] is not None,
            )
            cases = sum(scanned[1] for scanned in results if scanned is not None)
            witness = results[stopped][0] if stopped is not None else None
        else:
            witness, cases, exhaustive = self._bmc_scan(
                states, rng, exhaustive, target, assertion, source, mode, stmt,
                fcw_excuse, assumption, dirty_reads, fcw_targets,
            )
        self.stats["bmc"] += 1
        if witness is not None:
            return InterferenceVerdict(True, PROVED, f"bmc-{mode}", witness=witness)
        confidence = BOUNDED if exhaustive else SAMPLED
        return InterferenceVerdict(
            False, confidence, f"bmc-{mode}", note=f"{cases} scenario cases examined"
        )

    def _bmc_chunkable(
        self, target: TransactionType, source: TransactionType,
        states_exhaustive: bool, n_states: int,
    ) -> bool:
        """Whether state chunks can be scanned concurrently without changing
        the verdict: every search space must be exhaustive — sampled spaces
        draw from one shared rng sequence, so partitioning them would change
        which scenarios get examined."""
        if self.workers <= 1 or n_states <= 1 or not states_exhaustive:
            return False
        probe = random.Random(self.seed)
        target_space = iter_assignments(list(target.params), self.spec, 512, probe)
        source_space = iter_assignments(list(source.params), self.spec, 512, probe)
        return target_space.exhaustive and source_space.exhaustive

    def _bmc_scan(
        self,
        states: Sequence[DbState],
        rng: random.Random,
        exhaustive: bool,
        target: TransactionType,
        assertion: CriticalAssertion,
        source: TransactionType,
        mode: str,
        stmt: Statement | None,
        fcw_excuse: bool,
        assumption: Formula,
        dirty_reads: bool,
        fcw_targets: list | None,
    ) -> tuple:
        """Scan a subset of initial states; returns (witness, cases, exhaustive)."""
        counter = {"cases": 0}
        target_params = tuple(target.params)
        source_params = tuple(source.params)
        for state0 in states:
            target_space, t_exhaustive = self._assignment_space(target_params, rng)
            exhaustive = exhaustive and t_exhaustive
            for target_env, target_args in target_space:
                source_space, s_exhaustive = self._assignment_space(source_params, rng)
                exhaustive = exhaustive and s_exhaustive
                for source_env, source_args in source_space:
                    if not self._memo_holds(source.param_pre, state0, source_env):
                        continue
                    if assumption is not TRUE and not self._memo_holds(
                        assumption, state0, self._combined_env(target_env, source_env)
                    ):
                        continue
                    if fcw_excuse:
                        target_writes = _concrete_write_targets(
                            target,
                            target_env,
                            restrict=(
                                fcw_targets
                                if fcw_targets is not None
                                else self._static_targets(target)
                            ),
                        )
                        source_writes = _concrete_write_targets(
                            source, source_env, restrict=self._static_targets(source)
                        )
                        if (
                            target_writes is not None
                            and source_writes is not None
                            and target_writes & source_writes
                        ):
                            continue  # first-committer-wins aborts one of them
                    witness = self._scenario_a(
                        state0, target, target_env, target_args, source, source_env,
                        source_args, assertion, mode, stmt, counter,
                    )
                    if witness is None and mode in ("statement", "rollback") and dirty_reads:
                        witness = self._scenario_b(
                            state0, target, target_env, target_args, source, source_env,
                            source_args, assertion, mode, stmt, counter,
                        )
                    if witness is not None:
                        witness.env = (witness.env or {}) | {
                            "target_args": target_args,
                            "source_args": source_args,
                        }
                        return witness, counter["cases"], exhaustive
        return None, counter["cases"], exhaustive

    def _scenario_a(
        self, state0, target, target_env, target_args, source, source_env,
        source_args, assertion, mode, stmt, counter,
    ) -> Witness | None:
        """Target reaches an activation point first, then the source acts."""
        if not self._memo_holds(target.consistency, state0, target_env):
            return None
        if not self._memo_holds(target.param_pre, state0, target_env):
            return None
        try:
            target_trace = self._cached_trace(target, state0, target_args)
        except EvaluationError:
            return None
        # positions sharing a snapshot *and* an assertion-relevant env view
        # are fully equivalent for injection — the injected states, every
        # assertion evaluation and hence the witness verdict coincide — so
        # each equivalence class is examined once
        seen: set = set()
        for position in self._positions(assertion, target_trace):
            mid_state = target_trace.states[position]
            mid_env = target_trace.envs[position]
            env_key = self._env_key(assertion.formula, mid_env)
            if env_key is not None:
                dedupe = (id(mid_state), env_key)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
            counter["cases"] += 1
            if not self._memo_holds(source.consistency, mid_state, source_env):
                continue
            if not self._memo_holds_keyed(assertion.formula, mid_state, mid_env, env_key):
                continue
            witness = self._inject_source(
                assertion, mid_state, mid_env, source, source_args, mode, stmt
            )
            if witness is not None:
                return witness
        return None

    def _scenario_b(
        self, state0, target, target_env, target_args, source, source_env,
        source_args, assertion, mode, stmt, counter,
    ) -> Witness | None:
        """The source runs a prefix first; the target reads through it."""
        if not self._memo_holds(source.consistency, state0, source_env):
            return None
        try:
            source_trace = self._cached_trace(source, state0, source_args)
        except EvaluationError:
            return None
        write_positions = [k for k, event in enumerate(source_trace.events) if event.is_write]
        if not write_positions:
            return None
        source_cumulative = source_trace.cumulative_writes()
        for k in write_positions:
            # the source has executed k events; its (k+1)-th is a write for
            # statement mode, or the rollback point for rollback mode
            prefix_end = k if mode == "statement" else k + 1
            prefix = source_trace.events[:prefix_end]
            if mode == "statement" and source_trace.events[k].statement != stmt:
                continue
            if mode == "statement" and not prefix:
                continue  # ordering A already covers a source acting fresh
            source_written = source_cumulative[prefix_end]
            # dirty states are identity-stable (the source trace is memoised),
            # so the target trace from each one is memoised too: every
            # obligation over this (state, args) scenario shares it
            dirty_state = source_trace.states[prefix_end]
            if not self._memo_holds(target.consistency, dirty_state, target_env):
                continue
            if not self._memo_holds(target.param_pre, dirty_state, target_env):
                continue
            try:
                target_trace = self._cached_trace(target, dirty_state, target_args)
            except EvaluationError:
                continue
            # only positions at which the target has not yet touched a
            # location the source write-locked are reachable interleavings
            cumulative = target_trace.cumulative_writes()
            seen: set = set()
            for position in self._positions(assertion, target_trace):
                if source_written & cumulative[position]:
                    continue  # long write locks forbid this interleaving
                mid_state = target_trace.states[position]
                mid_env = target_trace.envs[position]
                env_key = self._env_key(assertion.formula, mid_env)
                if env_key is not None:
                    dedupe = (id(mid_state), env_key)
                    if dedupe in seen:
                        continue  # equivalent to an already-examined position
                    seen.add(dedupe)
                counter["cases"] += 1
                if not self._memo_holds_keyed(assertion.formula, mid_state, mid_env, env_key):
                    continue
                if mode == "statement":
                    after = self._memo_stmt_after(stmt, mid_state, source_trace.envs[k])
                    if after is None:
                        continue
                    if not self._memo_holds(assertion.formula, after, mid_env):
                        return Witness(
                            "concrete",
                            f"{stmt!r} of {source.name} (started first) flips {assertion.label}",
                            state=mid_state,
                        )
                else:  # rollback
                    res = assertion.formula.resources()
                    current = mid_state.fork()
                    flipped = False
                    for event in reversed(prefix):
                        if not event.is_write:
                            continue
                        _apply_undo(current, _event_undo(event))
                        # an undo with a footprint disjoint from the
                        # assertion cannot have changed its value
                        if not self._res_overlaps(res, event.statement):
                            continue
                        if not _holds(assertion.formula, current, mid_env):
                            flipped = True
                            break
                    if flipped:
                        return Witness(
                            "rollback",
                            f"rollback of {source.name} after {prefix_end} ops"
                            f" flips {assertion.label} (target read dirty data)",
                            state=mid_state,
                        )
        return None

    def _inject_source(
        self,
        assertion: CriticalAssertion,
        mid_state: DbState,
        mid_env: dict,
        source: TransactionType,
        source_args: dict,
        mode: str,
        stmt: Statement | None,
    ) -> Witness | None:
        if mode == "unit":
            final = self._memo_unit_final(source, mid_state, source_args)
            if final is None:
                return None
            if not self._memo_holds(assertion.formula, final, mid_env):
                return Witness(
                    "concrete",
                    f"{source.name} as a unit flips {assertion.label}",
                    state=mid_state,
                )
            return None
        try:
            source_trace = self._cached_trace(source, mid_state, source_args)
        except EvaluationError:
            return None
        if mode == "statement":
            akey = self._env_key(assertion.formula, mid_env)
            for event in source_trace.events:
                if event.statement == stmt and event.is_write:
                    if self._memo_holds_keyed(
                        assertion.formula, event.before, mid_env, akey
                    ) and not self._memo_holds_keyed(
                        assertion.formula, event.after, mid_env, akey
                    ):
                        return Witness(
                            "concrete",
                            f"{stmt!r} of {source.name} flips {assertion.label}",
                            state=event.before,
                        )
            return None
        if mode == "rollback":
            # undoing a write can only change the assertion's value if the
            # write's footprint overlaps the assertion's resources — the same
            # soundness assumption the disjointness tier rests on — so
            # non-overlapping undo steps skip the evaluation
            res = assertion.formula.resources()
            write_positions = [
                k for k, event in enumerate(source_trace.events) if event.is_write
            ]
            akey = self._env_key(assertion.formula, mid_env)
            for k in write_positions:
                undo_events = [
                    event
                    for event in reversed(source_trace.events[: k + 1])
                    if event.is_write
                ]
                if not any(
                    self._res_overlaps(res, event.statement) for event in undo_events
                ):
                    continue
                mid = source_trace.events[k].after
                if not self._memo_holds_keyed(assertion.formula, mid, mid_env, akey):
                    continue
                for event, rolled in zip(
                    undo_events, _cached_undo_states(source_trace, k)
                ):
                    if not self._res_overlaps(res, event.statement):
                        continue
                    if not self._memo_holds_keyed(assertion.formula, rolled, mid_env, akey):
                        return Witness(
                            "rollback",
                            f"rollback of {source.name} after {k + 1} ops flips {assertion.label}",
                            state=mid,
                        )
            return None
        raise ValueError(f"unknown BMC mode {mode!r}")


def _event_delta(event: TraceEvent) -> frozenset:
    """Locations the event changed, derived from the undo recipe and cached."""
    delta = event.delta
    if delta is None:
        items, fields, rows = _event_undo(event)
        out = set()
        for name, _old in items:
            out.add(("item", name))
        for array, index, attr, _old in fields:
            out.add(("field", array, index, attr))
        for table, added, removed in rows:
            for key in added:
                out.add(("row", table, key))
            for key in removed:
                out.add(("row", table, key))
        delta = frozenset(out)
        event.delta = delta
    return delta


def _delta_locations(before: DbState, after: DbState) -> set:
    """Locations changed between two states (for lock-conflict filtering)."""
    out: set = set()
    for name in set(before.items) | set(after.items):
        if before.items.get(name) != after.items.get(name):
            out.add(("item", name))
    for array in set(before.arrays) | set(after.arrays):
        indices = set(before.arrays.get(array, {})) | set(after.arrays.get(array, {}))
        for index in indices:
            old = before.arrays.get(array, {}).get(index, {})
            new = after.arrays.get(array, {}).get(index, {})
            for attr in set(old) | set(new):
                if old.get(attr) != new.get(attr):
                    out.add(("field", array, index, attr))
    for table in set(before.tables) | set(after.tables):
        old_rows = _row_multiset(before.tables.get(table, []))
        new_rows = _row_multiset(after.tables.get(table, []))
        if old_rows != new_rows:
            for key in set(old_rows) | set(new_rows):
                if old_rows.get(key, 0) != new_rows.get(key, 0):
                    out.add(("row", table, key))
    return out


def _activation_positions(assertion: CriticalAssertion, target_trace: Trace) -> list:
    """Trace positions at which the assertion is active."""
    length = target_trace.length
    if assertion.kind == CONSISTENCY:
        return list(range(length + 1))
    if assertion.kind == RESULT:
        return [length]
    if assertion.kind == READ_POST:
        positions: list[int] = []
        for index, event in enumerate(target_trace.events):
            if event.statement == assertion.read_stmt:
                positions.extend(range(index + 1, length + 1))
        return sorted(set(positions))
    if assertion.kind == READ_STEP_POST:
        read_indices = [i for i, event in enumerate(target_trace.events) if not event.is_write]
        write_indices = [i for i, event in enumerate(target_trace.events) if event.is_write]
        if not read_indices:
            return []
        start = read_indices[-1] + 1
        end = write_indices[0] if write_indices else length
        return list(range(start, end + 1))
    raise ValueError(f"unknown assertion kind {assertion.kind!r}")


def _holds(assertion: Formula, state: DbState, env: dict) -> bool:
    """Evaluate an assertion, treating evaluation gaps as 'does not hold'."""
    try:
        return assertion.evaluate(state, env)
    except EvaluationError:
        return False
