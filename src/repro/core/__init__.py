"""Core static-analysis machinery: the paper's primary contribution.

Submodules:

* :mod:`repro.core.terms`, :mod:`repro.core.formula` — the assertion language;
* :mod:`repro.core.state` — concrete database states;
* :mod:`repro.core.prover` — validity/satisfiability engine;
* :mod:`repro.core.program` — transaction-program IR;
* :mod:`repro.core.sp` — strongest postconditions and path annotation;
* :mod:`repro.core.effects` — whole-transaction symbolic effects;
* :mod:`repro.core.domains` — finite domains for bounded model checking;
* :mod:`repro.core.interference` — the interference check, three tiers;
* :mod:`repro.core.conditions` — Theorems 1–6 as checkable conditions;
* :mod:`repro.core.chooser` — the Section 5 lowest-level procedure;
* :mod:`repro.core.report` — structured analysis reports.
"""
