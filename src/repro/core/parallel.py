"""Parallel fan-out for independent interference obligations and BMC chunks.

The obligations a per-level theorem demands are mutually independent — each
is one Hoare-triple check — so they can be discharged concurrently.  The
same holds one level down: the bounded model checker's outer loop enumerates
initial states, and disjoint state chunks can be searched concurrently as
long as the *reported* witness is the one the serial order would have found
(see :func:`parallel_map`'s ordered early-stop discipline).

Two executors are supported:

* ``thread`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the checker and its memo tables.  Safe for arbitrary applications
  (closures in ``AbstractPred`` evaluators and domain constraints never
  cross a process boundary).
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` whose
  work units are picklable *references*: the application registry name, the
  transaction and level, the obligation indices of the chunk, and the
  checker configuration.  Workers rebuild the application from the registry
  (:func:`repro.apps.registry`) and re-derive the obligation plan, which is
  deterministic, so indices line up.

``workers=1`` (the default, overridable with the ``REPRO_WORKERS``
environment variable or the CLI ``--workers`` flag) bypasses the executors
entirely and runs the exact serial loops the seed shipped with — the
deterministic fallback the equality tests pin down.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"


def resolve_workers(value: int | None = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``, else 1."""
    if value is not None:
        return max(1, int(value))
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class ParallelPolicy:
    """How a level check distributes its obligations.

    ``app_ref`` names the application in :func:`repro.apps.registry`; it is
    required by (and only by) the process backend, whose workers must
    rebuild the application on their side of the fork.  ``early_cancel``
    stops dispatching once one obligation fails — useful while probing
    ladder levels that will be rejected anyway — at the price of an
    obligation list that only contains the checks that actually ran.
    """

    workers: int = 1
    backend: str = THREAD_BACKEND
    early_cancel: bool = False
    app_ref: str | None = None

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1


SERIAL_POLICY = ParallelPolicy()


def chunked(items: Sequence, chunks: int) -> list:
    """Split a sequence into at most ``chunks`` contiguous, ordered runs."""
    if chunks <= 1 or len(items) <= 1:
        return [list(items)] if items else []
    size = max(1, (len(items) + chunks - 1) // chunks)
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int,
    stop_on: Callable | None = None,
):
    """Ordered map over independent items, optionally stopping early.

    Returns ``(results, stopped_at)``.  ``results[i]`` is ``fn(items[i])``
    for every evaluated item and ``None`` for items skipped by an early
    stop; ``stopped_at`` is the index of the first item whose result
    satisfied ``stop_on`` (``None`` when no stop fired).

    Determinism: results are scanned in *input order* regardless of
    completion order, so the reported first hit is the one a serial loop
    would find.  Items after the hit may or may not have been evaluated;
    their results are discarded either way.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        results: list = [None] * len(items)
        for index, item in enumerate(items):
            result = fn(item)
            results[index] = result
            if stop_on is not None and stop_on(result):
                return results, index
        return results, None

    results = [None] * len(items)
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        pending = set(futures)
        done_results: dict = {}
        scan = 0  # next input index to report, preserving serial order
        stopped_at = None
        while pending and stopped_at is None:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                done_results[futures[future]] = future.result()
            while scan in done_results:
                results[scan] = done_results.pop(scan)
                if stop_on is not None and stop_on(results[scan]):
                    stopped_at = scan
                    break
                scan += 1
        if stopped_at is not None:
            for future in pending:
                future.cancel()
            for index in range(stopped_at + 1, len(items)):
                results[index] = None
            return results, stopped_at
        for future, index in futures.items():
            if index not in done_results and results[index] is None and future.done():
                done_results[index] = future.result()
        while scan < len(items):
            if scan in done_results:
                results[scan] = done_results.pop(scan)
                if stop_on is not None and stop_on(results[scan]):
                    return results, scan
            scan += 1
    return results, None


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------


def _subprocess_discharge(work: tuple) -> list:
    """Worker entry point: rebuild the app, re-derive the plan, discharge.

    ``work`` is ``(app_ref, transaction, level, indices, config)`` where
    ``config`` is the picklable checker configuration dict.  Returns
    ``[(index, verdict), ...]`` — verdicts (including concrete witnesses)
    pickle cleanly because they hold only dataclasses, dicts and strings.
    """
    app_ref, transaction, level, indices, config = work
    from repro.apps import registry
    from repro.core import conditions
    from repro.core.interference import InterferenceChecker

    app = registry()[app_ref]()
    target = app.transaction(transaction)
    checker = InterferenceChecker(app.spec, **config)
    plan = conditions.plan_level(app, target, level)
    out = []
    for index in indices:
        spec = plan[index]
        if spec.excused is not None:
            out.append((index, None))
            continue
        out.append((index, conditions.discharge_one(checker, spec)))
    return out


def process_discharge(
    app_ref: str,
    transaction: str,
    level: str,
    indices: Sequence[int],
    config: dict,
    workers: int,
) -> dict:
    """Fan obligation indices out across a process pool; returns {index: verdict}."""
    out: dict = {}
    batches = chunked(list(indices), workers)
    if not batches:
        return out
    with ProcessPoolExecutor(max_workers=min(workers, len(batches))) as pool:
        jobs = [
            pool.submit(_subprocess_discharge, (app_ref, transaction, level, batch, config))
            for batch in batches
        ]
        for job in jobs:
            for index, verdict in job.result():
                out[index] = verdict
    return out
