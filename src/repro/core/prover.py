"""A small validity/satisfiability engine for the assertion language.

The paper discharges its non-interference triples (3) by hand in Hoare
logic.  This module mechanises the quantifier-free fragment the worked
examples live in: boolean combinations of *linear integer* comparisons over
atomic reference terms, plus equalities over string terms and boolean atoms.

Pipeline for :func:`is_satisfiable`:

1. *opacification* — quantified subformulas, membership assertions,
   aggregates and abstract predicates are replaced by fresh uninterpreted
   atoms (identical subtrees share an atom).  A ``VALID`` verdict on the
   abstraction is sound for the original formula; a counterexample found
   through an abstraction is only a *candidate* and is downgraded to
   ``UNKNOWN`` unless the formula needed no abstraction;
2. *negation normal form* with integer ``!=`` split into ``< or >``;
3. *disjunctive normal form* (capped — oversized formulas yield UNKNOWN),
   with cubes ordered cheapest-first so a SAT exit is found early;
4. each cube is decided by: boolean-literal consistency, a union-find over
   string equalities, and linear-integer reasoning.  Integer cubes go
   through a pure-Python fast path first — bounds propagation with integer
   tightening, complete enumeration of small implied boxes, and pairwise
   Fourier–Motzkin elimination for rational refutation — and only cubes the
   fast path cannot close fall back to the LP relaxation
   (``scipy.optimize.linprog`` + rounding + box search).  ``scipy`` is a
   lazy, optional import: without it, hard cubes degrade to UNKNOWN with a
   logged reason instead of failing the analysis.

Verdicts are three-valued (:class:`Verdict`); every consumer in the
interference checker treats ``UNKNOWN`` conservatively.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core import formula as fm
from repro.core import terms as tm
from repro.core.formula import (
    And,
    BoolAtom,
    Bottom,
    Cmp,
    CountWhere,
    ExistsRow,
    ForAllInts,
    ForAllRows,
    Formula,
    Implies,
    InTable,
    Not,
    Or,
    Top,
    TRUE,
    FALSE,
    AbstractPred,
    conj,
    disj,
)
from repro.core.terms import (
    Add,
    BoolConst,
    IntConst,
    Mul,
    Neg,
    StrConst,
    Sub,
    Term,
)
from repro.errors import ProverError

#: Version of the decision procedure; part of the persistent verdict-store
#: salt (see :mod:`repro.core.persist`) so verdicts computed by an older
#: prover can never satisfy a lookup after the procedure changes.
PROVER_VERSION = "2"

#: Maximum number of DNF cubes explored before giving up with UNKNOWN.
MAX_CUBES = 4096

#: Half-width of the integer box searched when LP rounding fails.
BOX_RADIUS = 4

#: Maximum number of integer variables for which box enumeration is tried.
MAX_BOX_VARS = 5

#: Global switch for the LP-free integer fast path (benchmarks flip it off
#: to measure the pure-LP baseline; verdicts are identical either way).
USE_FAST_PATH = True

#: Bounds-propagation rounds before the fast path stops tightening.
FAST_PROP_ROUNDS = 16

#: Largest implied integer box the fast path enumerates exhaustively.
FAST_BOX_LIMIT = 4096

#: Row cap for Fourier–Motzkin elimination before the fast path gives up.
FAST_FM_ROWS = 256

_log = logging.getLogger("repro.prover")


class Verdict:
    """Result of a validity or satisfiability query."""

    VALID = "valid"
    INVALID = "invalid"
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ProofResult:
    """Outcome of a prover query.

    ``model`` is a counterexample (for validity queries) or a satisfying
    assignment (for satisfiability queries), mapping atomic terms to values.
    ``abstracted`` records whether opacification replaced any subformula, in
    which case a model is only a candidate.
    """

    verdict: str
    model: Mapping[Term, object] | None = None
    abstracted: bool = False
    reason: str = ""

    def __bool__(self) -> bool:
        return self.verdict == Verdict.VALID


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------

#: Cap on entries per memo table; the oldest insertion half is evicted on
#: overflow (see :func:`_memo_put`).
MEMO_CAP = 200_000

_term_memo: dict = {}
_formula_memo: dict = {}
_query_memo: dict = {}

_memo_stats = {
    "simplify_hits": 0,
    "simplify_misses": 0,
    "query_hits": 0,
    "query_misses": 0,
    "memo_evictions": 0,
    "fastpath_sat": 0,
    "fastpath_unsat": 0,
    "fastpath_open": 0,  # cubes the fast path could not close
    "lp_calls": 0,
    "lp_unavailable": 0,
}


def prover_cache_stats() -> dict:
    """Counters and sizes of the prover's memo tables and decision paths.

    Includes the simplify/query hit and miss counts, per-table entry counts,
    derived hit rates, and how many integer cubes the LP-free fast path
    closed versus handed to ``linprog``.
    """
    stats = dict(_memo_stats)
    stats["term_memo_size"] = len(_term_memo)
    stats["formula_memo_size"] = len(_formula_memo)
    stats["query_memo_size"] = len(_query_memo)
    simplify_total = stats["simplify_hits"] + stats["simplify_misses"]
    stats["simplify_hit_rate"] = (
        round(stats["simplify_hits"] / simplify_total, 4) if simplify_total else 0.0
    )
    query_total = stats["query_hits"] + stats["query_misses"]
    stats["query_hit_rate"] = (
        round(stats["query_hits"] / query_total, 4) if query_total else 0.0
    )
    return stats


def clear_prover_caches() -> None:
    """Drop all memo tables and reset their counters (test isolation)."""
    _term_memo.clear()
    _formula_memo.clear()
    _query_memo.clear()
    for key in _memo_stats:
        _memo_stats[key] = 0


def _memo_put(table: dict, key, value) -> None:
    if len(table) >= MEMO_CAP:
        # Evict the oldest insertion half rather than clearing wholesale: a
        # long certify run keeps its recent (hot) entries instead of losing
        # the entire memo at the cap and re-proving everything.
        drop = len(table) // 2
        for stale in list(itertools.islice(table, drop)):
            del table[stale]
        _memo_stats["memo_evictions"] += drop
    table[key] = value


# ---------------------------------------------------------------------------
# term simplification (constant folding)
# ---------------------------------------------------------------------------


def simplify_term(term: Term) -> Term:
    """Fold constants and drop arithmetic identities (memoized)."""
    cached = _term_memo.get(term)
    if cached is not None:
        _memo_stats["simplify_hits"] += 1
        return cached
    _memo_stats["simplify_misses"] += 1
    result = _simplify_term_impl(term)
    _memo_put(_term_memo, term, result)
    if result != term:
        # a simplified term is its own fixed point — register it so a later
        # simplify_term(result) is a hit instead of a full re-walk
        _memo_put(_term_memo, result, result)
    return result


def _simplify_term_impl(term: Term) -> Term:
    if isinstance(term, (Add, Sub, Mul)):
        left = simplify_term(term.left)
        right = simplify_term(term.right)
        if isinstance(left, IntConst) and isinstance(right, IntConst):
            if isinstance(term, Add):
                return IntConst(left.value + right.value)
            if isinstance(term, Sub):
                return IntConst(left.value - right.value)
            return IntConst(left.value * right.value)
        if isinstance(term, Add):
            if isinstance(left, IntConst) and left.value == 0:
                return right
            if isinstance(right, IntConst) and right.value == 0:
                return left
            return Add(left, right)
        if isinstance(term, Sub):
            if isinstance(right, IntConst) and right.value == 0:
                return left
            if left == right:
                return IntConst(0)
            return Sub(left, right)
        if isinstance(left, IntConst) and left.value == 1:
            return right
        if isinstance(right, IntConst) and right.value == 1:
            return left
        if (isinstance(left, IntConst) and left.value == 0) or (
            isinstance(right, IntConst) and right.value == 0
        ):
            return IntConst(0)
        return Mul(left, right)
    if isinstance(term, Neg):
        operand = simplify_term(term.operand)
        if isinstance(operand, IntConst):
            return IntConst(-operand.value)
        return Neg(operand)
    if isinstance(term, tm.Field):
        return tm.Field(term.array, simplify_term(term.index), term.attr, term.var_sort)
    return term


def simplify(formula: Formula) -> Formula:
    """Lightweight formula simplification: fold constants, prune units.

    Memoized (bounded).  The result is also registered as its own fixed
    point, so re-simplifying an already-simplified formula — which every
    prover query used to do after the interference layer had simplified its
    goal — is a dictionary hit rather than a second tree walk.
    """
    cached = _formula_memo.get(formula)
    if cached is not None:
        _memo_stats["simplify_hits"] += 1
        return cached
    _memo_stats["simplify_misses"] += 1
    result = _simplify_impl(formula)
    _memo_put(_formula_memo, formula, result)
    if result != formula:
        _memo_put(_formula_memo, result, result)
    return result


def _simplify_impl(formula: Formula) -> Formula:
    if isinstance(formula, Cmp):
        left = simplify_term(formula.left)
        right = simplify_term(formula.right)
        if isinstance(left, (IntConst, BoolConst, StrConst)) and isinstance(
            right, (IntConst, BoolConst, StrConst)
        ):
            result = fm._CMP_OPS[formula.op](left.value, right.value)
            return TRUE if result else FALSE
        if left == right:
            return TRUE if formula.op in ("==", "<=", ">=") else FALSE
        return Cmp(formula.op, left, right)
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, Top):
            return FALSE
        if isinstance(inner, Bottom):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        if isinstance(inner, Cmp) and inner.left.sort != "str":
            return inner.negated()
        return Not(inner)
    if isinstance(formula, And):
        return conj(*(simplify(op) for op in formula.operands))
    if isinstance(formula, Or):
        return disj(*(simplify(op) for op in formula.operands))
    if isinstance(formula, Implies):
        return fm.implies(simplify(formula.premise), simplify(formula.conclusion))
    if isinstance(formula, ForAllRows):
        return ForAllRows(formula.table, formula.row, simplify(formula.body), simplify(formula.where))
    if isinstance(formula, ExistsRow):
        return ExistsRow(formula.table, formula.row, simplify(formula.body), simplify(formula.where))
    if isinstance(formula, ForAllInts):
        return ForAllInts(
            formula.var,
            simplify_term(formula.low),
            simplify_term(formula.high),
            simplify(formula.body),
        )
    if isinstance(formula, BoolAtom):
        term = simplify_term(formula.term)
        if isinstance(term, BoolConst):
            return TRUE if term.value else FALSE
        return BoolAtom(term)
    return formula


# ---------------------------------------------------------------------------
# opacification of non-QF constructs
# ---------------------------------------------------------------------------


@dataclass
class _Opacifier:
    """Replaces non-quantifier-free subformulas/terms by fresh atoms."""

    formula_atoms: dict = field(default_factory=dict)
    term_atoms: dict = field(default_factory=dict)
    used: bool = False

    def formula_atom(self, original: Formula) -> Formula:
        self.used = True
        atom = self.formula_atoms.get(original)
        if atom is None:
            atom = BoolAtom(tm.Local(f"__abs_f{len(self.formula_atoms)}", "bool"))
            self.formula_atoms[original] = atom
        return atom

    def term_atom(self, original: Term) -> Term:
        self.used = True
        atom = self.term_atoms.get(original)
        if atom is None:
            atom = tm.Local(f"__abs_t{len(self.term_atoms)}", "int")
            self.term_atoms[original] = atom
        return atom

    def run_term(self, term: Term) -> Term:
        if isinstance(term, CountWhere):
            return self.term_atom(term)
        if isinstance(term, (Add, Sub, Mul)):
            return type(term)(self.run_term(term.left), self.run_term(term.right))
        if isinstance(term, Neg):
            return Neg(self.run_term(term.operand))
        if isinstance(term, tm.Field):
            return tm.Field(term.array, self.run_term(term.index), term.attr, term.var_sort)
        return term

    def run(self, formula: Formula) -> Formula:
        if isinstance(formula, ForAllInts):
            expanded = _expand_forall_ints(formula)
            if expanded is not None:
                return self.run(expanded)
            return self.formula_atom(formula)
        if isinstance(formula, (ForAllRows, ExistsRow, InTable, AbstractPred)):
            return self.formula_atom(formula)
        if isinstance(formula, Cmp):
            return Cmp(formula.op, self.run_term(formula.left), self.run_term(formula.right))
        if isinstance(formula, BoolAtom):
            return BoolAtom(self.run_term(formula.term))
        if isinstance(formula, Not):
            return Not(self.run(formula.operand))
        if isinstance(formula, And):
            return And(tuple(self.run(op) for op in formula.operands))
        if isinstance(formula, Or):
            return Or(tuple(self.run(op) for op in formula.operands))
        if isinstance(formula, Implies):
            return Implies(self.run(formula.premise), self.run(formula.conclusion))
        return formula


#: Maximum width of a bounded integer quantifier the prover will expand.
MAX_QUANTIFIER_EXPANSION = 8


def _expand_forall_ints(formula: ForAllInts) -> Formula | None:
    """Instantiate a ``forall int`` with small constant bounds.

    ``∀ $d ∈ a..b: body`` with literal ``a``, ``b`` and ``b - a`` below the
    expansion cap becomes the finite conjunction of instantiated bodies —
    an exact reduction that keeps such formulas inside the decidable
    fragment instead of opacifying them.
    """
    low = simplify_term(formula.low)
    high = simplify_term(formula.high)
    if not isinstance(low, IntConst) or not isinstance(high, IntConst):
        return None
    if high.value - low.value >= MAX_QUANTIFIER_EXPANSION:
        return None
    from repro.core.formula import BoundVar

    instances = [
        formula.body.substitute({BoundVar(formula.var): IntConst(value)})
        for value in range(low.value, high.value + 1)
    ]
    return conj(*instances)


# ---------------------------------------------------------------------------
# NNF / DNF
# ---------------------------------------------------------------------------


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, Top):
        return FALSE if negate else TRUE
    if isinstance(formula, Bottom):
        return TRUE if negate else FALSE
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return disj(*parts) if negate else conj(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return conj(*parts) if negate else disj(*parts)
    if isinstance(formula, Implies):
        if negate:
            return conj(_nnf(formula.premise, False), _nnf(formula.conclusion, True))
        return disj(_nnf(formula.premise, True), _nnf(formula.conclusion, False))
    if isinstance(formula, Cmp):
        literal = formula.negated() if negate else formula
        if literal.op == "!=" and literal.left.sort != "str":
            return disj(
                Cmp("<", literal.left, literal.right),
                Cmp(">", literal.left, literal.right),
            )
        return literal
    if isinstance(formula, BoolAtom):
        return Not(formula) if negate else formula
    raise ProverError(f"formula not opacified before NNF: {formula!r}")


def _dnf_cubes(formula: Formula) -> list | None:
    """Cubes (lists of literals) of the DNF; None if the cap is exceeded."""
    if isinstance(formula, Or):
        cubes: list = []
        for op in formula.operands:
            sub = _dnf_cubes(op)
            if sub is None:
                return None
            cubes.extend(sub)
            if len(cubes) > MAX_CUBES:
                return None
        return cubes
    if isinstance(formula, And):
        cubes = [[]]
        for op in formula.operands:
            sub = _dnf_cubes(op)
            if sub is None:
                return None
            cubes = [cube + extra for cube in cubes for extra in sub]
            if len(cubes) > MAX_CUBES:
                return None
        return cubes
    if isinstance(formula, Top):
        return [[]]
    if isinstance(formula, Bottom):
        return []
    return [[formula]]


# ---------------------------------------------------------------------------
# linear-arithmetic cube decision
# ---------------------------------------------------------------------------


def _linearize(term: Term, variables: dict) -> dict | None:
    """Express an int term as {var_term: coeff} plus constant key ``None``.

    Returns None when the term is non-linear (variable * variable).
    """
    if isinstance(term, IntConst):
        return {None: term.value}
    if isinstance(term, Add):
        left = _linearize(term.left, variables)
        right = _linearize(term.right, variables)
        if left is None or right is None:
            return None
        return _combine(left, right, 1)
    if isinstance(term, Sub):
        left = _linearize(term.left, variables)
        right = _linearize(term.right, variables)
        if left is None or right is None:
            return None
        return _combine(left, right, -1)
    if isinstance(term, Neg):
        inner = _linearize(term.operand, variables)
        if inner is None:
            return None
        return {key: -coeff for key, coeff in inner.items()}
    if isinstance(term, Mul):
        left = _linearize(term.left, variables)
        right = _linearize(term.right, variables)
        if left is None or right is None:
            return None
        left_const = set(left) <= {None}
        right_const = set(right) <= {None}
        if left_const:
            factor = left.get(None, 0)
            return {key: coeff * factor for key, coeff in right.items()}
        if right_const:
            factor = right.get(None, 0)
            return {key: coeff * factor for key, coeff in left.items()}
        return None
    # atomic int-valued reference term
    variables.setdefault(term, len(variables))
    return {term: 1}


def _combine(left: dict, right: dict, sign: int) -> dict:
    out = dict(left)
    for key, coeff in right.items():
        out[key] = out.get(key, 0) + sign * coeff
    return {key: coeff for key, coeff in out.items() if key is None or coeff != 0}


@dataclass
class _IntConstraint:
    """coeffs . x  <rel>  bound, with <rel> in {"<=", "=="}."""

    coeffs: dict
    rel: str
    bound: int


def _int_constraints_of_literal(literal: Cmp, variables: dict) -> list | None:
    """Translate an integer comparison into <= / == constraints."""
    lhs = _linearize(literal.left, variables)
    rhs = _linearize(literal.right, variables)
    if lhs is None or rhs is None:
        return None
    diff = _combine(lhs, rhs, -1)  # lhs - rhs
    const = diff.pop(None, 0)
    op = literal.op
    if op == "==":
        return [_IntConstraint(diff, "==", -const)]
    if op == "<=":
        return [_IntConstraint(diff, "<=", -const)]
    if op == "<":
        return [_IntConstraint(diff, "<=", -const - 1)]
    if op == ">=":
        neg = {key: -coeff for key, coeff in diff.items()}
        return [_IntConstraint(neg, "<=", const)]
    if op == ">":
        neg = {key: -coeff for key, coeff in diff.items()}
        return [_IntConstraint(neg, "<=", const - 1)]
    raise ProverError(f"unexpected integer literal {literal!r}")


def _check_int_assignment(constraints: Sequence[_IntConstraint], assignment: dict) -> bool:
    for constraint in constraints:
        total = sum(coeff * assignment[var] for var, coeff in constraint.coeffs.items())
        if constraint.rel == "==" and total != constraint.bound:
            return False
        if constraint.rel == "<=" and total > constraint.bound:
            return False
    return True


# -- lazy LP backend ---------------------------------------------------------

_lp_backend: tuple | None = None
_lp_probed = False


def _load_lp():
    """``(numpy, linprog)`` or None when scipy is not installed.

    The import is deferred to the first cube the fast path cannot close, so
    fast-path-only installs never pay (or need) the scipy import; the
    degradation to UNKNOWN is logged once per process.
    """
    global _lp_backend, _lp_probed
    if not _lp_probed:
        _lp_probed = True
        try:
            import numpy as np
            from scipy.optimize import linprog

            _lp_backend = (np, linprog)
        except ImportError:
            _lp_backend = None
            _log.warning(
                "scipy is not installed; hard linear cubes will be reported "
                "UNKNOWN (install the 'lp' extra for the LP fallback)"
            )
    return _lp_backend


# -- LP-free fast path -------------------------------------------------------


def _as_inequalities(constraints: Sequence[_IntConstraint]) -> list:
    """Normalise to ``coeffs . x <= bound`` rows (equalities become pairs)."""
    rows: list = []
    for constraint in constraints:
        if constraint.rel == "<=":
            rows.append((constraint.coeffs, constraint.bound))
        else:  # ==  ->  <= and >=
            rows.append((constraint.coeffs, constraint.bound))
            rows.append(
                ({var: -coeff for var, coeff in constraint.coeffs.items()}, -constraint.bound)
            )
    return rows


def _propagate_bounds(rows: Sequence, var_list: Sequence):
    """Fixpoint interval propagation with integer tightening.

    Returns ``(lower, upper)`` bound dicts (entries may stay ``None``), or
    ``None`` when a variable's interval became empty — which, because every
    derived bound uses floor/ceil division, refutes *integer* solutions even
    for rationally feasible systems (e.g. ``2x <= 1 ∧ 2x >= 1``).
    """
    lower: dict = {var: None for var in var_list}
    upper: dict = {var: None for var in var_list}
    for _ in range(FAST_PROP_ROUNDS):
        changed = False
        for coeffs, bound in rows:
            if not coeffs:
                if 0 > bound:
                    return None
                continue
            for var, coeff in coeffs.items():
                residual = bound
                usable = True
                for other, other_coeff in coeffs.items():
                    if other is var or other == var:
                        continue
                    if other_coeff > 0:
                        if lower[other] is None:
                            usable = False
                            break
                        residual -= other_coeff * lower[other]
                    else:
                        if upper[other] is None:
                            usable = False
                            break
                        residual -= other_coeff * upper[other]
                if not usable:
                    continue
                if coeff > 0:
                    new_upper = residual // coeff  # floor
                    if upper[var] is None or new_upper < upper[var]:
                        upper[var] = new_upper
                        changed = True
                else:
                    new_lower = -((-residual) // coeff)  # ceil(residual / coeff)
                    if lower[var] is None or new_lower > lower[var]:
                        lower[var] = new_lower
                        changed = True
                if (
                    lower[var] is not None
                    and upper[var] is not None
                    and lower[var] > upper[var]
                ):
                    return None
        if not changed:
            break
    return lower, upper


def _fourier_motzkin_refutes(rows: Sequence, var_list: Sequence) -> bool:
    """True when pairwise elimination derives ``0 <= negative`` (sound UNSAT).

    All combinations scale by positive integers, so the arithmetic stays
    exact over ``int``; rational infeasibility implies integer infeasibility.
    Row growth is capped — hitting the cap just means "not refuted here".
    """
    current = [(dict(coeffs), bound) for coeffs, bound in rows]
    for var in var_list:
        uppers, lowers, rest = [], [], []
        for coeffs, bound in current:
            coeff = coeffs.get(var, 0)
            if coeff > 0:
                uppers.append((coeffs, bound, coeff))
            elif coeff < 0:
                lowers.append((coeffs, bound, coeff))
            else:
                rest.append((coeffs, bound))
        if len(rest) + len(uppers) * len(lowers) > FAST_FM_ROWS:
            return False
        for u_coeffs, u_bound, u_coeff in uppers:
            for l_coeffs, l_bound, l_coeff in lowers:
                combo: dict = {}
                for key, value in u_coeffs.items():
                    if key != var:
                        combo[key] = combo.get(key, 0) + (-l_coeff) * value
                for key, value in l_coeffs.items():
                    if key != var:
                        combo[key] = combo.get(key, 0) + u_coeff * value
                combo = {key: value for key, value in combo.items() if value != 0}
                new_bound = (-l_coeff) * u_bound + u_coeff * l_bound
                if not combo:
                    if 0 > new_bound:
                        return True
                    continue
                rest.append((combo, new_bound))
        current = rest
    return any(not coeffs and 0 > bound for coeffs, bound in current)


def _fast_int_solve(constraints: Sequence[_IntConstraint], var_list: Sequence):
    """Decide an integer cube without the LP relaxation where possible.

    SAT answers always carry a verified assignment; UNSAT answers come from
    integer-tightened bounds propagation, exhaustive enumeration of a small
    implied box, or Fourier–Motzkin rational refutation — all sound.
    UNKNOWN means "hand the cube to the LP fallback".
    """
    rows = _as_inequalities(constraints)
    propagated = _propagate_bounds(rows, var_list)
    if propagated is None:
        return Verdict.UNSAT, None
    lower, upper = propagated

    if all(lower[var] is not None and upper[var] is not None for var in var_list):
        box = 1
        for var in var_list:
            box *= upper[var] - lower[var] + 1
            if box > FAST_BOX_LIMIT:
                break
        if box <= FAST_BOX_LIMIT:
            # the box contains every integer solution (bounds are implied by
            # the constraints), so enumeration is a complete decision
            ranges = [range(lower[var], upper[var] + 1) for var in var_list]
            for candidate in itertools.product(*ranges):
                assignment = dict(zip(var_list, candidate))
                if _check_int_assignment(constraints, assignment):
                    return Verdict.SAT, assignment
            return Verdict.UNSAT, None

    # cheap candidate probes at the interval corners / zero
    probes = []
    probes.append({var: lower[var] if lower[var] is not None else (upper[var] or 0) for var in var_list})
    probes.append({var: upper[var] if upper[var] is not None else (lower[var] or 0) for var in var_list})
    probes.append(
        {
            var: min(max(0, lower[var] or 0), upper[var] if upper[var] is not None else max(0, lower[var] or 0))
            for var in var_list
        }
    )
    for assignment in probes:
        if _check_int_assignment(constraints, assignment):
            return Verdict.SAT, assignment

    if _fourier_motzkin_refutes(rows, var_list):
        return Verdict.UNSAT, None
    return Verdict.UNKNOWN, None


def _solve_int_constraints(constraints: Sequence[_IntConstraint], variables: dict):
    """Decide a conjunction of linear integer constraints.

    Returns ``(verdict, assignment)`` where verdict is SAT/UNSAT/UNKNOWN.
    The pure-Python fast path runs first; ``linprog`` is only consulted for
    cubes it leaves open (and is itself optional — see :func:`_load_lp`).
    """
    if not constraints:
        return Verdict.SAT, {}
    var_list = sorted(variables, key=variables.get)
    n = len(var_list)
    if n == 0:
        # all constraints are ground
        ok = _check_int_assignment(constraints, {})
        return (Verdict.SAT, {}) if ok else (Verdict.UNSAT, None)

    if USE_FAST_PATH:
        verdict, assignment = _fast_int_solve(constraints, var_list)
        if verdict == Verdict.SAT:
            _memo_stats["fastpath_sat"] += 1
            return verdict, assignment
        if verdict == Verdict.UNSAT:
            _memo_stats["fastpath_unsat"] += 1
            return verdict, None
        _memo_stats["fastpath_open"] += 1

    lp = _load_lp()
    if lp is None:
        _memo_stats["lp_unavailable"] += 1
        return Verdict.UNKNOWN, None
    np, linprog = lp
    _memo_stats["lp_calls"] += 1
    index = {var: i for i, var in enumerate(var_list)}

    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for constraint in constraints:
        row = [0.0] * n
        for var, coeff in constraint.coeffs.items():
            row[index[var]] = float(coeff)
        if constraint.rel == "<=":
            a_ub.append(row)
            b_ub.append(float(constraint.bound))
        else:
            a_eq.append(row)
            b_eq.append(float(constraint.bound))
    result = linprog(
        c=np.zeros(n),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(None, None)] * n,
        method="highs",
    )
    if result.status == 2:  # infeasible over the rationals => int-infeasible
        return Verdict.UNSAT, None
    if result.status != 0 or result.x is None:
        return Verdict.UNKNOWN, None

    relaxed = result.x
    # try all floor/ceil roundings of the relaxed solution (capped)
    if n <= 16:
        floors = [int(np.floor(v)) for v in relaxed]
        ceils = [int(np.ceil(v)) for v in relaxed]
        candidates = itertools.islice(
            itertools.product(*[(f, c) if f != c else (f,) for f, c in zip(floors, ceils)]),
            4096,
        )
        for candidate in candidates:
            assignment = dict(zip(var_list, candidate))
            if _check_int_assignment(constraints, assignment):
                return Verdict.SAT, assignment
    # small-box enumeration around the relaxed point
    if n <= MAX_BOX_VARS:
        centers = [int(round(v)) for v in relaxed]
        ranges = [range(c - BOX_RADIUS, c + BOX_RADIUS + 1) for c in centers]
        for candidate in itertools.product(*ranges):
            assignment = dict(zip(var_list, candidate))
            if _check_int_assignment(constraints, assignment):
                return Verdict.SAT, assignment
    return Verdict.UNKNOWN, None


# ---------------------------------------------------------------------------
# string and boolean literal handling
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def find(self, key):
        self.parent.setdefault(key, key)
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a, b) -> None:
        self.parent[self.find(a)] = self.find(b)


def _solve_string_literals(equalities: list, disequalities: list):
    """Decide string (dis)equalities via union-find; returns model or None."""
    uf = _UnionFind()
    for left, right in equalities:
        uf.union(left, right)
    for left, right in disequalities:
        if uf.find(left) == uf.find(right):
            return Verdict.UNSAT, None
    # check no class merges two distinct constants
    class_const: dict = {}
    all_terms = {t for pair in equalities + disequalities for t in pair}
    for term in all_terms:
        root = uf.find(term)
        if isinstance(term, StrConst):
            if root in class_const and class_const[root] != term.value:
                return Verdict.UNSAT, None
            class_const[root] = term.value
    model: dict = {}
    fresh = 0
    for term in all_terms:
        root = uf.find(term)
        if root not in class_const:
            class_const[root] = f"str#{fresh}"
            fresh += 1
        if not isinstance(term, StrConst):
            model[term] = class_const[root]
    return Verdict.SAT, model


def _decide_cube(literals: Sequence[Formula]):
    """Decide a conjunction of literals; returns (verdict, model|None)."""
    int_constraints: list = []
    variables: dict = {}
    str_eqs: list = []
    str_neqs: list = []
    bool_assign: dict = {}
    for literal in literals:
        base = literal
        polarity = True
        if isinstance(base, Not):
            base = base.operand
            polarity = False
        if isinstance(base, BoolAtom):
            term = base.term
            if isinstance(term, BoolConst):
                if term.value != polarity:
                    return Verdict.UNSAT, None
                continue
            if term in bool_assign and bool_assign[term] != polarity:
                return Verdict.UNSAT, None
            bool_assign[term] = polarity
            continue
        if isinstance(base, Cmp):
            if not polarity:
                base = base.negated()
            if base.left.sort == "str" or base.right.sort == "str":
                if base.op == "==":
                    str_eqs.append((base.left, base.right))
                elif base.op == "!=":
                    str_neqs.append((base.left, base.right))
                else:
                    return Verdict.UNKNOWN, None
                continue
            if base.left.sort == "bool" or base.right.sort == "bool":
                converted = _bool_equality(base, bool_assign)
                if converted is False:
                    return Verdict.UNSAT, None
                if converted is None:
                    return Verdict.UNKNOWN, None
                continue
            translated = _int_constraints_of_literal(base, variables)
            if translated is None:
                return Verdict.UNKNOWN, None
            int_constraints.extend(translated)
            continue
        return Verdict.UNKNOWN, None

    str_verdict, str_model = _solve_string_literals(str_eqs, str_neqs)
    if str_verdict == Verdict.UNSAT:
        return Verdict.UNSAT, None
    int_verdict, int_model = _solve_int_constraints(int_constraints, variables)
    if int_verdict == Verdict.UNSAT:
        return Verdict.UNSAT, None
    if int_verdict == Verdict.UNKNOWN:
        return Verdict.UNKNOWN, None
    model: dict = {}
    model.update(str_model or {})
    model.update(int_model or {})
    for term, value in bool_assign.items():
        model[term] = value
    return Verdict.SAT, model


def _bool_equality(literal: Cmp, bool_assign: dict):
    """Handle ``b == true``-style comparisons against the bool assignment.

    Returns True on success, False on contradiction, None when the shape is
    not supported.
    """
    left, right, op = literal.left, literal.right, literal.op
    if isinstance(left, BoolConst) and not isinstance(right, BoolConst):
        left, right = right, left
    if isinstance(right, BoolConst):
        wanted = right.value if op == "==" else not right.value
        if op not in ("==", "!="):
            return None
        if left in bool_assign and bool_assign[left] != wanted:
            return False
        bool_assign[left] = wanted
        return True
    return None


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def _congruence_axioms(goal: Formula) -> list:
    """Ackermann-style array congruence: equal indices force equal values.

    Two ``Field`` atoms over the same array and attribute denote the same
    location exactly when their indices agree; without these axioms the
    linear core would treat ``a[i]`` and ``a[j]`` as unrelated even under an
    assumed ``i == j``.
    """
    fields: dict = {}
    for atom in goal.atoms():
        if isinstance(atom, tm.Field):
            fields.setdefault((atom.array, atom.attr), set()).add(atom)
    axioms: list[Formula] = []
    for group in fields.values():
        ordered = sorted(group, key=repr)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1 :]:
                if left.index == right.index:
                    continue
                axioms.append(
                    fm.implies(
                        Cmp("==", left.index, right.index), Cmp("==", left, right)
                    )
                )
    return axioms


def is_satisfiable(formula: Formula, assumptions: Iterable[Formula] = ()) -> ProofResult:
    """Decide satisfiability of ``formula`` under optional assumptions.

    Memoized on ``(formula, assumptions)``: formulas are frozen dataclasses
    with structural equality, so equal queries — which the interference
    check issues in bulk across isolation levels — share one decision.
    """
    assumptions = tuple(assumptions)
    key = ("sat", formula, assumptions)
    cached = _query_memo.get(key)
    if cached is not None:
        _memo_stats["query_hits"] += 1
        return cached
    _memo_stats["query_misses"] += 1
    result = _is_satisfiable_impl(formula, assumptions)
    _memo_put(_query_memo, key, result)
    return result


def _is_satisfiable_impl(formula: Formula, assumptions: tuple) -> ProofResult:
    goal = conj(*assumptions, formula)
    goal = simplify(goal)
    if isinstance(goal, Top):
        return ProofResult(Verdict.SAT, model={})
    if isinstance(goal, Bottom):
        return ProofResult(Verdict.UNSAT)
    goal = conj(goal, *_congruence_axioms(goal))
    opacifier = _Opacifier()
    abstracted_goal = opacifier.run(goal)
    nnf = _nnf(abstracted_goal, negate=False)
    cubes = _dnf_cubes(nnf)
    if cubes is None:
        return ProofResult(Verdict.UNKNOWN, reason="DNF size cap exceeded")
    # cheapest cubes first: a single SAT cube ends the query, so trying the
    # small ones early avoids deciding large cubes at all on SAT formulas
    # (verdict-neutral: SAT is any-cube, UNSAT is all-cubes)
    cubes.sort(key=len)
    lp_missing_before = _memo_stats["lp_unavailable"]
    saw_unknown = False
    for cube in cubes:
        verdict, model = _decide_cube(cube)
        if verdict == Verdict.SAT:
            if opacifier.used:
                return ProofResult(
                    Verdict.UNKNOWN,
                    model=model,
                    abstracted=True,
                    reason="model found only for an abstraction",
                )
            return ProofResult(Verdict.SAT, model=model)
        if verdict == Verdict.UNKNOWN:
            saw_unknown = True
    if saw_unknown:
        reason = "some cubes undecided"
        if _memo_stats["lp_unavailable"] > lp_missing_before:
            reason += " (scipy unavailable: hard cubes degraded; install the 'lp' extra)"
        return ProofResult(Verdict.UNKNOWN, reason=reason)
    return ProofResult(Verdict.UNSAT, abstracted=opacifier.used)


def is_valid(formula: Formula, assumptions: Iterable[Formula] = ()) -> ProofResult:
    """Decide validity: do the assumptions entail the formula?

    Returns VALID when ``assumptions and not formula`` is unsatisfiable.
    A SAT answer to that query yields INVALID with the model as a genuine
    counterexample; abstraction or arithmetic incompleteness yield UNKNOWN.
    Memoized through :func:`is_satisfiable`.
    """
    negated = conj(*assumptions, Not(formula))
    result = is_satisfiable(negated)
    if result.verdict == Verdict.UNSAT:
        return ProofResult(Verdict.VALID, abstracted=result.abstracted)
    if result.verdict == Verdict.SAT:
        return ProofResult(Verdict.INVALID, model=result.model)
    return ProofResult(Verdict.UNKNOWN, model=result.model, abstracted=result.abstracted, reason=result.reason)


def holds(triple_pre: Formula, triple_post: Formula, assumptions: Iterable[Formula] = ()) -> ProofResult:
    """Convenience: does ``triple_pre`` entail ``triple_post``?"""
    return is_valid(fm.implies(triple_pre, triple_post), assumptions)
