"""Whole-transaction symbolic effects.

Theorems 2, 3 and 5 treat a concurrent transaction ``T_j`` as a *single
isolated unit*: its locks (or its snapshot plus first-committer-wins) force
any other transaction to see either none or all of it.  Checking whether
such a unit interferes with an assertion ``P`` therefore reduces to checking
that ``P`` is preserved across ``T_j``'s *complete* execution:

    { P  ∧  I_j ∧ B_j ∧ path-condition }   T_j   { P }

This module computes the ingredients symbolically for conventional-model
transaction bodies: every execution path (conditionals forked, loops
unrolled) together with the path condition and the *final store* — the
mapping from written database locations to their final values, expressed in
terms of the transaction's initial state and parameters.

Array writes whose index is symbolic introduce aliasing: applying the final
store to ``P`` case-splits on which array references of ``P`` coincide with
written locations (:func:`apply_store`).  Bodies containing relational
statements, loops beyond the unroll bound, or irreducible aliasing return
``None`` and the caller falls back to bounded model checking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.formula import Cmp, Formula, Not, TRUE, conj, disj, eq, ne
from repro.core.program import (
    If,
    LocalAssign,
    Read,
    ReadRecord,
    Statement,
    TransactionType,
    While,
    Write,
)
from repro.core.prover import simplify, simplify_term
from repro.core.terms import Field, IntConst, Item, Local, Term

#: Default loop-unroll bound for symbolic execution.
DEFAULT_UNROLL = 2

#: Cap on the alias case-split fan-out of :func:`apply_store`.
MAX_ALIAS_CASES = 64


@dataclass
class SymbolicPath:
    """One execution path of a transaction, symbolically executed.

    ``condition`` constrains parameters and the initial database state for
    the path to be taken.  ``store`` maps written locations (``Item`` or
    ``Field`` terms with locals resolved away) to their final values in
    terms of the initial state.  ``writes`` preserves program order and per
    -write resolved values — the ingredients for statement-level reasoning.
    """

    condition: Formula = TRUE
    store: dict = field(default_factory=dict)
    writes: list = field(default_factory=list)
    env: dict = field(default_factory=dict)


class _Unsupported(Exception):
    """Internal: the body left the symbolically-executable fragment."""


def _resolve(term: Term, env: dict) -> Term:
    """Substitute local symbolic values into a term and fold constants."""
    mapping = {local: value for local, value in env.items()}
    return simplify_term(term.substitute(mapping))


def _lookup(store_writes: list, location: Term) -> Term | None:
    """Value of ``location`` after the recorded writes, if unambiguous.

    Scans the write list backwards.  A prior write to the same array and
    attribute with a *possibly equal but not identical* index makes the read
    ambiguous — the caller bails out to bounded model checking.
    """
    for target, value in reversed(store_writes):
        if target == location:
            return value
        if _may_alias(target, location) is None:
            raise _Unsupported(f"ambiguous aliasing between {target!r} and {location!r}")
    return None


def _may_alias(a: Term, b: Term) -> bool | None:
    """True: definitely same location.  False: definitely distinct.

    None: undecidable syntactically (same array/attr, distinct index terms
    that are not both constants).
    """
    if a == b:
        return True
    if isinstance(a, Item) and isinstance(b, Item):
        return False  # different names
    if isinstance(a, Field) and isinstance(b, Field):
        if a.array != b.array or a.attr != b.attr:
            return False
        if isinstance(a.index, IntConst) and isinstance(b.index, IntConst):
            return a.index.value == b.index.value
        return None
    return False


def symbolic_paths(
    txn: TransactionType,
    unroll: int = DEFAULT_UNROLL,
    context: Formula | None = None,
) -> list | None:
    """All execution paths of a conventional-model body, or None.

    ``context`` defaults to ``I_j ∧ B_j``; the snapshot equalities of the
    transaction's logical variables are conjoined as well, giving ``Q``-style
    assertions access to initial values.
    """
    base = conj(
        txn.consistency if context is None else context,
        txn.param_pre if context is None else TRUE,
        *(eq(logical, term) for logical, term in txn.snapshot),
    )
    paths: list[SymbolicPath] = []

    def run(stmts: tuple, path: SymbolicPath) -> None:
        if not stmts:
            paths.append(path)
            return
        stmt, rest = stmts[0], stmts[1:]
        if isinstance(stmt, Read):
            resolved = _resolve(stmt.source, path.env)
            prior = _lookup(path.writes, resolved)
            new_env = dict(path.env)
            new_env[stmt.into] = prior if prior is not None else resolved
            run(rest, SymbolicPath(path.condition, dict(path.store), list(path.writes), new_env))
            return
        if isinstance(stmt, ReadRecord):
            new_env = dict(path.env)
            index = _resolve(stmt.index, path.env)
            for attr, local in stmt.binds:
                resolved = Field(stmt.array, index, attr, local.var_sort)
                prior = _lookup(path.writes, resolved)
                new_env[local] = prior if prior is not None else resolved
            run(rest, SymbolicPath(path.condition, dict(path.store), list(path.writes), new_env))
            return
        if isinstance(stmt, LocalAssign):
            new_env = dict(path.env)
            new_env[stmt.into] = _resolve(stmt.value, path.env)
            run(rest, SymbolicPath(path.condition, dict(path.store), list(path.writes), new_env))
            return
        if isinstance(stmt, Write):
            target = stmt.target
            if isinstance(target, Field):
                target = Field(target.array, _resolve(target.index, path.env), target.attr, target.var_sort)
            value = _resolve(stmt.value, path.env)
            new_writes = list(path.writes) + [(target, value)]
            new_store = dict(path.store)
            for key in list(new_store):
                alias = _may_alias(key, target)
                if alias is True:
                    del new_store[key]
                elif alias is None:
                    raise _Unsupported(f"possibly-aliasing writes {key!r} / {target!r}")
            new_store[target] = value
            run(rest, SymbolicPath(path.condition, new_store, new_writes, dict(path.env)))
            return
        if isinstance(stmt, If):
            guard = simplify(stmt.cond.substitute(path.env))
            for branch, taken in ((stmt.then, guard), (stmt.orelse, Not(guard))):
                branch_cond = simplify(conj(path.condition, taken))
                from repro.core.formula import Bottom

                if isinstance(branch_cond, Bottom):
                    continue
                run(
                    tuple(branch) + rest,
                    SymbolicPath(branch_cond, dict(path.store), list(path.writes), dict(path.env)),
                )
            return
        if isinstance(stmt, While):
            guard = simplify(stmt.cond.substitute(path.env))
            # unroll: 0..unroll iterations, each prefixed by the guard
            for count in range(unroll + 1):
                unrolled: tuple = ()
                for _ in range(count):
                    unrolled += (_Guard(stmt.cond),) + tuple(stmt.body)
                unrolled += (_Guard(Not(stmt.cond)),)
                run(
                    unrolled + rest,
                    SymbolicPath(path.condition, dict(path.store), list(path.writes), dict(path.env)),
                )
            return
        if isinstance(stmt, _Guard):
            guard = simplify(stmt.cond.substitute(path.env))
            from repro.core.formula import Bottom

            cond = simplify(conj(path.condition, guard))
            if isinstance(cond, Bottom):
                return
            run(rest, SymbolicPath(cond, dict(path.store), list(path.writes), dict(path.env)))
            return
        raise _Unsupported(f"statement outside the symbolic fragment: {stmt!r}")

    try:
        run(tuple(txn.body), SymbolicPath(condition=base))
    except _Unsupported:
        return None
    return paths


@dataclass(frozen=True)
class _Guard(Statement):
    """Internal pseudo-statement: assume a condition along a path."""

    cond: Formula

    def execute(self, state, env) -> None:  # pragma: no cover - analysis only
        raise NotImplementedError


def write_sets_intersection_condition(
    writes_a: list,
    writes_b: list,
) -> Formula:
    """A formula true exactly when two resolved write sets intersect.

    Used by Theorem 5's condition 1 (SNAPSHOT): when the write sets of the
    two transactions intersect, first-committer-wins aborts one of them, so
    the pair is harmless regardless of interference.  For array writes the
    condition is the equality of the index terms; for identical scalar items
    it is ``TRUE``.
    """
    clauses: list[Formula] = []
    for target_a, _value_a in writes_a:
        for target_b, _value_b in writes_b:
            alias = _may_alias(target_a, target_b)
            if alias is True:
                return TRUE
            if alias is None and isinstance(target_a, Field) and isinstance(target_b, Field):
                clauses.append(eq(target_a.index, target_b.index))
    return disj(*clauses) if clauses else _false()


def _false() -> Formula:
    from repro.core.formula import FALSE

    return FALSE


def apply_store(assertion: Formula, store: dict) -> Formula | None:
    """The assertion's truth after the (simultaneous) final store.

    Every ``Item``/``Field`` atom of the assertion is mapped to its written
    value when it coincides with a store key.  Array atoms that merely *may*
    alias a key produce a case split: the result is a disjunction over alias
    patterns, each conjoined with the index (dis)equalities that define it.
    Returns None when the case split would exceed :data:`MAX_ALIAS_CASES`.
    """
    atom_options: list = []
    atoms = {
        atom
        for atom in assertion.atoms_with_bound()
        if isinstance(atom, (Item, Field))
    }
    for atom in sorted(atoms, key=repr):
        options: list = []  # (mapping-or-None, constraint formula, key)
        certain = None
        maybes = []
        for key, value in store.items():
            alias = _may_alias(key, atom)
            if alias is True:
                certain = (key, value)
                break
            if alias is None:
                maybes.append((key, value))
        if certain is not None:
            options.append((certain[1], TRUE))
        else:
            # exactly one maybe-key can match (store keys are pairwise
            # distinct locations), or none
            for key, value in maybes:
                constraint = eq(atom.index, key.index)  # type: ignore[union-attr]
                options.append((value, constraint))
            none_constraints = [
                ne(atom.index, key.index)  # type: ignore[union-attr]
                for key, _value in maybes
            ]
            options.append((None, conj(*none_constraints)))
        atom_options.append((atom, options))

    total_cases = 1
    for _atom, options in atom_options:
        total_cases *= len(options)
        if total_cases > MAX_ALIAS_CASES:
            return None

    cases: list[Formula] = []
    option_lists = [options for _atom, options in atom_options]
    atoms_in_order = [atom for atom, _options in atom_options]
    for combo in itertools.product(*option_lists) if atom_options else [()]:
        mapping: dict = {}
        constraints: list[Formula] = []
        for atom, (value, constraint) in zip(atoms_in_order, combo):
            if value is not None:
                mapping[atom] = value
            constraints.append(constraint)
        cases.append(conj(*constraints, assertion.substitute(mapping)))
    if not cases:
        return assertion
    return simplify(disj(*cases))


def apply_single_write(assertion: Formula, target: Term, value: Term) -> Formula | None:
    """The assertion's truth after one write statement (alias-aware)."""
    return apply_store(assertion, {target: value})
