"""Static annotation inference for unannotated transaction programs.

Every analysis layer of this repository — the chooser, the SDG, the
certifier — consumes the paper's specification triple ``(I_i, B_i, Q_i)``
plus per-read postconditions.  This module derives those annotations from
the transaction *programs alone*, in three passes:

1. **Strongest-postcondition rollout** (:func:`repro.core.sp.annotate_paths`)
   pushes an entry assertion through every execution path of the body.
   Per-path finals are merged by disjunction into a candidate ``Q_i``;
   conjuncts that mention transaction-local ghosts that could not be
   eliminated, or database resources the path never touched, are weakened
   to ``TRUE`` (dropped) — sp is inexact for relational statements and
   unbounded loops, and a sound ``Q_i`` must not over-claim.

2. **Invariant synthesis from footprint templates.**  Candidate consistency
   conjuncts are mined from the static structure of the program: guard
   comparisons lift to sum lower bounds over the read resources,
   decremented fields propose non-negativity, counter updates propose
   count-link invariants, guarded inserts propose key uniqueness, and
   monotone-item inserts propose date/ceiling bounds.  Candidates are
   scored against the SDG footprints of :mod:`repro.core.sdg`: a candidate
   attaches to a transaction only when the transaction writes resources the
   candidate mentions, or relies on it through its reads.

3. **Counterexample-guided refinement (CEGIS).**  The DPOR explorer
   (:func:`repro.sched.explore.invariant_oracle`) runs small instance sets
   at SERIALIZABLE from candidate-satisfying initial states; any candidate
   violated by an observed schedule is *demoted* (it is not preserved by
   the transactions, hence not an invariant) and the loop re-runs until a
   fixpoint.

Soundness caveats (see ``docs/INFERENCE.md``): the templates are
heuristics — surviving CEGIS over a finite domain is evidence, not proof;
inference cannot distinguish business-rule variants that share a program
text (the paper's *no gaps* vs *one order per day* discussion); and
``TRUE``-weakened results under-constrain, so inferred levels are a lower
bound on what stronger hand annotations may demand.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace

from repro.core.application import Application
from repro.core.conditions import canonical_read_post, conjuncts_of
from repro.core.formula import (
    AbstractPred,
    And,
    Cmp,
    CountWhere,
    Formula,
    ForAllRows,
    RowAttr,
    TRUE,
    conj,
    disj,
    eq,
    ge,
    le,
)
from repro.core.program import (
    Delete,
    ForEach,
    If,
    Insert,
    LocalAssign,
    Read,
    ReadRecord,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
    While,
    Write,
)
from repro.core.resources import Resource, overlaps
from repro.core.sp import annotate_paths
from repro.core.terms import (
    Add,
    Field,
    IntConst,
    Item,
    Local,
    LogicalVar,
    Mul,
    Param,
    Sub,
    Term,
)
from repro.errors import AnalysisError

_READ_KINDS = (Read, ReadRecord, Select, SelectScalar, SelectCount)


# ---------------------------------------------------------------------------
# annotation stripping
# ---------------------------------------------------------------------------


def _strip_statement(stmt):
    """A copy of ``stmt`` with every postcondition annotation removed."""
    if isinstance(stmt, If):
        return replace(
            stmt,
            then=tuple(_strip_statement(s) for s in stmt.then),
            orelse=tuple(_strip_statement(s) for s in stmt.orelse),
        )
    if isinstance(stmt, While):
        return replace(stmt, body=tuple(_strip_statement(s) for s in stmt.body))
    if isinstance(stmt, ForEach):
        return replace(stmt, body=tuple(_strip_statement(s) for s in stmt.body))
    if hasattr(stmt, "post"):
        return replace(stmt, post=None)
    return stmt


def strip_annotations(app: Application) -> Application:
    """The raw program: bodies kept, every specification annotation removed.

    Domains (:class:`~repro.core.domains.DomainSpec`) and concurrency
    ``assumptions`` are *application facts*, not per-transaction
    annotations, and are preserved — they describe the environment the
    program runs in, which inference may rely on.
    """
    stripped = tuple(
        TransactionType(
            name=txn.name,
            params=txn.params,
            body=tuple(_strip_statement(s) for s in txn.body),
        )
        for txn in app.transactions
    )
    return Application(
        name=app.name,
        transactions=stripped,
        spec=app.spec,
        description=app.description,
        assumptions=dict(app.assumptions),
    )


# ---------------------------------------------------------------------------
# dataflow: load-bearing locals
# ---------------------------------------------------------------------------


def _term_locals(term: Term) -> set:
    return {atom for atom in term.atoms() if isinstance(atom, Local)}


def _term_resources(term: Term) -> frozenset:
    """Database resources a bare term denotes (terms carry no .resources)."""
    return eq(term, term).resources()


def _formula_locals(formula: Formula) -> set:
    return {atom for atom in formula.atoms() if isinstance(atom, Local)}


def load_bearing_locals(txn: TransactionType) -> set:
    """Locals whose values flow into a database write or a control guard.

    Reads binding only non-load-bearing locals are *output-only*: their
    values leave the transaction without influencing the database, so their
    postconditions may be weak (Theorem 1's READ UNCOMMITTED discussion).
    """
    seeds: set = set()
    deps: dict = {}  # local -> locals it is computed from

    def depend(into: Local, sources: set) -> None:
        deps.setdefault(into, set()).update(sources)

    for _path, stmt in txn.walk():
        if isinstance(stmt, Write):
            seeds |= _term_locals(stmt.value) | _term_locals(stmt.target)
        elif isinstance(stmt, Update):
            seeds |= _formula_locals(stmt.where)
            for _attr, term in stmt.sets:
                seeds |= _term_locals(term)
        elif isinstance(stmt, Insert):
            for _attr, term in stmt.values:
                seeds |= _term_locals(term)
        elif isinstance(stmt, Delete):
            seeds |= _formula_locals(stmt.where)
        elif isinstance(stmt, (If, While)):
            seeds |= _formula_locals(stmt.cond)
        elif isinstance(stmt, LocalAssign):
            depend(stmt.into, _term_locals(stmt.value))
        elif isinstance(stmt, Read):
            depend(stmt.into, _term_locals(stmt.source))
        elif isinstance(stmt, ReadRecord):
            for _attr, local in stmt.binds:
                depend(local, _term_locals(stmt.index))
        elif isinstance(stmt, (Select, SelectScalar, SelectCount)):
            depend(stmt.into, _formula_locals(stmt.where))
        if isinstance(stmt, ForEach):
            for _attr, local in stmt.bind:
                depend(local, {stmt.buffer})

    changed = True
    while changed:
        changed = False
        for local, sources in deps.items():
            if local in seeds and not sources <= seeds:
                seeds |= sources
                changed = True
    return seeds


# ---------------------------------------------------------------------------
# monotonicity of scalar resources
# ---------------------------------------------------------------------------


def _scalar_key(term: Term):
    """Index-insensitive identity of a scalar database term."""
    if isinstance(term, Item):
        return ("item", term.name)
    if isinstance(term, Field):
        return ("field", term.array, term.attr)
    return None


def _read_sources(txn: TransactionType) -> dict:
    """Map each local to the database term its value was read from."""
    sources: dict = {}
    for _path, stmt in txn.walk():
        if isinstance(stmt, Read):
            sources[stmt.into] = stmt.source
        elif isinstance(stmt, ReadRecord):
            for attr, local in stmt.binds:
                sources[local] = Field(stmt.array, stmt.index, attr, local.var_sort)
    return sources


def _nonneg_values(app: Application, term: Term) -> bool:
    """All domain values of a param/const term are known non-negative."""
    if isinstance(term, IntConst):
        return term.value >= 0
    if isinstance(term, Param) and app.spec is not None:
        name = getattr(term, "name", None)
        if name in app.spec.var_domains:
            values = app.spec.var_domains[name]
            return all(isinstance(v, int) and v >= 0 for v in values)
    return False


def scalar_trends(app: Application) -> dict:
    """Per scalar resource: ``"inc"``, ``"dec"`` or ``"mixed"`` write trend.

    A write is an *increase* when its value is ``local + k`` for a local
    read from the same resource and a provably non-negative ``k``; a
    *decrease* is ``local - k``.  Anything else (constant stores, cross-
    resource arithmetic) makes the trend ``"mixed"`` — no weakening then.
    """
    trends: dict = {}
    for txn in app.transactions:
        sources = _read_sources(txn)
        for _path, stmt in txn.walk():
            if not isinstance(stmt, Write):
                continue
            key = _scalar_key(stmt.target)
            if key is None:
                continue
            kind = "mixed"
            value = stmt.value
            pair = None
            if isinstance(value, Add):
                pair = [(value.left, value.right), (value.right, value.left)]
                direction = "inc"
            elif isinstance(value, Sub):
                pair = [(value.left, value.right)]
                direction = "dec"
            if pair is not None:
                for local, delta in pair:
                    if (
                        isinstance(local, Local)
                        and _scalar_key(sources.get(local, IntConst(0))) == key
                        and _nonneg_values(app, delta)
                    ):
                        kind = direction
                        break
            previous = trends.get(key)
            trends[key] = kind if previous in (None, kind) else "mixed"
    return trends


# ---------------------------------------------------------------------------
# invariant candidates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Candidate:
    """One template-synthesised consistency conjunct.

    ``formula`` may mention transaction parameters (e.g. the account index
    ``i``); :meth:`holds` enumerates their domain values so the formula can
    be evaluated against a concrete database state.
    """

    name: str
    formula: Formula
    template: str

    def resources(self) -> frozenset:
        return self.formula.resources()

    def free_params(self) -> tuple:
        return tuple(
            sorted(
                {a for a in self.formula.atoms() if isinstance(a, Param)},
                key=lambda p: p.name,
            )
        )

    def holds(self, state, spec) -> bool:
        params = self.free_params()
        if not params:
            try:
                return bool(self.formula.evaluate(state, {}))
            except Exception:
                return False
        pools = [spec.values_for(p) if spec else (0, 1) for p in params]
        for combo in itertools.product(*pools):
            env = dict(zip(params, combo))
            try:
                if not self.formula.evaluate(state, env):
                    return False
            except Exception:
                return False
        return True


def _guard_candidates(app: Application, txn: TransactionType) -> list:
    """Sum/lower-bound invariants mined from conditional guards.

    A guard ``e >= k`` over locals read from database resources, with ``k``
    a non-negative parameter or constant, proposes ``e[locals→resources]
    >= 0``: the transaction itself checks the bound before decrementing,
    which is exactly the shape that preserves the database-level version.
    """
    out = []
    sources = _read_sources(txn)
    for _path, stmt in txn.walk():
        if not isinstance(stmt, (If, While)):
            continue
        for part in conjuncts_of(stmt.cond):
            if not isinstance(part, Cmp) or part.op not in (">=", ">"):
                continue
            expr, bound = part.left, part.right
            if not _nonneg_values(app, bound):
                continue
            expr_locals = _term_locals(expr)
            if not expr_locals or not expr_locals <= set(sources):
                continue
            lifted = expr.substitute({l: sources[l] for l in expr_locals})
            if not _term_resources(lifted):
                continue
            out.append(
                Candidate(
                    name=f"guard-lb[{lifted!r}>=0]",
                    formula=ge(lifted, IntConst(0)),
                    template="guard-lower-bound",
                )
            )
    return out


def _decrement_candidates(app: Application, txn: TransactionType) -> list:
    """Non-negativity of every decremented scalar resource."""
    out = []
    sources = _read_sources(txn)
    for _path, stmt in txn.walk():
        if not isinstance(stmt, Write) or not isinstance(stmt.value, Sub):
            continue
        key = _scalar_key(stmt.target)
        if key is None or stmt.target.sort != "int":
            continue
        out.append(
            Candidate(
                name=f"nonneg[{stmt.target!r}]",
                formula=ge(stmt.target, IntConst(0)),
                template="nonneg-decremented",
            )
        )
    return out


def _final_value_map(txn: TransactionType) -> dict:
    """Per (array) record: attr -> final symbolic value over locals/params.

    Read binds contribute their locals (the attribute's value at read
    time); writes overwrite with their symbolic value.  Only straight-line
    conventional statements participate — a guard or loop in between
    poisons the record (removed from the map).
    """
    records: dict = {}  # (array, index term) -> {attr: term}
    poisoned: set = set()
    for stmt in txn.body:
        if isinstance(stmt, ReadRecord):
            slot = records.setdefault((stmt.array, stmt.index), {})
            for attr, local in stmt.binds:
                slot.setdefault(attr, local)
        elif isinstance(stmt, Read) and isinstance(stmt.source, Field):
            f = stmt.source
            slot = records.setdefault((f.array, f.index), {})
            slot.setdefault(f.attr, stmt.into)
        elif isinstance(stmt, Write) and isinstance(stmt.target, Field):
            f = stmt.target
            slot = records.setdefault((f.array, f.index), {})
            slot[f.attr] = stmt.value
        elif isinstance(stmt, (If, While, ForEach)):
            poisoned |= set(records)
    return {key: attrs for key, attrs in records.items() if key not in poisoned}


def _record_equality_candidates(app: Application, txn: TransactionType) -> list:
    """Record-local arithmetic invariants re-established by the writes.

    When the final symbolic values of three attributes of one record
    satisfy ``c = a * b`` (or ``a + b``) by construction, the transaction
    unconditionally re-establishes that relation — the ``I_sal`` shape of
    the paper's Example 2.
    """
    out = []
    for (array, index), finals in _final_value_map(txn).items():
        attrs = sorted(finals)
        written = {
            _scalar_key(s.target)
            for s in txn.write_statements()
            if isinstance(s, Write)
        }
        if not any(("field", array, attr) in written for attr in attrs):
            continue
        for a, b, c in itertools.permutations(attrs, 3):
            # ordered: Mul/Add commute semantically but hash-cons by operand
            # order, so the matched orientation is the one emitted
            for op, tag in ((Mul, "*"), (Add, "+")):
                try:
                    combined = op(finals[a], finals[b])
                except Exception:
                    continue
                if combined is finals[c] or combined == finals[c]:
                    fa = Field(array, index, a)
                    fb = Field(array, index, b)
                    fc = Field(array, index, c)
                    out.append(
                        Candidate(
                            name=f"record-eq[{array}.{c}={a}{tag}{b}]",
                            formula=eq(op(fa, fb), fc),
                            template="record-equality",
                        )
                    )
    return out


def _counter_link_candidates(app: Application, txn: TransactionType) -> list:
    """Counter attributes maintained as row counts of another table.

    Shape: ``SELECT COUNT(T_o WHERE key_attr = p) INTO n`` followed by an
    ``UPDATE T_c SET cnt_attr = n + 1 WHERE link_attr = p`` (and typically
    an ``INSERT`` with ``cnt_attr = 1`` on the zero branch) — the
    *order consistency* shape of the paper's Section 6.
    """
    out = []
    counts: dict = {}  # local -> (table, key_attr, key term)
    for _path, stmt in txn.walk():
        if isinstance(stmt, SelectCount):
            keyed = _single_key(stmt.where, stmt.row)
            if keyed is not None:
                counts[stmt.into] = (stmt.table, *keyed)
        elif isinstance(stmt, Update):
            keyed = _single_key(stmt.where, stmt.row)
            if keyed is None:
                continue
            link_attr, key = keyed
            for attr, value in stmt.sets:
                if not isinstance(value, Add):
                    continue
                for local in (value.left, value.right):
                    info = counts.get(local)
                    if info is None or info[2] != key:
                        continue
                    count_table, count_attr, _key = info
                    formula = ForAllRows(
                        stmt.table,
                        "ic",
                        eq(
                            RowAttr("ic", attr),
                            CountWhere(
                                count_table,
                                "io",
                                eq(RowAttr("io", count_attr), RowAttr("ic", link_attr)),
                            ),
                        ),
                    )
                    out.append(
                        Candidate(
                            name=f"counter-link[{stmt.table}.{attr}=#{count_table}]",
                            formula=formula,
                            template="counter-link",
                        )
                    )
    return out


def _single_key(where: Formula, row: str):
    """``attr = key`` when the predicate is a single row-keyed equality."""
    parts = conjuncts_of(where)
    if len(parts) != 1 or not isinstance(parts[0], Cmp) or parts[0].op != "==":
        return None
    left, right = parts[0].left, parts[0].right
    for attr_side, key_side in ((left, right), (right, left)):
        if isinstance(attr_side, RowAttr) and attr_side.row == row:
            if not isinstance(key_side, RowAttr):
                return attr_side.attr, key_side
    return None


def _insert_candidates(app: Application, txn: TransactionType) -> list:
    """Uniqueness and ceiling invariants proposed by INSERT statements.

    * an insert of ``key_attr = p`` guarded (directly or via a counter) by
      "no matching row yet" proposes key uniqueness over the target table;
    * an inserted attribute equal to the final value of a monotone item
      proposes that the item bounds the attribute across the table.
    """
    out = []
    trends = scalar_trends(app)
    # final symbolic values of written monotone items in this transaction
    item_finals: dict = {}
    for stmt in txn.write_statements():
        if isinstance(stmt, Write) and isinstance(stmt.target, Item):
            if trends.get(_scalar_key(stmt.target)) == "inc":
                item_finals[stmt.value] = stmt.target
    zero_counts: set = set()  # (table, attr) counted to zero under a guard
    for _path, stmt in txn.walk():
        if isinstance(stmt, SelectCount):
            keyed = _single_key(stmt.where, stmt.row)
            if keyed is not None and isinstance(keyed[1], Param):
                zero_counts.add((stmt.table, keyed[0], keyed[1], stmt.into))
    for _path, stmt in txn.walk():
        if not isinstance(stmt, Insert):
            continue
        for attr, value in stmt.values:
            if isinstance(value, Param) and any(
                param is value for _t, _a, param, _l in zero_counts
            ):
                formula = ForAllRows(
                    stmt.table,
                    "u1",
                    eq(
                        CountWhere(
                            stmt.table,
                            "u2",
                            eq(RowAttr("u2", attr, value.sort), RowAttr("u1", attr, value.sort)),
                        ),
                        1,
                    ),
                )
                out.append(
                    Candidate(
                        name=f"unique-key[{stmt.table}.{attr}]",
                        formula=formula,
                        template="unique-inserted-key",
                    )
                )
            bound_item = item_finals.get(value)
            if bound_item is not None:
                out.append(
                    Candidate(
                        name=f"ceiling[{stmt.table}.{attr}<={bound_item!r}]",
                        formula=ForAllRows(
                            stmt.table, "m1", le(RowAttr("m1", attr), bound_item)
                        ),
                        template="monotone-ceiling",
                    )
                )
    return out


def synthesize_candidates(app: Application) -> list:
    """All template candidates over the application, deduplicated."""
    seen: dict = {}
    for txn in app.transactions:
        for candidate in (
            _guard_candidates(app, txn)
            + _decrement_candidates(app, txn)
            + _record_equality_candidates(app, txn)
            + _counter_link_candidates(app, txn)
            + _insert_candidates(app, txn)
        ):
            seen.setdefault(candidate.formula, candidate)
    return sorted(seen.values(), key=lambda c: c.name)


# ---------------------------------------------------------------------------
# CEGIS refinement against the DPOR oracle
# ---------------------------------------------------------------------------


@dataclass
class CegisTrace:
    """What the refinement loop did, for the report."""

    rounds: int = 0
    schedules: int = 0
    demoted: list = field(default_factory=list)  # (candidate name, reason)


def _instance_pool(app: Application, rng: random.Random, cap_per_type: int) -> list:
    from repro.sched.simulator import InstanceSpec

    pool = []
    for txn in app.transactions:
        pools = [
            list(app.spec.values_for(p)) if app.spec is not None else [0, 1]
            for p in txn.params
        ]
        combos = list(itertools.product(*pools))
        rng.shuffle(combos)
        for combo in combos[:cap_per_type]:
            args = {p.name: v for p, v in zip(txn.params, combo)}
            pool.append(InstanceSpec(txn_type=txn, args=args, level="SERIALIZABLE"))
    return pool


def refine_candidates(
    app: Application,
    candidates: list,
    *,
    seed: int = 0,
    state_cap: int = 8,
    pair_cap: int = 14,
    max_schedules: int = 24,
    max_rounds: int = 6,
) -> tuple:
    """Demote candidates violated by explored SERIALIZABLE schedules.

    Initial states are drawn from the application's domain spec, filtered
    to states satisfying every *surviving* candidate — the CEGIS contract:
    an invariant must be preserved from any state where it holds.  Returns
    ``(surviving candidates, CegisTrace)``.
    """
    from repro.sched.explore import invariant_oracle

    trace = CegisTrace()
    if app.spec is None or not candidates:
        return list(candidates), trace
    alive = list(candidates)
    for round_index in range(max_rounds):
        trace.rounds = round_index + 1
        rng = random.Random((seed, round_index, 0x1F3).__hash__())
        qualifying = []
        for state in app.spec.iter_states(4096, rng):
            if all(c.holds(state, app.spec) for c in alive):
                qualifying.append(state)
            if len(qualifying) >= 64 * state_cap:
                break
        states = (
            rng.sample(qualifying, state_cap)
            if len(qualifying) > state_cap
            else qualifying
        )
        unsatisfiable = [c for c in alive if states == []]
        if unsatisfiable:
            for candidate in alive:
                trace.demoted.append((candidate.name, "unsatisfiable in domain"))
            return [], trace
        pool = _instance_pool(app, rng, cap_per_type=4)
        duos = [(a, b) for a in pool for b in pool if a is not b]
        rng.shuffle(duos)
        instance_sets = [[spec] for spec in pool] + [list(d) for d in duos[:pair_cap]]
        demoted_now: set = set()
        for state in states:
            for specs in instance_sets:
                predicates = {
                    c.name: (lambda final, c=c: c.holds(final, app.spec))
                    for c in alive
                    if c.name not in demoted_now
                }
                if not predicates:
                    break
                violations = invariant_oracle(
                    state.fork() if hasattr(state, "fork") else state,
                    specs,
                    predicates,
                    max_schedules=max_schedules,
                )
                trace.schedules += violations.pop("__schedules__", 0)
                for name, witness in violations.items():
                    demoted_now.add(name)
                    trace.demoted.append((name, witness))
        if not demoted_now:
            break
        alive = [c for c in alive if c.name not in demoted_now]
    return alive, trace


# ---------------------------------------------------------------------------
# per-transaction annotation derivation
# ---------------------------------------------------------------------------


def _exact_overlap(a: Resource, b: Resource) -> bool:
    """Same-granule overlap: membership matches membership, attr matches attr.

    :func:`repro.core.resources.overlaps` lets a membership resource
    (``<rows>``) clash with every attribute of its table — sound for
    interference, but too coarse for *attachment*: a transaction that only
    updates ``ORDERS.done`` cannot break a quantifier's row set, so a
    row-membership candidate resource must not attach through it.
    """
    from repro.core.resources import ArrayResource, TableResource

    if isinstance(a, TableResource) and isinstance(b, TableResource):
        return a.table == b.table and a.attr == b.attr
    if isinstance(a, ArrayResource) and isinstance(b, ArrayResource):
        return a.array == b.array and (
            a.attr is None or b.attr is None or a.attr == b.attr
        )
    return overlaps((a,), (b,))


def _attach_candidates(txn: TransactionType, candidates: list) -> list:
    """Candidates this transaction relies on or must preserve (SDG score).

    A candidate attaches when the transaction *writes* a granule the
    candidate constrains (it must re-establish the conjunct), or when the
    transaction observes the *relation* the candidate states rather than a
    single granule of it: at least two read statements together covering
    two or more distinct resources the candidate links (the ``Audit``
    shape, where the outputs of separate reads are only mutually
    consistent because the conjunct ties them together), or one record
    read covering two or more of those resources by itself (the
    ``Print_Record`` shape — a multi-attribute ``ReadRecord`` whose bound
    values are only mutually consistent under the conjunct).  Reads that
    only ever observe a single candidate granule do not attach — even
    repeatedly (``StockLevel`` polls the same stock quantity twice): each
    output stands alone, needs no cross-granule consistency, and an
    attached ``I_i`` would manufacture interference obligations the
    transaction never relies on.
    """
    writes = txn.written_resources()
    reads = [
        stmt.read_resources()
        for stmt in txn.statements()
        if isinstance(stmt, _READ_KINDS)
    ]
    record_reads = [
        stmt.read_resources()
        for stmt in txn.statements()
        if isinstance(stmt, ReadRecord)
    ]

    def covered(resources, read) -> set:
        return {c for c in resources if any(_exact_overlap(c, r) for r in read)}

    out = []
    for candidate in candidates:
        resources = candidate.resources()
        if not resources:
            continue
        covering = [r for r in reads if overlaps(resources, r)]
        if any(_exact_overlap(c, w) for c in resources for w in writes):
            out.append(candidate)
        elif (
            len(covering) >= 2
            and len(set().union(*(covered(resources, r) for r in covering))) >= 2
        ):
            out.append(candidate)
        elif any(len(covered(resources, read)) >= 2 for read in record_reads):
            out.append(candidate)
    return out


def _param_ceiling_extras(txn: TransactionType, survivors: list) -> list:
    """Per-transaction consistency facts transferring a ceiling to a param.

    When the transaction selects rows with ``attr == p`` and a surviving
    ceiling candidate bounds ``T.attr`` by item ``X``, the parameter
    inherits the bound: any row the query can match satisfies ``p <= X``.
    The fact is stable under interference — the ceiling's item only grows —
    and it is what lets the checker exclude phantom inserts whose ``attr``
    exceeds the bound (the paper's ``Delivery`` at REPEATABLE READ).
    """
    extras = []
    ceilings = []
    for candidate in survivors:
        if candidate.template != "monotone-ceiling":
            continue
        quantifier = candidate.formula
        body = quantifier.body
        if isinstance(body, Cmp) and body.op == "<=" and isinstance(body.left, RowAttr):
            ceilings.append((quantifier.table, body.left.attr, body.right))
    if not ceilings:
        return extras
    for _path, stmt in txn.walk():
        if not isinstance(stmt, (Select, SelectScalar, SelectCount)):
            continue
        for part in conjuncts_of(stmt.where):
            if not (isinstance(part, Cmp) and part.op == "=="):
                continue
            for attr_side, key_side in ((part.left, part.right), (part.right, part.left)):
                if (
                    isinstance(attr_side, RowAttr)
                    and attr_side.row == stmt.row
                    and isinstance(key_side, Param)
                ):
                    for table, attr, bound in ceilings:
                        if table == stmt.table and attr == attr_side.attr:
                            extras.append(le(key_side, bound))
    return extras


def _param_preconditions(app: Application, txn: TransactionType) -> Formula:
    """``B_i`` from parameter templates: non-negativity of arithmetic params.

    Only parameters used *arithmetically* (inside ``+``/``-``) qualify —
    index and key parameters carry no numeric contract — and only when the
    declared domain confirms non-negativity.
    """
    arithmetic: set = set()

    def scan_term(term: Term) -> None:
        if isinstance(term, (Add, Sub)):
            for side in (term.left, term.right):
                if isinstance(side, Param) and side.sort == "int":
                    arithmetic.add(side)
                scan_term(side)
        elif isinstance(term, Mul):
            scan_term(term.left)
            scan_term(term.right)

    for _path, stmt in txn.walk():
        if isinstance(stmt, Write):
            scan_term(stmt.value)
        elif isinstance(stmt, LocalAssign):
            scan_term(stmt.value)
        elif isinstance(stmt, Update):
            for _attr, term in stmt.sets:
                scan_term(term)
        elif isinstance(stmt, Insert):
            for _attr, term in stmt.values:
                scan_term(term)
        elif isinstance(stmt, (If, While)):
            for part in conjuncts_of(stmt.cond):
                if isinstance(part, Cmp):
                    scan_term(part.left)
                    scan_term(part.right)
    bounds = [
        ge(param, IntConst(0))
        for param in sorted(arithmetic, key=lambda p: p.name)
        if _nonneg_values(app, param)
    ]
    return conj(*bounds)


def _project_candidate(candidate: Candidate, stmt: ReadRecord):
    """Project a record-local candidate onto the locals of one ReadRecord.

    Substituting every field of the candidate by the local it was read
    into yields a *workspace-only* postcondition (the printed values are
    mutually consistent — the paper's ``Print_Record``); projection fails
    when the read does not bind every field the candidate mentions.
    """
    mapping = {}
    for attr, local in stmt.binds:
        mapping[Field(stmt.array, stmt.index, attr, local.var_sort)] = local
    params = candidate.free_params()
    if len(params) == 1 and isinstance(stmt.index, (Param, Local, IntConst)):
        # re-index the candidate at this read's index before projecting
        reindexed = candidate.formula.substitute({params[0]: stmt.index})
    elif params:
        return None
    else:
        reindexed = candidate.formula
    projected = reindexed.substitute(mapping)
    if projected.resources():
        return None
    return projected


def _monotone_post(trend: str, into: Local, source: Term) -> Formula:
    if trend == "inc":
        return le(into, source)
    if trend == "dec":
        return ge(into, source)
    return eq(into, source)


def _cross_read_pairs(txn: TransactionType, candidates: list) -> set:
    """Output-only read statements linked through one invariant candidate.

    When two *separate* read statements overlap a common candidate, their
    outputs form a distributed snapshot whose mutual consistency is exactly
    the candidate — each read then needs its strong canonical post (the
    ``Audit`` shape: tuple locks cannot protect it, phantoms break it).
    """
    linked: set = set()
    reads = [
        (path, stmt)
        for path, stmt in txn.walk()
        if isinstance(stmt, _READ_KINDS)
    ]
    for candidate in candidates:
        resources = candidate.resources()
        touching = [
            path
            for path, stmt in reads
            if overlaps(resources, stmt.read_resources())
        ]
        if len(touching) >= 2:
            linked |= set(touching)
    return linked


def _infer_read_posts(
    app: Application,
    txn: TransactionType,
    attached: list,
    trends: dict,
) -> dict:
    """Map statement path -> inferred postcondition for every read."""
    bearing = load_bearing_locals(txn)
    posts: dict = {}
    cross_linked = _cross_read_pairs(txn, attached)
    record_candidates = [c for c in attached if c.template == "record-equality"]
    for path, stmt in txn.walk():
        if not isinstance(stmt, _READ_KINDS):
            continue
        if isinstance(stmt, Read):
            if stmt.into in bearing:
                trend = trends.get(_scalar_key(stmt.source), "mixed")
                if stmt.source.sort == "int":
                    posts[path] = _monotone_post(trend, stmt.into, stmt.source)
                else:
                    posts[path] = eq(stmt.into, stmt.source)
            else:
                projected = [
                    ge(stmt.into, IntConst(0))
                    for c in attached
                    if c.template == "nonneg-decremented"
                    and c.resources() == _term_resources(stmt.source)
                ]
                posts[path] = conj(*projected) if projected else TRUE
        elif isinstance(stmt, ReadRecord):
            bound = [local for _attr, local in stmt.binds]
            if any(local in bearing for local in bound):
                parts = []
                for attr, local in stmt.binds:
                    source = Field(stmt.array, stmt.index, attr, local.var_sort)
                    trend = trends.get(_scalar_key(source), "mixed")
                    if local.var_sort == "int":
                        parts.append(_monotone_post(trend, local, source))
                    else:
                        parts.append(eq(local, source))
                posts[path] = conj(*parts)
            else:
                projections = []
                for candidate in record_candidates:
                    projected = _project_candidate(candidate, stmt)
                    if projected is not None:
                        projections.append(projected)
                posts[path] = conj(*projections) if projections else TRUE
        else:  # relational reads
            if stmt.into in bearing or path in cross_linked:
                posts[path] = canonical_read_post(stmt)
            else:
                posts[path] = TRUE
    return posts


def _with_posts(body, posts: dict):
    """Rebuild a body with inferred posts attached at the recorded paths."""
    return _rebuild_children(body, posts, (), 0)


def _rebuild_children(children, posts: dict, parent, offset: int):
    rebuilt = []
    for position, child in enumerate(children):
        path = parent + (offset + position,)
        if isinstance(child, If):
            then_count = len(child.then)
            child = replace(
                child,
                then=_rebuild_children(child.then, posts, path, 0),
                orelse=_rebuild_children(child.orelse, posts, path, then_count),
            )
        elif isinstance(child, (While, ForEach)):
            child = replace(child, body=_rebuild_children(child.body, posts, path, 0))
        elif path in posts and hasattr(child, "post"):
            post = posts[path]
            if post is TRUE and not isinstance(child, _READ_KINDS):
                post = None
            # reads keep an explicit TRUE: a None post makes the checker
            # substitute the strong canonical form, which an output-only
            # read neither needs nor (below SERIALIZABLE) survives
            child = replace(child, post=post)
        rebuilt.append(child)
    return tuple(rebuilt)


# -- snapshot synthesis and Q_i rollout -------------------------------------


def _snapshot_terms(txn: TransactionType) -> list:
    """Deterministically named logical vars for every touched scalar term."""
    terms: list = []
    seen: set = set()
    for _path, stmt in txn.walk():
        candidates = []
        if isinstance(stmt, Read):
            candidates.append(stmt.source)
        elif isinstance(stmt, ReadRecord):
            for attr, local in stmt.binds:
                candidates.append(Field(stmt.array, stmt.index, attr, local.var_sort))
        elif isinstance(stmt, Write):
            candidates.append(stmt.target)
        for term in candidates:
            key = _scalar_key(term)
            if key is None or term in seen:
                continue
            seen.add(term)
            base = "_".join(str(part) for part in key[1:]).upper()
            terms.append((LogicalVar(f"{base}0", term.sort), term))
    return terms


def _eliminable(term: Term) -> bool:
    return isinstance(term, Local) or (
        isinstance(term, LogicalVar) and "!" in term.name
    )


def _resolve_ghosts(parts: list) -> list:
    """Rewrite locals and sp ghosts into snapshot logicals via equalities."""
    mapping: dict = {}
    progress = True
    while progress:
        progress = False
        for part in parts:
            resolved = part.substitute(mapping) if mapping else part
            if not (isinstance(resolved, Cmp) and resolved.op == "=="):
                continue
            for target, value in (
                (resolved.left, resolved.right),
                (resolved.right, resolved.left),
            ):
                if (
                    _eliminable(target)
                    and target not in mapping
                    and not any(_eliminable(a) for a in value.atoms())
                ):
                    mapping[target] = value
                    progress = True
    return [part.substitute(mapping) for part in parts] if mapping else list(parts)


def _path_touched(path) -> frozenset:
    touched: set = set()
    for point in path.points:
        if point.statement is None:
            continue
        touched |= point.statement.read_resources()
        touched |= point.statement.written_resources()
    return frozenset(touched)


def _keep_q_conjunct(part: Formula, touched, writes) -> bool:
    if any(_eliminable(a) for a in part.atoms()):
        return False
    resources = part.resources()
    if not resources:
        return True  # pure parameter/snapshot fact (a lifted guard)
    if not overlaps(resources, writes):
        return False
    return all(overlaps((r,), touched) for r in resources)


def _rollout_result(
    txn: TransactionType,
    entry: Formula,
    *,
    max_loop_unroll: int = 2,
) -> tuple:
    """Disjunctive ``Q_i`` candidate from per-path sp finals.

    Loops make the enumerated path set incomplete (executions beyond the
    unroll bound are uncovered), so any body containing a loop weakens the
    rollout contribution to ``TRUE`` — the candidates attached as ``I_i``
    still give ``Q_i`` content.  Returns ``(formula, notes)``.
    """
    notes: list = []
    if any(isinstance(s, (While, ForEach)) for s in txn.statements()):
        notes.append("loop present: sp rollout weakened to TRUE")
        return TRUE, notes
    writes = txn.written_resources()
    merged: list = []
    for path in annotate_paths(txn.body, entry, max_loop_unroll=max_loop_unroll):
        parts = _resolve_ghosts(conjuncts_of(path.final))
        touched = _path_touched(path)
        kept: list = []
        for part in parts:
            if isinstance(part, Cmp) and part.op == "==" and part.left is part.right:
                continue  # x == x, an artifact of ghost elimination
            if part in kept:
                continue
            if _keep_q_conjunct(part, touched, writes):
                kept.append(part)
        if any(not point.exact for point in path.points):
            notes.append("inexact path: kept sound conjuncts only")
        merged.append(conj(*kept))
    if not merged:
        return TRUE, notes
    unique = []
    for formula in merged:
        if formula not in unique:
            unique.append(formula)
    return (unique[0] if len(unique) == 1 else disj(*unique)), notes


def _workspace_result(posts: dict, txn: TransactionType, attached: list) -> Formula:
    """``Q_i`` of a read-only transaction: its workspace-only read posts.

    When two relational reads are linked by a counter candidate, their
    outputs must agree — synthesised as an evaluator-backed abstract
    predicate over the two locals (the ``Audit`` ``retv`` shape).
    """
    parts = [post for post in posts.values() if post is not TRUE and not post.resources()]
    counters = [c for c in attached if c.template == "counter-link"]
    reads = {path: stmt for path, stmt in txn.walk() if isinstance(stmt, _READ_KINDS)}
    for candidate in counters:
        count_local = declared_local = None
        for stmt in reads.values():
            if isinstance(stmt, SelectCount) and overlaps(
                candidate.resources(), stmt.read_resources()
            ):
                count_local = stmt.into
            if isinstance(stmt, (SelectScalar,)) and overlaps(
                candidate.resources(), stmt.read_resources()
            ):
                declared_local = stmt.into
        if count_local is not None and declared_local is not None:
            a, b = count_local, declared_local
            parts.append(
                AbstractPred(
                    name=f"outputs-agree[{a!r}={b!r}]",
                    reads=frozenset(),
                    evaluator=lambda state, env, a=a, b=b: env.get(a) == env.get(b),
                )
            )
    return conj(*parts)


# ---------------------------------------------------------------------------
# the inference pass
# ---------------------------------------------------------------------------


@dataclass
class InferredTransaction:
    """Inference outcome for one transaction type, for the report."""

    name: str
    consistency: str
    param_pre: str
    result: str
    snapshot: list
    read_posts: list
    notes: list

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "consistency": self.consistency,
            "param_pre": self.param_pre,
            "result": self.result,
            "snapshot": list(self.snapshot),
            "read_posts": list(self.read_posts),
            "notes": list(self.notes),
        }


@dataclass
class InferenceReport:
    """The full inference outcome: annotated app plus provenance."""

    application: str
    candidates: list  # surviving Candidate names
    demoted: list  # (name, reason-ish)
    cegis_rounds: int
    cegis_schedules: int
    transactions: list = field(default_factory=list)  # InferredTransaction
    survivors: list = field(default_factory=list)  # surviving Candidate objects

    def closed_invariant(self, spec) -> Formula:
        """Surviving candidates as one parameter-free application invariant.

        Free parameters (e.g. the account index) are closed by enumerating
        their domain values — the form a certification scenario's semantic
        checker can evaluate against a concrete state with an empty env.
        """
        closed = []
        for candidate in self.survivors:
            params = candidate.free_params()
            if not params:
                closed.append(candidate.formula)
                continue
            pools = [spec.values_for(p) if spec else (0, 1) for p in params]
            for combo in itertools.product(*pools):
                mapping = {
                    p: v if isinstance(v, Term) else IntConst(v)
                    for p, v in zip(params, combo)
                    if isinstance(v, (int, Term)) and not isinstance(v, bool)
                }
                if len(mapping) == len(params):
                    closed.append(candidate.formula.substitute(mapping))
        return conj(*closed)

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "candidates": list(self.candidates),
            "demoted": [[name, str(reason)] for name, reason in self.demoted],
            "cegis": {
                "rounds": self.cegis_rounds,
                "schedules": self.cegis_schedules,
            },
            "transactions": [t.to_dict() for t in self.transactions],
        }

    def render(self) -> str:
        lines = [f"infer {self.application}:"]
        lines.append(
            f"  invariant candidates: {len(self.candidates)} kept,"
            f" {len(self.demoted)} demoted"
            f" ({self.cegis_rounds} CEGIS round(s))"
        )
        for name in self.candidates:
            lines.append(f"    + {name}")
        for name, _reason in self.demoted:
            lines.append(f"    - {name} (demoted)")
        for txn in self.transactions:
            lines.append(f"  {txn.name}:")
            lines.append(f"    I_i: {txn.consistency}")
            if txn.param_pre != repr(TRUE):
                lines.append(f"    B_i: {txn.param_pre}")
            lines.append(f"    Q_i: {txn.result}")
            for post in txn.read_posts:
                lines.append(f"    {post}")
        return "\n".join(lines)


def infer_application(
    app: Application,
    *,
    seed: int = 0,
    max_loop_unroll: int = 2,
    cegis: bool = True,
    max_schedules: int = 24,
) -> tuple:
    """Derive annotations for (a stripped copy of) ``app``.

    Returns ``(annotated Application, InferenceReport)``.  The input is
    stripped first — inference never sees hand-written annotations, so the
    result is a fair reconstruction for agreement comparison.
    """
    stripped = strip_annotations(app)
    trends = scalar_trends(stripped)
    candidates = synthesize_candidates(stripped)
    if cegis:
        survivors, trace = refine_candidates(
            stripped, candidates, seed=seed, max_schedules=max_schedules
        )
    else:
        survivors, trace = list(candidates), CegisTrace()

    report = InferenceReport(
        application=app.name,
        candidates=[c.name for c in survivors],
        demoted=[(name, reason) for name, reason in trace.demoted],
        cegis_rounds=trace.rounds,
        cegis_schedules=trace.schedules,
        survivors=list(survivors),
    )

    annotated = []
    for txn in stripped.transactions:
        attached = _attach_candidates(txn, survivors)
        extras = _param_ceiling_extras(txn, survivors)
        consistency = conj(*([c.formula for c in attached] + extras))
        param_pre = _param_preconditions(stripped, txn)
        posts = _infer_read_posts(stripped, txn, attached, trends)
        body = _with_posts(txn.body, posts)
        writes = txn.written_resources()
        notes: list = []
        if not writes:
            result = _workspace_result(posts, txn, attached)
            snapshot: tuple = ()
        else:
            snapshot = tuple(_snapshot_terms(txn))
            entry = conj(
                consistency,
                param_pre,
                *[eq(term, logical) for logical, term in snapshot],
            )
            probe = TransactionType(name=txn.name, params=txn.params, body=body)
            rolled, notes = _rollout_result(
                probe, entry, max_loop_unroll=max_loop_unroll
            )
            result = conj(*([c.formula for c in attached] + [rolled]))
            used = {
                a for a in result.atoms() if isinstance(a, LogicalVar)
            }
            snapshot = tuple(
                (logical, term) for logical, term in snapshot if logical in used
            )
        inferred = TransactionType(
            name=txn.name,
            params=txn.params,
            body=body,
            consistency=consistency,
            param_pre=param_pre,
            result=result,
            snapshot=snapshot,
        )
        annotated.append(inferred)
        report.transactions.append(
            InferredTransaction(
                name=txn.name,
                consistency=repr(consistency),
                param_pre=repr(param_pre),
                result=repr(result),
                snapshot=[f"{logical!r} = {term!r}" for logical, term in snapshot],
                read_posts=[
                    f"post[{path}]: {post!r}"
                    for path, post in sorted(posts.items())
                    if post is not TRUE
                ],
                notes=notes,
            )
        )

    inferred_app = Application(
        name=app.name,
        transactions=tuple(annotated),
        spec=app.spec,
        description=app.description,
        assumptions=dict(app.assumptions),
    )
    return inferred_app, report


# ---------------------------------------------------------------------------
# inferred-vs-declared agreement
# ---------------------------------------------------------------------------


def agreement(
    declared: Application,
    inferred: Application,
    *,
    budget: int = 3000,
    seed: int = 0,
    ladder=None,
    workers: int | None = None,
) -> dict:
    """Chooser level assignments of both annotation sets, compared."""
    from repro.core.chooser import analyze_application
    from repro.core.conditions import ANSI_LADDER
    from repro.core.interference import InterferenceChecker
    from repro.core.parallel import ParallelPolicy, resolve_workers

    ladder = ladder or ANSI_LADDER
    workers = resolve_workers(workers)
    levels: dict = {}
    for tag, app in (("declared", declared), ("inferred", inferred)):
        checker = InterferenceChecker(app.spec, budget=budget, seed=seed, workers=workers)
        policy = ParallelPolicy(workers=workers, backend="thread", app_ref=f"{app.name}:{tag}")
        report = analyze_application(app, checker, ladder=ladder, policy=policy)
        levels[tag] = report.levels()
    matches = {
        name: levels["declared"][name] == levels["inferred"][name]
        for name in levels["declared"]
    }
    return {
        "declared": levels["declared"],
        "inferred": levels["inferred"],
        "matches": matches,
        "agreement": all(matches.values()),
    }
