"""A text syntax for terms and assertions.

Annotating transaction programs is the main authoring activity this
library asks of its users; writing AST constructors by hand is noisy.  The
parser accepts a compact, explicit surface syntax:

===========================  ==============================================
syntax                       meaning
===========================  ==============================================
``123``, ``'abc'``           integer / string literal
``true``, ``false``          boolean literal
``v``                        local (workspace) variable
``:w``                       transaction parameter
``%X0``                      logical variable (the paper's ``X_i``)
``#maximum_date``            scalar database item
``acct_sav[:i].bal``         array field (index is any integer term)
``r.deliv_date``             row attribute (``r`` must be quantifier-bound)
``$d``                       integer variable bound by ``forall int``
``count(o in ORDERS: ...)``  ``COUNT(*)`` aggregate term
``+ - *``                    integer arithmetic
``== != < <= > >=``          comparisons
``not``, ``and``, ``or``,    connectives (by precedence: not, and, or, =>)
``=>``
``forall r in T: F``         bounded row quantifier (optional ``where F``)
``exists r in T: F``
``forall int $d in a..b: F`` bounded integer quantifier (inclusive range)
``(...)``                    grouping
===========================  ==============================================

Sorts default to ``int``; pass ``sorts={"name": "str"}`` to type locals,
parameters, logical variables, items, fields (by ``array.attr``) or row
attributes (by ``table-less attr name``).

Example — Figure 1's invariant and read-step postcondition::

    parse_formula("acct_sav[:i].bal + acct_ch[:i].bal >= 0")
    parse_formula("acct_sav[:i].bal + acct_ch[:i].bal >= Sav + Ch")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core import formula as fm
from repro.core import terms as tm
from repro.errors import ReproError


class ParseError(ReproError):
    """The input does not conform to the assertion grammar."""

    def __init__(self, message: str, position: int, text: str) -> None:
        window = text[max(0, position - 20) : position + 20]
        super().__init__(f"{message} at position {position}: ...{window!r}...")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<str>'[^']*')
  | (?P<op>=>|==|!=|<=|>=|<|>|\+|-|\*|\(|\)|\[|\]|\.\.|\.|,|:|\#|%|\$)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "forall", "exists", "in", "where", "count", "int"}


@dataclass
class _Token:
    kind: str  # int | str | op | name
    value: str
    position: int


def _tokenize(text: str) -> list:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position, text)
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    """Recursive descent over the token list."""

    def __init__(self, text: str, sorts: dict | None) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.sorts = sorts or {}
        self.bound_rows: list = []  # (row_var, table) scopes
        self.bound_ints: set = set()

    # -- token plumbing ------------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token | None:
        probe = self.index + offset
        return self.tokens[probe] if probe < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def _expect(self, value: str) -> _Token:
        token = self._next()
        if token.value != value:
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.position, self.text)
        return token

    def _at(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.value == value

    def _sort_of(self, name: str) -> str:
        return self.sorts.get(name, "int")

    # -- formulas ------------------------------------------------------------
    def parse_formula(self) -> fm.Formula:
        result = self._implication()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(f"trailing input {token.value!r}", token.position, self.text)
        return result

    def _implication(self) -> fm.Formula:
        left = self._disjunction()
        if self._at("=>"):
            self._next()
            right = self._implication()  # right associative
            return fm.implies(left, right)
        return left

    def _disjunction(self) -> fm.Formula:
        parts = [self._conjunction()]
        while self._at("or"):
            self._next()
            parts.append(self._conjunction())
        return fm.disj(*parts) if len(parts) > 1 else parts[0]

    def _conjunction(self) -> fm.Formula:
        parts = [self._negation()]
        while self._at("and"):
            self._next()
            parts.append(self._negation())
        return fm.conj(*parts) if len(parts) > 1 else parts[0]

    def _negation(self) -> fm.Formula:
        if self._at("not"):
            self._next()
            return fm.Not(self._negation())
        return self._atom()

    def _atom(self) -> fm.Formula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        if token.value in ("forall", "exists"):
            return self._quantifier()
        if token.value == "true":
            self._next()
            return fm.TRUE
        if token.value == "false":
            self._next()
            return fm.FALSE
        if token.value == "(":
            # parenthesised formula or a term comparison starting with "("
            return self._comparison_or_group()
        return self._comparison()

    def _comparison_or_group(self) -> fm.Formula:
        """Disambiguate ``(formula)`` from ``(term) < term`` by backtracking."""
        saved = self.index
        try:
            self._expect("(")
            inner = self._implication()
            self._expect(")")
            if self._peek() is not None and self._peek().value in (
                "==", "!=", "<", "<=", ">", ">=", "+", "-", "*",
            ):
                raise ParseError("term context", self._peek().position, self.text)
            return inner
        except ParseError:
            self.index = saved
            return self._comparison()

    def _quantifier(self) -> fm.Formula:
        keyword = self._next().value
        if self._at("int"):
            if keyword != "forall":
                token = self._peek()
                raise ParseError("only 'forall int' is supported", token.position, self.text)
            return self._int_quantifier()
        row_token = self._next()
        if row_token.kind != "name":
            raise ParseError("expected a row variable name", row_token.position, self.text)
        self._expect("in")
        table_token = self._next()
        if table_token.kind != "name":
            raise ParseError("expected a table name", table_token.position, self.text)
        where = fm.TRUE
        self.bound_rows.append((row_token.value, table_token.value))
        try:
            if self._at("where"):
                self._next()
                where = self._conjunction()
            self._expect(":")
            body = self._implication()
        finally:
            self.bound_rows.pop()
        cls = fm.ForAllRows if keyword == "forall" else fm.ExistsRow
        return cls(table_token.value, row_token.value, body, where)

    def _int_quantifier(self) -> fm.Formula:
        self._expect("int")
        self._expect("$")
        var_token = self._next()
        if var_token.kind != "name":
            raise ParseError("expected a bound variable name", var_token.position, self.text)
        self._expect("in")
        low = self._term()
        self._expect("..")
        high = self._term()
        self._expect(":")
        self.bound_ints.add(var_token.value)
        try:
            body = self._implication()
        finally:
            self.bound_ints.discard(var_token.value)
        return fm.ForAllInts(var_token.value, low, high, body)

    def _comparison(self) -> fm.Formula:
        left = self._term()
        token = self._peek()
        if token is None or token.value not in ("==", "!=", "<", "<=", ">", ">="):
            # a bare boolean term is an atom
            if left.sort == "bool":
                return fm.BoolAtom(left)
            where = token.position if token else len(self.text)
            raise ParseError("expected a comparison operator", where, self.text)
        op = self._next().value
        right = self._term()
        return fm.Cmp(op, left, right)

    # -- terms ------------------------------------------------------------
    def _term(self) -> tm.Term:
        left = self._product()
        while self._peek() is not None and self._peek().value in ("+", "-"):
            op = self._next().value
            right = self._product()
            left = tm.Add(left, right) if op == "+" else tm.Sub(left, right)
        return left

    def _product(self) -> tm.Term:
        left = self._unary()
        while self._at("*"):
            self._next()
            left = tm.Mul(left, self._unary())
        return left

    def _unary(self) -> tm.Term:
        if self._at("-"):
            self._next()
            return tm.Neg(self._unary())
        return self._primary()

    def _primary(self) -> tm.Term:
        token = self._next()
        if token.kind == "int":
            return tm.IntConst(int(token.value))
        if token.kind == "str":
            return tm.StrConst(token.value[1:-1])
        if token.value == "(":
            inner = self._term()
            self._expect(")")
            return inner
        if token.value == ":":
            name_token = self._next()
            return tm.Param(name_token.value, self._sort_of(name_token.value))
        if token.value == "%":
            name_token = self._next()
            return tm.LogicalVar(name_token.value, self._sort_of(name_token.value))
        if token.value == "#":
            name_token = self._next()
            return tm.Item(name_token.value, self._sort_of(name_token.value))
        if token.value == "$":
            name_token = self._next()
            if name_token.value not in self.bound_ints:
                raise ParseError(
                    f"${name_token.value} is not bound by a forall int",
                    name_token.position,
                    self.text,
                )
            return fm.BoundVar(name_token.value)
        if token.value == "count":
            self._expect("(")
            row_token = self._next()
            self._expect("in")
            table_token = self._next()
            where = fm.TRUE
            self.bound_rows.append((row_token.value, table_token.value))
            try:
                if self._at(":"):
                    self._next()
                    where = self._implication()
            finally:
                self.bound_rows.pop()
            self._expect(")")
            return fm.CountWhere(table_token.value, row_token.value, where)
        if token.value == "true":
            return tm.BoolConst(True)
        if token.value == "false":
            return tm.BoolConst(False)
        if token.kind == "name":
            return self._reference(token)
        raise ParseError(f"unexpected token {token.value!r}", token.position, self.text)

    def _reference(self, token: _Token) -> tm.Term:
        name = token.value
        if name in _KEYWORDS:
            raise ParseError(f"keyword {name!r} used as a name", token.position, self.text)
        if self._at("["):
            self._next()
            index = self._term()
            self._expect("]")
            attr = None
            if self._at("."):
                self._next()
                attr_token = self._next()
                attr = attr_token.value
            sort = self._sort_of(f"{name}.{attr}" if attr else name)
            return tm.Field(name, index, attr, sort)
        if self._at("."):
            bound = {row for row, _table in self.bound_rows}
            if name in bound:
                self._next()
                attr_token = self._next()
                return fm.RowAttr(name, attr_token.value, self._sort_of(attr_token.value))
            raise ParseError(
                f"row variable {name!r} is not bound by a quantifier",
                token.position,
                self.text,
            )
        return tm.Local(name, self._sort_of(name))


def parse_formula(text: str, sorts: dict | None = None) -> fm.Formula:
    """Parse an assertion from its text syntax."""
    return _Parser(text, sorts).parse_formula()


def parse_term(text: str, sorts: dict | None = None) -> tm.Term:
    """Parse a term from its text syntax."""
    parser = _Parser(text, sorts)
    term = parser._term()
    if parser._peek() is not None:
        token = parser._peek()
        raise ParseError(f"trailing input {token.value!r}", token.position, text)
    return term


# ---------------------------------------------------------------------------
# unparsing (the inverse: AST -> the same text syntax)
# ---------------------------------------------------------------------------


def unparse_term(term: tm.Term) -> str:
    """Render a term in the syntax :func:`parse_term` accepts."""
    if isinstance(term, tm.IntConst):
        return str(term.value)
    if isinstance(term, tm.StrConst):
        return f"'{term.value}'"
    if isinstance(term, tm.BoolConst):
        return "true" if term.value else "false"
    if isinstance(term, tm.Local):
        return term.name
    if isinstance(term, tm.Param):
        return f":{term.name}"
    if isinstance(term, tm.LogicalVar):
        return f"%{term.name}"
    if isinstance(term, tm.Item):
        return f"#{term.name}"
    if isinstance(term, tm.Field):
        suffix = f".{term.attr}" if term.attr is not None else ""
        return f"{term.array}[{unparse_term(term.index)}]{suffix}"
    if isinstance(term, fm.RowAttr):
        return f"{term.row}.{term.attr}"
    if isinstance(term, fm.BoundVar):
        return f"${term.name}"
    if isinstance(term, fm.CountWhere):
        if term.where == fm.TRUE:
            return f"count({term.row} in {term.table})"
        return f"count({term.row} in {term.table}: {unparse_formula(term.where)})"
    if isinstance(term, tm.Add):
        return f"({unparse_term(term.left)} + {unparse_term(term.right)})"
    if isinstance(term, tm.Sub):
        return f"({unparse_term(term.left)} - {unparse_term(term.right)})"
    if isinstance(term, tm.Mul):
        return f"({unparse_term(term.left)} * {unparse_term(term.right)})"
    if isinstance(term, tm.Neg):
        return f"(-{unparse_term(term.operand)})"
    raise ReproError(f"cannot unparse term {term!r}")


def unparse_formula(formula: fm.Formula) -> str:
    """Render an assertion in the syntax :func:`parse_formula` accepts.

    Abstract predicates have no text form and raise; everything else
    round-trips: ``parse_formula(unparse_formula(f))`` is structurally
    equal to ``f`` up to associativity normalisation.
    """
    if isinstance(formula, fm.Top):
        return "true"
    if isinstance(formula, fm.Bottom):
        return "false"
    if isinstance(formula, fm.Cmp):
        return f"{unparse_term(formula.left)} {formula.op} {unparse_term(formula.right)}"
    if isinstance(formula, fm.BoolAtom):
        return unparse_term(formula.term)
    if isinstance(formula, fm.Not):
        return f"not ({unparse_formula(formula.operand)})"
    if isinstance(formula, fm.And):
        return "(" + " and ".join(unparse_formula(op) for op in formula.operands) + ")"
    if isinstance(formula, fm.Or):
        return "(" + " or ".join(unparse_formula(op) for op in formula.operands) + ")"
    if isinstance(formula, fm.Implies):
        return f"({unparse_formula(formula.premise)} => {unparse_formula(formula.conclusion)})"
    if isinstance(formula, (fm.ForAllRows, fm.ExistsRow)):
        keyword = "forall" if isinstance(formula, fm.ForAllRows) else "exists"
        where = (
            f" where {unparse_formula(formula.where)}" if formula.where != fm.TRUE else ""
        )
        return f"({keyword} {formula.row} in {formula.table}{where}: {unparse_formula(formula.body)})"
    if isinstance(formula, fm.ForAllInts):
        return (
            f"(forall int ${formula.var} in {unparse_term(formula.low)}"
            f"..{unparse_term(formula.high)}: {unparse_formula(formula.body)})"
        )
    raise ReproError(f"cannot unparse formula {formula!r}")
