"""Rendering helpers for analysis results.

Turns the structured outputs of :mod:`repro.core.conditions` and
:mod:`repro.core.chooser` into the tabular text the benchmarks print —
matching the shape of the paper's Section 6 discussion (transaction type →
lowest correct level, with the failing obligations one level below).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.chooser import ApplicationReport
from repro.core.conditions import LevelCheckResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A plain fixed-width table (no external dependencies)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def render_row(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [render_row(headers), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def level_table(report: ApplicationReport) -> str:
    """Transaction → chosen level table with confidence annotations."""
    rows = []
    for choice in report.choices:
        chosen = choice.chosen_check
        confidence = "theorem" if chosen.trivially_correct else chosen.confidence
        failures_below = ""
        if len(choice.attempts) > 1:
            below = choice.attempts[-2]
            failures_below = f"{len(below.failures)} failing at {below.level}"
        rows.append((choice.transaction, choice.level, confidence, failures_below))
    return format_table(
        ("transaction", "lowest correct level", "confidence", "evidence below"), rows
    )


def failure_details(result: LevelCheckResult, limit: int = 10) -> str:
    """Human-readable dump of the failing obligations of a level check."""
    lines = [result.summary()]
    for obligation in result.failures[:limit]:
        lines.append("  " + obligation.describe())
        if obligation.verdict is not None and obligation.verdict.witness is not None:
            witness = obligation.verdict.witness
            lines.append(f"    witness: {witness.description}")
            if witness.state is not None:
                lines.append(f"    state: items={witness.state.items}"
                             f" arrays={witness.state.arrays} tables={witness.state.tables}")
            if witness.env:
                shown = {str(k): v for k, v in witness.env.items()}
                lines.append(f"    env: {shown}")
            if witness.model:
                shown = {str(k): v for k, v in witness.model.items()}
                lines.append(f"    model: {shown}")
    remaining = len(result.failures) - limit
    if remaining > 0:
        lines.append(f"  ... and {remaining} more failing obligations")
    return "\n".join(lines)


def analysis_stats_table(checker) -> str:
    """Per-tier counts and wall time of one checker run, plus cache counters.

    ``checker`` is an :class:`repro.core.interference.InterferenceChecker`;
    the prover memo counters are process-global (the prover is a module).
    """
    from repro.core.prover import prover_cache_stats

    rows = []
    for tier in ("disjoint", "symbolic", "bmc"):
        rows.append(
            (
                tier,
                checker.stats.get(tier, 0),
                f"{checker.tier_times.get(tier, 0.0) * 1000:.1f}",
            )
        )
    rows.append(("assumed", checker.stats.get("assumed", 0), "-"))
    rows.append(("sdg pruned", checker.stats.get("sdg_pruned", 0), "-"))
    lines = [format_table(("tier", "discharged", "wall ms"), rows)]
    cache = checker.cache.stats
    lines.append("")
    lines.append(
        f"verdict cache:  {cache.hits} hits / {cache.misses} misses"
        f"  (hit rate {cache.hit_rate:.1%}, {len(checker.cache)} entries)"
    )
    lines.append(
        f"checker reuse:  {checker.stats.get('cache_hits', 0)} obligations"
        " answered from cache"
    )
    prover = prover_cache_stats()
    lines.append(
        f"prover memo:    simplify {prover['simplify_hits']} hits /"
        f" {prover['simplify_misses']} misses,"
        f" queries {prover['query_hits']} hits / {prover['query_misses']} misses"
        f" ({prover['term_memo_size']}t/{prover['formula_memo_size']}f"
        f"/{prover['query_memo_size']}q entries)"
    )
    lines.append(
        f"cube fast path: {prover['fastpath_sat']} sat"
        f" / {prover['fastpath_unsat']} unsat decided LP-free,"
        f" {prover['fastpath_open']} handed to linprog"
        f" ({prover['lp_calls']} LP calls, {prover['lp_unavailable']} degraded)"
    )
    if cache.persist_hits:
        lines.append(
            f"persist:        {cache.persist_hits} hits answered by disk-warmed entries"
        )
    return "\n".join(lines)


def obligation_stats(results: Iterable[LevelCheckResult]) -> dict:
    """Aggregate obligation counts and tier usage across level checks."""
    stats = {
        "levels": 0,
        "obligations": 0,
        "excused": 0,
        "failed": 0,
        "by_method": {},
        "by_confidence": {},
    }
    for result in results:
        stats["levels"] += 1
        for ob in result.obligations:
            stats["obligations"] += 1
            if ob.excused is not None:
                stats["excused"] += 1
                continue
            if not ob.ok:
                stats["failed"] += 1
            if ob.verdict is not None:
                method = ob.verdict.method
                confidence = ob.verdict.confidence
                stats["by_method"][method] = stats["by_method"].get(method, 0) + 1
                stats["by_confidence"][confidence] = (
                    stats["by_confidence"].get(confidence, 0) + 1
                )
    return stats
