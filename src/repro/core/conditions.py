"""Theorems 1–6: per-isolation-level semantic-correctness conditions.

Each theorem reduces "transaction ``T_i`` executes semantically correctly at
level L" to a finite set of non-interference *obligations*.  This module
enumerates exactly those obligations — the paper's central point is that the
locking discipline of each level makes most of the naive ``(KN)²``
Owicki–Gries checks unnecessary — and discharges them through the
:class:`repro.core.interference.InterferenceChecker`.

The obligation shapes, by level:

* **READ UNCOMMITTED** (Thm 1): every *individual write statement* of every
  transaction (plus every transaction's *rollback*, which undoes its
  writes) against ``I_i``, the postcondition of every read in ``T_i``, and
  ``Q_i``.
* **READ COMMITTED** (Thm 2): every transaction *as one atomic unit*
  against each read postcondition and ``Q_i``.
* **READ COMMITTED + first-committer-wins** (Thm 3): as Thm 2, but reads
  that are followed (on every path) by a write of the same item are exempt
  — FCW gives them the force of long read locks.
* **REPEATABLE READ** (Thm 4 conventional / Thm 6 relational): trivially
  correct in the conventional model; in the relational model, each SELECT's
  postcondition must survive every write statement except DELETE/UPDATEs
  whose predicates intersect the SELECT's predicate (those block on the
  long tuple read locks) — INSERT phantoms are *not* excused — and ``Q_i``
  must survive every transaction as a unit.
* **SNAPSHOT** (Thm 5): per pair of transactions, either the write sets
  intersect (first-committer-wins aborts one) or the partner must not
  interfere with the read-step postcondition and ``Q_i`` — only ``K²``
  pairwise checks.
* **SERIALIZABLE**: trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import Application
from repro.core.formula import (
    AbstractPred,
    CountWhere,
    Formula,
    RowAttr,
    TRUE,
    conj,
    eq,
    implies,
)
from repro.core.interference import (
    ASSUMED,
    BOUNDED,
    CONSISTENCY,
    CriticalAssertion,
    InterferenceChecker,
    InterferenceVerdict,
    PROVED,
    READ_POST,
    READ_STEP_POST,
    RESULT,
    SAMPLED,
)
from repro.core.program import (
    Delete,
    ForEach,
    If,
    Insert,
    Read,
    Select,
    SelectCount,
    SelectScalar,
    Statement,
    TransactionType,
    Update,
    While,
    Write,
)
from repro.core.prover import Verdict, is_satisfiable, is_valid
from repro.core.resources import overlaps
from repro.core.terms import Field, Item
from repro.errors import AnalysisError

#: Version of the obligation-plan shape produced by the ``plan_*`` functions.
#: Part of the persistent verdict store's salt
#: (:func:`repro.core.persist.store_salt`): a change to which obligations a
#: level generates — or to what a cached verdict means for a level — must
#: bump this so verdicts persisted by older plans miss cleanly.
PLAN_VERSION = "1"

# ---------------------------------------------------------------------------
# isolation levels
# ---------------------------------------------------------------------------

READ_UNCOMMITTED = "READ UNCOMMITTED"
READ_COMMITTED = "READ COMMITTED"
READ_COMMITTED_FCW = "READ COMMITTED FCW"
REPEATABLE_READ = "REPEATABLE READ"
SNAPSHOT = "SNAPSHOT"
SERIALIZABLE = "SERIALIZABLE"

#: The Section 5 search ladder (SNAPSHOT is offered separately by vendors
#: and is excluded from the ladder, as in the paper).
ANSI_LADDER = (READ_UNCOMMITTED, READ_COMMITTED, REPEATABLE_READ, SERIALIZABLE)

#: The extended ladder including READ COMMITTED with first-committer-wins.
EXTENDED_LADDER = (
    READ_UNCOMMITTED,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    REPEATABLE_READ,
    SERIALIZABLE,
)

#: Strength order of all levels (for reporting and the engine).
LEVEL_ORDER = {
    READ_UNCOMMITTED: 0,
    READ_COMMITTED: 1,
    READ_COMMITTED_FCW: 2,
    SNAPSHOT: 3,
    REPEATABLE_READ: 4,
    SERIALIZABLE: 5,
}

_CONFIDENCE_ORDER = {PROVED: 0, BOUNDED: 1, SAMPLED: 2, ASSUMED: 3}


# ---------------------------------------------------------------------------
# canonical read postconditions
# ---------------------------------------------------------------------------


def canonical_read_post(stmt: Statement) -> Formula:
    """The natural postcondition of a read when the program is unannotated.

    It asserts "what I read is (still) what the database contains", the
    strongest statement-local fact — exactly what the per-level theorems
    protect.  Buffer and scalar SELECTs use an evaluator-backed abstract
    predicate (their value is a row set / a first-match, not a term);
    COUNT SELECTs and conventional reads are fully structural.
    """
    if isinstance(stmt, Read):
        return eq(stmt.into, stmt.source)
    if isinstance(stmt, SelectCount):
        return eq(stmt.into, CountWhere(stmt.table, stmt.row, stmt.where))
    if isinstance(stmt, Select):
        select = stmt

        def buffer_matches(state, env):
            probe = Select(
                select.table, select.into, select.where, select.attrs, select.row
            )
            scratch = dict(env)
            probe.execute(state, scratch)
            return env.get(select.into) == scratch.get(select.into)

        return AbstractPred(
            name=f"post[{stmt!r}]",
            reads=frozenset(stmt.read_resources()),
            evaluator=buffer_matches,
        )
    if isinstance(stmt, SelectScalar):
        scalar = stmt

        def value_matches(state, env):
            probe = SelectScalar(
                scalar.table, scalar.attr, scalar.into, scalar.where, scalar.row, scalar.default
            )
            scratch = dict(env)
            probe.execute(state, scratch)
            return env.get(scalar.into) == scratch.get(scalar.into)

        return AbstractPred(
            name=f"post[{stmt!r}]",
            reads=frozenset(stmt.read_resources()),
            evaluator=value_matches,
        )
    raise AnalysisError(f"not a read statement: {stmt!r}")


def read_post_assertions(txn: TransactionType) -> list:
    """The (statement, CriticalAssertion) pairs for every read in the body.

    Explicit annotations are split into their top-level conjuncts and each
    conjunct becomes its own critical assertion — interference invalidates
    a conjunction exactly when it invalidates some conjunct, and conjuncts
    have independent truth windows (e.g. ``no_gap`` may be temporarily
    false mid-transaction while ``maxdate <= maximum_date`` is active and
    vulnerable, the paper's New_Order rollback scenario).
    """
    out = []
    for index, stmt in enumerate(txn.read_statements()):
        explicit = getattr(stmt, "post", None)
        formula = explicit if explicit is not None else canonical_read_post(stmt)
        parts = conjuncts_of(formula)
        for part_index, part in enumerate(parts):
            suffix = f".c{part_index}" if len(parts) > 1 else ""
            out.append(
                (
                    stmt,
                    CriticalAssertion(
                        label=f"post(read#{index}:{type(stmt).__name__}){suffix}",
                        formula=part,
                        kind=READ_POST,
                        read_stmt=stmt,
                    ),
                )
            )
    return out


def conjuncts_of(formula: Formula):
    """Top-level conjuncts (the formula itself when not a conjunction)."""
    from repro.core.formula import And, Top

    if isinstance(formula, And):
        return list(formula.operands)
    if isinstance(formula, Top):
        return []
    return [formula]


def consistency_assertions(txn: TransactionType) -> list:
    parts = conjuncts_of(txn.consistency)
    if len(parts) <= 1:
        return [CriticalAssertion("I_i", txn.consistency, CONSISTENCY)]
    return [
        CriticalAssertion(f"I_i.c{index}", part, CONSISTENCY)
        for index, part in enumerate(parts)
    ]


def result_assertions(txn: TransactionType) -> list:
    parts = conjuncts_of(txn.result)
    if len(parts) <= 1:
        return [CriticalAssertion("Q_i", txn.result, RESULT)]
    return [
        CriticalAssertion(f"Q_i.c{index}", part, RESULT)
        for index, part in enumerate(parts)
    ]


def read_step_assertion(txn: TransactionType) -> CriticalAssertion:
    """The SNAPSHOT model's read-step postcondition (Theorem 5).

    Explicit annotations on read statements are conjoined; unannotated reads
    contribute their canonical postcondition.
    """
    parts = [assertion.formula for _stmt, assertion in read_post_assertions(txn)]
    return CriticalAssertion("post(read-step)", conj(*parts), READ_STEP_POST)


# ---------------------------------------------------------------------------
# first-committer-wins read protection (Theorem 3)
# ---------------------------------------------------------------------------


def _syntactic_paths(stmts) -> list:
    """All syntactic statement sequences through a body (loops taken once)."""
    paths = [[]]
    for stmt in stmts:
        if isinstance(stmt, If):
            then_paths = _syntactic_paths(stmt.then)
            else_paths = _syntactic_paths(stmt.orelse)
            paths = [
                prefix + [stmt] + branch
                for prefix in paths
                for branch in then_paths + else_paths
            ]
        elif isinstance(stmt, While):
            body_paths = _syntactic_paths(stmt.body)
            paths = [
                prefix + [stmt] + branch for prefix in paths for branch in body_paths + [[]]
            ]
        elif isinstance(stmt, ForEach):
            body_paths = _syntactic_paths(stmt.body)
            paths = [
                prefix + [stmt] + branch for prefix in paths for branch in body_paths + [[]]
            ]
        else:
            paths = [prefix + [stmt] for prefix in paths]
    return paths


def _unify_row_var(where: Formula, from_row: str, to_row: str) -> Formula:
    mapping = {}
    for atom in where.atoms_with_bound():
        if isinstance(atom, RowAttr) and atom.row == from_row:
            mapping[atom] = RowAttr(to_row, atom.attr, atom.var_sort)
    return where.substitute(mapping)


def predicate_covers(read_where: Formula, read_row: str, write_where: Formula, write_row: str) -> bool:
    """Does the write predicate cover (⊇) the read predicate?"""
    unified = _unify_row_var(write_where, write_row, read_row)
    result = is_valid(implies(read_where, unified))
    return result.verdict == Verdict.VALID


def predicate_intersects(a: Formula, a_row: str, b: Formula, b_row: str) -> bool:
    """Can a single row satisfy both predicates?  (Conservative: yes on UNKNOWN.)"""
    unified = _unify_row_var(b, b_row, a_row)
    result = is_satisfiable(conj(a, unified))
    return result.verdict != Verdict.UNSAT


def _write_protects_read(read_stmt: Statement, write_stmt: Statement) -> bool:
    """Whether a later write gives this read FCW (long-read-lock) force."""
    if isinstance(read_stmt, Read) and isinstance(write_stmt, Write):
        return write_stmt.target == read_stmt.source
    if isinstance(read_stmt, (Select, SelectScalar, SelectCount)) and isinstance(
        write_stmt, (Update, Delete)
    ):
        if write_stmt.table != read_stmt.table:
            return False
        return predicate_covers(
            read_stmt.where, read_stmt.row, write_stmt.where, write_stmt.row
        )
    return False


def fcw_protected_reads(txn: TransactionType) -> set:
    """Reads followed on *every* syntactic path by a write of the same item.

    Theorem 3 exempts exactly these reads: when the transaction commits, the
    first-committer-wins check on the written item means the read value was
    never overwritten by a concurrent committer — the effect of a long read
    lock.  Returned as a set of statement ids (statements may compare equal
    structurally, so identity is used).
    """
    protected: set[int] = set()
    candidates = {id(stmt): stmt for stmt in txn.read_statements()}
    paths = _syntactic_paths(txn.body)
    for read_id, read_stmt in candidates.items():
        covered_everywhere = True
        for path in paths:
            ids = [id(s) for s in path]
            if read_id not in ids:
                continue
            position = ids.index(read_id)
            later = path[position + 1 :]
            if not any(_write_protects_read(read_stmt, w) for w in later if w.is_db_write):
                covered_everywhere = False
                break
        if covered_everywhere:
            protected.add(read_id)
    return protected


# ---------------------------------------------------------------------------
# obligations and results
# ---------------------------------------------------------------------------


@dataclass
class Obligation:
    """One non-interference check demanded by a theorem."""

    target: str
    assertion: CriticalAssertion
    source: str
    mode: str  # "statement" | "rollback" | "unit" | "unit-fcw" | "select-vs-write"
    statement: Statement | None = None
    verdict: InterferenceVerdict | None = None
    excused: str | None = None

    @property
    def ok(self) -> bool:
        if self.excused is not None:
            return True
        return self.verdict is not None and self.verdict.safe

    def describe(self) -> str:
        what = f"{self.mode} {self.source}"
        if self.statement is not None:
            what += f" [{self.statement!r}]"
        status = "excused: " + self.excused if self.excused else repr(self.verdict)
        return f"{self.target} / {self.assertion.label} vs {what} -> {status}"


@dataclass
class LevelCheckResult:
    """Verdict for one transaction type at one isolation level."""

    transaction: str
    level: str
    ok: bool
    obligations: list = field(default_factory=list)
    trivially_correct: bool = False
    note: str = ""

    @property
    def checked(self) -> int:
        return len(self.obligations)

    @property
    def failures(self) -> list:
        return [ob for ob in self.obligations if not ob.ok]

    @property
    def confidence(self) -> str:
        """The weakest confidence among the discharged obligations."""
        worst = PROVED
        for ob in self.obligations:
            if ob.excused is not None or ob.verdict is None:
                continue
            if _CONFIDENCE_ORDER[ob.verdict.confidence] > _CONFIDENCE_ORDER[worst]:
                worst = ob.verdict.confidence
        return worst

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILS ({len(self.failures)} obligations)"
        extra = " [trivial]" if self.trivially_correct else f" [{self.checked} obligations, {self.confidence}]"
        return f"{self.transaction} @ {self.level}: {status}{extra}"

    def to_dict(self) -> dict:
        return {
            "transaction": self.transaction,
            "level": self.level,
            "ok": self.ok,
            "obligations": self.checked,
            "failures": len(self.failures),
            "confidence": self.confidence,
            "trivially_correct": self.trivially_correct,
            "note": self.note,
        }


def _sources(app: Application, target: TransactionType) -> list:
    """Concurrent partners: every type renamed apart, with its assumption."""
    return [
        (txn.rename_params("!2"), app.assumption(target.name, txn.name))
        for txn in app.transactions
    ]


# ---------------------------------------------------------------------------
# obligation plans
# ---------------------------------------------------------------------------
#
# Every level check is split into two phases: *planning* enumerates the
# obligations the theorem demands (cheap, deterministic, and identical to
# the order the historical single-loop implementation used), *discharging*
# runs them through the checker.  The split is what makes the obligations
# independently schedulable: a plan's entries carry no checker state, so
# they can be discharged serially, across a thread pool, or — by index,
# against a re-derived identical plan — in another process.


@dataclass
class ObligationSpec:
    """One planned, not-yet-discharged interference obligation.

    ``check`` names the checker entry point (``statement`` / ``rollback`` /
    ``unit``); ``mode`` is the reporting label carried into
    :class:`Obligation`; ``kwargs`` are the checker keyword arguments
    (``dirty_reads``, ``fcw_excuse``, ``fcw_targets``).  Entries with
    ``excused`` set are never dispatched.
    """

    target: TransactionType
    assertion: CriticalAssertion
    source: TransactionType
    assumption: Formula
    check: str
    mode: str
    statement: Statement | None = None
    excused: str | None = None
    kwargs: dict = field(default_factory=dict)


def discharge_one(checker: InterferenceChecker, spec: ObligationSpec) -> InterferenceVerdict:
    """Run one planned obligation through the checker."""
    if spec.check == "statement":
        return checker.check_statement(
            spec.target, spec.assertion, spec.source, spec.statement,
            assumption=spec.assumption, **spec.kwargs,
        )
    if spec.check == "rollback":
        return checker.check_rollback(
            spec.target, spec.assertion, spec.source, assumption=spec.assumption,
        )
    if spec.check == "unit":
        return checker.check_unit(
            spec.target, spec.assertion, spec.source,
            assumption=spec.assumption, **spec.kwargs,
        )
    raise AnalysisError(f"unknown obligation check {spec.check!r}")


def discharge(
    app: Application,
    target: TransactionType,
    level: str,
    checker: InterferenceChecker,
    specs: list,
    policy: "ParallelPolicy | None" = None,
) -> list:
    """Discharge a plan into :class:`Obligation` records, in plan order.

    With a serial policy this is exactly the historical loop.  The thread
    backend fans independent specs across a pool but reports results in plan
    order; the process backend ships ``(app name, target, level, indices)``
    references and re-derives the plan on the worker side.  With
    ``early_cancel`` the returned list stops after the first failed
    obligation (later specs may not have run at all).
    """
    from repro.core.parallel import (
        PROCESS_BACKEND,
        ParallelPolicy,
        parallel_map,
        process_discharge,
    )

    if policy is None:
        policy = ParallelPolicy(workers=checker.workers)
    if getattr(checker, "use_sdg", True):
        from repro.core import sdg

        checker.stats["sdg_pruned"] = checker.stats.get("sdg_pruned", 0) + sdg.prune_plan(specs)
    live = [index for index, spec in enumerate(specs) if spec.excused is None]
    stopped = None
    if policy.workers > 1 and policy.backend == PROCESS_BACKEND and policy.app_ref:
        verdicts = process_discharge(
            policy.app_ref, target.name, level, live,
            checker.config_dict(), policy.workers,
        )
    else:
        stop = None
        if policy.early_cancel:
            stop = lambda verdict: verdict is not None and verdict.interferes
        results, stopped = parallel_map(
            lambda index: discharge_one(checker, specs[index]),
            live, policy.workers, stop_on=stop,
        )
        verdicts = dict(zip(live, results))
        if stopped is not None:
            stopped = live[stopped]
    obligations: list[Obligation] = []
    for index, spec in enumerate(specs):
        verdict = verdicts.get(index)
        if spec.excused is None and verdict is None:
            continue  # cancelled by early stop (or skipped by a worker)
        obligations.append(
            Obligation(
                spec.target.name, spec.assertion, spec.source.name,
                spec.mode, spec.statement, verdict, spec.excused,
            )
        )
        if stopped is not None and index >= stopped:
            break
    return obligations


def plan_read_uncommitted(app: Application, target: TransactionType) -> list:
    """Theorem 1 plan."""
    assertions = consistency_assertions(target)
    assertions += [assertion for _stmt, assertion in read_post_assertions(target)]
    assertions += result_assertions(target)
    specs: list[ObligationSpec] = []
    for source, assumption in _sources(app, target):
        writes = [stmt for stmt in source.statements() if stmt.is_db_write]
        for assertion in assertions:
            for stmt in writes:
                specs.append(
                    ObligationSpec(
                        target, assertion, source, assumption, "statement",
                        "statement", stmt, kwargs={"dirty_reads": True},
                    )
                )
            if writes:
                specs.append(
                    ObligationSpec(
                        target, assertion, source, assumption, "rollback", "rollback"
                    )
                )
    return specs


def _plan_units(app: Application, target: TransactionType, assertions: list) -> list:
    specs: list[ObligationSpec] = []
    for source, assumption in _sources(app, target):
        for assertion in assertions:
            specs.append(
                ObligationSpec(target, assertion, source, assumption, "unit", "unit")
            )
    return specs


def plan_read_committed(app: Application, target: TransactionType) -> list:
    """Theorem 2 plan."""
    assertions = [assertion for _stmt, assertion in read_post_assertions(target)]
    assertions += result_assertions(target)
    return _plan_units(app, target, assertions)


def plan_read_committed_fcw(app: Application, target: TransactionType) -> list:
    """Theorem 3 plan (see :func:`check_read_committed_fcw`)."""
    specs, _excused_count = _plan_fcw(app, target)
    return specs


def _plan_fcw(app: Application, target: TransactionType) -> tuple:
    protected = fcw_protected_reads(target)
    assertions = []
    excused_count = 0
    protected_targets: list = []
    for stmt, assertion in read_post_assertions(target):
        if id(stmt) in protected:
            excused_count += 1
            if isinstance(stmt, Read):
                protected_targets.append(stmt.source)
            continue
        assertions.append(assertion)
    assertions += result_assertions(target)
    specs: list[ObligationSpec] = []
    for source, assumption in _sources(app, target):
        for assertion in assertions:
            specs.append(
                ObligationSpec(
                    target, assertion, source, assumption, "unit", "unit-fcw",
                    kwargs={
                        "fcw_excuse": bool(protected_targets),
                        "fcw_targets": protected_targets,
                    },
                )
            )
    return specs, excused_count


def plan_repeatable_read(app: Application, target: TransactionType) -> list:
    """Theorem 6 plan (empty for conventional applications, Thm 4)."""
    if not app.is_relational:
        return []
    specs: list[ObligationSpec] = []
    selects = [
        (stmt, assertion)
        for stmt, assertion in read_post_assertions(target)
        if isinstance(stmt, (Select, SelectScalar, SelectCount))
    ]
    q_assertions = result_assertions(target)
    for source, assumption in _sources(app, target):
        for q_assertion in q_assertions:
            specs.append(
                ObligationSpec(target, q_assertion, source, assumption, "unit", "unit")
            )
        for read_stmt, assertion in selects:
            for write_stmt in (s for s in source.statements() if s.is_db_write):
                if isinstance(write_stmt, (Update, Delete)) and getattr(
                    write_stmt, "table", None
                ) == read_stmt.table:
                    if predicate_intersects(
                        read_stmt.where, read_stmt.row, write_stmt.where, write_stmt.row
                    ):
                        specs.append(
                            ObligationSpec(
                                target, assertion, source, assumption, "statement",
                                "select-vs-write", write_stmt,
                                excused="blocked by long tuple read locks (Thm 6 cond. 2)",
                            )
                        )
                        continue
                if not overlaps(assertion.formula.resources(), write_stmt.written_resources()):
                    specs.append(
                        ObligationSpec(
                            target, assertion, source, assumption, "statement",
                            "select-vs-write", write_stmt,
                            excused="disjoint footprint",
                        )
                    )
                    continue
                specs.append(
                    ObligationSpec(
                        target, assertion, source, assumption, "statement",
                        "select-vs-write", write_stmt,
                        kwargs={"dirty_reads": False},
                    )
                )
    return specs


def plan_snapshot(app: Application, target: TransactionType) -> list:
    """Theorem 5 plan."""
    assertions = [read_step_assertion(target)] + result_assertions(target)
    specs: list[ObligationSpec] = []
    for source, assumption in _sources(app, target):
        for assertion in assertions:
            specs.append(
                ObligationSpec(
                    target, assertion, source, assumption, "unit", "unit-fcw",
                    kwargs={"fcw_excuse": True},
                )
            )
    return specs


_PLANS = {}  # populated after the level check functions below


def plan_level(app: Application, target: TransactionType, level: str) -> list:
    """The obligation plan one level's theorem demands for one target.

    Deterministic: process workers re-derive it and address entries by
    index.  SERIALIZABLE (and conventional REPEATABLE READ) plans are empty.
    """
    if level not in _PLANS:
        raise AnalysisError(f"unknown isolation level {level!r}")
    return _PLANS[level](app, target)


# ---------------------------------------------------------------------------
# per-level checks
# ---------------------------------------------------------------------------


def check_read_uncommitted(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    """Theorem 1."""
    specs = plan_read_uncommitted(app, target)
    obligations = discharge(app, target, READ_UNCOMMITTED, checker, specs, policy)
    ok = all(ob.ok for ob in obligations)
    return LevelCheckResult(target.name, READ_UNCOMMITTED, ok, obligations)


def check_read_committed(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    """Theorem 2."""
    specs = plan_read_committed(app, target)
    obligations = discharge(app, target, READ_COMMITTED, checker, specs, policy)
    ok = all(ob.ok for ob in obligations)
    return LevelCheckResult(target.name, READ_COMMITTED, ok, obligations)


def check_read_committed_fcw(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    """Theorem 3.

    Reads followed by a write of the same item are exempt, and — per the
    paper's remark after the theorem — the commit-time first-committer-wins
    check on those read-then-written items has the force of long read
    locks: a partner whose write set intersects them cannot commit around
    this transaction, so its interference with the remaining assertions is
    excused exactly as in Theorem 5's condition 1.
    """
    specs, excused_count = _plan_fcw(app, target)
    obligations = discharge(app, target, READ_COMMITTED_FCW, checker, specs, policy)
    ok = all(ob.ok for ob in obligations)
    result = LevelCheckResult(target.name, READ_COMMITTED_FCW, ok, obligations)
    result.note = f"{excused_count} read(s) protected by first-committer-wins"
    return result


def check_repeatable_read(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    """Theorem 4 (conventional model) / Theorem 6 (relational model)."""
    if not app.is_relational:
        return LevelCheckResult(
            target.name,
            REPEATABLE_READ,
            True,
            trivially_correct=True,
            note="conventional model: REPEATABLE READ is serializable (Thm 4)",
        )
    specs = plan_repeatable_read(app, target)
    obligations = discharge(app, target, REPEATABLE_READ, checker, specs, policy)
    ok = all(ob.ok for ob in obligations)
    return LevelCheckResult(target.name, REPEATABLE_READ, ok, obligations)


def check_snapshot(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    """Theorem 5: K pairwise checks for this target (K² over the application)."""
    specs = plan_snapshot(app, target)
    obligations = discharge(app, target, SNAPSHOT, checker, specs, policy)
    ok = all(ob.ok for ob in obligations)
    return LevelCheckResult(target.name, SNAPSHOT, ok, obligations)


def check_serializable(
    app: Application, target: TransactionType, checker: InterferenceChecker,
    policy=None,
) -> LevelCheckResult:
    return LevelCheckResult(
        target.name,
        SERIALIZABLE,
        True,
        trivially_correct=True,
        note="SERIALIZABLE schedules are serializable, hence semantically correct",
    )


_CHECKS = {
    READ_UNCOMMITTED: check_read_uncommitted,
    READ_COMMITTED: check_read_committed,
    READ_COMMITTED_FCW: check_read_committed_fcw,
    REPEATABLE_READ: check_repeatable_read,
    SNAPSHOT: check_snapshot,
    SERIALIZABLE: check_serializable,
}

_PLANS.update(
    {
        READ_UNCOMMITTED: plan_read_uncommitted,
        READ_COMMITTED: plan_read_committed,
        READ_COMMITTED_FCW: plan_read_committed_fcw,
        REPEATABLE_READ: plan_repeatable_read,
        SNAPSHOT: plan_snapshot,
        SERIALIZABLE: lambda app, target: [],
    }
)


def check_transaction_at(
    app: Application,
    target: TransactionType,
    level: str,
    checker: InterferenceChecker | None = None,
    policy=None,
) -> LevelCheckResult:
    """Check one transaction type of an application at one isolation level."""
    if level not in _CHECKS:
        raise AnalysisError(f"unknown isolation level {level!r}")
    if checker is None:
        checker = InterferenceChecker(app.spec)
    return _CHECKS[level](app, target, checker, policy)


# ---------------------------------------------------------------------------
# obligation counting (the paper's analysis-cost claim, Section 2)
# ---------------------------------------------------------------------------


def naive_triple_count(app: Application) -> int:
    """The Owicki–Gries cost with no isolation information: ``(KN)²``.

    Every statement of every transaction against every control-point
    assertion of every transaction (the paper counts assertions one per
    statement).
    """
    total_statements = sum(len(txn.statements()) for txn in app.transactions)
    return total_statements * total_statements


def obligation_count(app: Application, target: TransactionType, level: str) -> int:
    """How many non-interference triples the level's theorem demands.

    Counts without discharging anything (no prover or model checking runs),
    so the E1 bench can chart the reduction per level.
    """
    k = len(app.transactions)
    reads = len(target.read_statements())
    if level == READ_UNCOMMITTED:
        assertions = 1 + reads + 1  # I_i, read posts, Q_i
        write_stmts = sum(len(txn.write_statements()) for txn in app.transactions)
        rollbacks = sum(1 for txn in app.transactions if txn.write_statements())
        return assertions * (write_stmts + rollbacks)
    if level == READ_COMMITTED:
        return (reads + 1) * k
    if level == READ_COMMITTED_FCW:
        protected = len(fcw_protected_reads(target))
        return (reads - protected + 1) * k
    if level == REPEATABLE_READ:
        if not app.is_relational:
            return 0
        selects = sum(
            1
            for stmt in target.read_statements()
            if isinstance(stmt, (Select, SelectScalar, SelectCount))
        )
        write_stmts = sum(len(txn.write_statements()) for txn in app.transactions)
        return k + selects * write_stmts
    if level == SNAPSHOT:
        return 2 * k  # read-step post and Q_i, per partner type: K² app-wide
    if level == SERIALIZABLE:
        return 0
    raise AnalysisError(f"unknown isolation level {level!r}")
