"""The Section 5 procedure: choose the lowest safe isolation level per type.

For each transaction type, the levels of the chosen ladder are tried in
increasing strength order and the first level whose theorem condition holds
is returned.  The paper's key observation makes this per-type analysis
compositional: while choosing ``T_1``'s level, the levels of the *other*
transactions are irrelevant — at READ UNCOMMITTED their individual writes
are considered, at any higher level they are considered as atomic units,
either way regardless of the level they themselves run at (every type runs
at least at READ UNCOMMITTED, so long write locks are always held).

SNAPSHOT is analysed separately (:func:`snapshot_report`), since vendors
offer it outside the ANSI ladder — exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import Application
from repro.core.conditions import (
    ANSI_LADDER,
    EXTENDED_LADDER,
    LevelCheckResult,
    SERIALIZABLE,
    SNAPSHOT,
    check_transaction_at,
)
from repro.core.interference import InterferenceChecker


@dataclass
class ChoiceResult:
    """The chosen level for one transaction type, with the audit trail."""

    transaction: str
    level: str
    attempts: list = field(default_factory=list)  # LevelCheckResult per tried level

    @property
    def chosen_check(self) -> LevelCheckResult:
        return self.attempts[-1]

    def summary(self) -> str:
        trail = " -> ".join(
            f"{attempt.level}:{'ok' if attempt.ok else 'fail'}" for attempt in self.attempts
        )
        return f"{self.transaction}: {self.level}   ({trail})"

    def to_dict(self) -> dict:
        return {
            "transaction": self.transaction,
            "level": self.level,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }


@dataclass
class ApplicationReport:
    """Level choices for every transaction type of an application."""

    application: str
    choices: list = field(default_factory=list)
    snapshot_checks: list = field(default_factory=list)

    def choice_for(self, name: str) -> ChoiceResult:
        for choice in self.choices:
            if choice.transaction == name:
                return choice
        raise KeyError(name)

    def levels(self) -> dict:
        return {choice.transaction: choice.level for choice in self.choices}

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "levels": self.levels(),
            "choices": [choice.to_dict() for choice in self.choices],
            "snapshot_checks": [check.to_dict() for check in self.snapshot_checks],
        }

    def render(self) -> str:
        lines = [f"Isolation-level assignment for application {self.application!r}:"]
        for choice in self.choices:
            lines.append("  " + choice.summary())
        if self.snapshot_checks:
            lines.append("SNAPSHOT analysis (Theorem 5):")
            for check in self.snapshot_checks:
                lines.append("  " + check.summary())
        return "\n".join(lines)


def choose_level(
    app: Application,
    transaction_name: str,
    checker: InterferenceChecker | None = None,
    ladder=ANSI_LADDER,
    policy=None,
) -> ChoiceResult:
    """Lowest level of ``ladder`` at which the transaction is correct.

    The ladder always ends in SERIALIZABLE, which is unconditionally
    correct, so the procedure terminates with a valid level.  ``policy``
    (a :class:`repro.core.parallel.ParallelPolicy`) controls how each
    level's obligations are dispatched; the checker's verdict cache makes
    the climb cheap — obligations already discharged while rejecting a
    lower level are not re-checked at the next one.
    """
    target = app.transaction(transaction_name)
    if checker is None:
        checker = InterferenceChecker(app.spec)
    attempts: list[LevelCheckResult] = []
    levels = list(ladder)
    if levels[-1] != SERIALIZABLE:
        levels.append(SERIALIZABLE)
    for level in levels:
        result = check_transaction_at(app, target, level, checker, policy)
        attempts.append(result)
        if result.ok:
            return ChoiceResult(transaction_name, level, attempts)
    raise AssertionError("unreachable: SERIALIZABLE is always correct")


def analyze_application(
    app: Application,
    checker: InterferenceChecker | None = None,
    ladder=ANSI_LADDER,
    include_snapshot: bool = False,
    policy=None,
) -> ApplicationReport:
    """Run the Section 5 procedure for every transaction type."""
    if checker is None:
        checker = InterferenceChecker(app.spec)
    report = ApplicationReport(app.name)
    for txn in app.transactions:
        report.choices.append(choose_level(app, txn.name, checker, ladder, policy))
    if include_snapshot:
        for txn in app.transactions:
            report.snapshot_checks.append(
                check_transaction_at(app, txn, SNAPSHOT, checker, policy)
            )
    return report


def snapshot_report(
    app: Application, checker: InterferenceChecker | None = None, policy=None
) -> list:
    """Theorem 5 verdicts for every transaction type of the application."""
    if checker is None:
        checker = InterferenceChecker(app.spec)
    return [
        check_transaction_at(app, txn, SNAPSHOT, checker, policy)
        for txn in app.transactions
    ]
