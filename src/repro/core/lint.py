"""Well-formedness lint for transaction programs, plus the SDG risk pass.

The analysis layers (chooser, explorer, certifier) all assume the input
application is *sensible*: names are unique, preconditions are satisfiable,
assertions talk about values the program actually computes.  A broken
input does not make them unsound — it makes them vacuous (an unsatisfiable
``B_i`` discharges every obligation) or confusing (an assertion over a
never-bound local can never activate).  ``repro lint`` surfaces those
defects before any expensive analysis runs.

Rules and severities:

========================== ========= =====================================
rule                       severity  meaning
========================== ========= =====================================
duplicate-transaction-name error     two types share a name; dict-keyed
                                     lookups would silently pick one
unsatisfiable-precondition error     the prover refutes ``B_i`` (with and
                                     without ``I_i``): every obligation
                                     under it is vacuously true
unbound-assertion-variable error     ``I_i``/``Q_i``/an explicit read post
                                     mentions a local no statement binds —
                                     the assertion can never be evaluated
dead-statement             warning   a statement follows an unconditional
                                     ROLLBACK in the same sequence
unused-invariant           warning   an ``I_i`` conjunct mentions only
                                     resources no statement in the whole
                                     application touches — no execution
                                     can establish or violate it, so it
                                     weighs down the prover for nothing
footprint-mismatch         warning   an explicit read post or snapshot
                                     source term mentions a resource
                                     outside both the transaction's
                                     statically computed read/write
                                     footprint (:func:`repro.core.sdg.
                                     transaction_footprint`) and its
                                     ``I_i`` — the declared footprint
                                     diverges from the program text
sdg-write-skew             warning   SDG dangerous structure (see
                                     :func:`repro.core.sdg.
                                     dangerous_structures`)
sdg-lost-update            warning   SDG dangerous structure
unannotated-write          info      a write statement touches resources no
                                     critical assertion mentions — the
                                     analysis cannot say anything about it
========================== ========= =====================================

Severity contract: ``error`` findings are defects the analysis layers
would mishandle and fail CI (`repro lint` exits 1); ``warning`` marks
risks worth reviewing; ``info`` is advisory.  The bundled applications
are error-clean (enforced by the CI lint smoke job) but do carry
warnings — the banking write skew is famously real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import sdg
from repro.core.application import Application
from repro.core.formula import Formula, conj, conjuncts, eq
from repro.core.program import (
    ForEach,
    If,
    ReadRecord,
    Rollback,
    Statement,
    TransactionType,
    While,
)
from repro.core.prover import Verdict, is_satisfiable
from repro.core.resources import overlaps
from repro.core.terms import Local

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    rule: str
    severity: str
    transaction: str | None  # None for application-level findings
    message: str

    def __repr__(self) -> str:
        where = f" [{self.transaction}]" if self.transaction else ""
        return f"{self.severity}: {self.rule}{where}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "transaction": self.transaction,
            "message": self.message,
        }


@dataclass
class LintReport:
    """All findings for one application, errors first."""

    application: str
    findings: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (_SEVERITY_ORDER[f.severity], f.rule, f.transaction or "")
        )

    def render(self) -> str:
        lines = [f"lint {self.application}: {len(self.findings)} finding(s)"]
        for finding in self.findings:
            lines.append(f"  {finding!r}")
        if not self.findings:
            lines.append("  clean")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
        }


# ---------------------------------------------------------------------------
# per-rule checks
# ---------------------------------------------------------------------------


def check_duplicate_names(transactions) -> list:
    """Two transaction types sharing one name (dict lookups pick one)."""
    seen: dict = {}
    findings = []
    for txn in transactions:
        seen[txn.name] = seen.get(txn.name, 0) + 1
    for name, count in seen.items():
        if count > 1:
            findings.append(
                Finding(
                    "duplicate-transaction-name", ERROR, name,
                    f"{count} transaction types named {name!r}; lookups by name"
                    " would silently pick one of them",
                )
            )
    return findings


def check_precondition(txn: TransactionType) -> list:
    """An unsatisfiable ``B_i`` makes every obligation vacuously true.

    Checked twice: ``B_i`` alone (self-contradictory parameters) and
    ``B_i ∧ I_i`` (parameters incompatible with the consistency
    constraint).  Only a definite UNSAT is a finding — UNKNOWN means the
    abstraction gave up, not that the precondition is broken.
    """
    findings = []
    if is_satisfiable(txn.param_pre).verdict == Verdict.UNSAT:
        findings.append(
            Finding(
                "unsatisfiable-precondition", ERROR, txn.name,
                f"B_i is unsatisfiable: {txn.param_pre!r}",
            )
        )
    elif is_satisfiable(conj(txn.param_pre, txn.consistency)).verdict == Verdict.UNSAT:
        findings.append(
            Finding(
                "unsatisfiable-precondition", ERROR, txn.name,
                "B_i is unsatisfiable under the consistency constraint I_i",
            )
        )
    return findings


def _bound_locals(stmts) -> set:
    """Locals some statement *binds* (not merely uses)."""
    out: set = set()

    def visit(statement: Statement) -> None:
        for attr_name in ("into", "buffer"):
            target = getattr(statement, attr_name, None)
            if isinstance(target, Local):
                out.add(target)
        if isinstance(statement, ForEach):
            for _attr, local in statement.bind:
                out.add(local)
        if isinstance(statement, ReadRecord):
            for _attr, local in statement.binds:
                out.add(local)
        for child in statement.substatements():
            visit(child)

    for stmt in stmts:
        visit(stmt)
    return out


def _formula_locals(formula: Formula) -> set:
    return {atom for atom in formula.atoms() if isinstance(atom, Local)}


def check_assertion_variables(txn: TransactionType) -> list:
    """Assertion locals never bound by any statement.

    Covers ``I_i``, ``Q_i`` and every *explicit* read postcondition
    (canonical posts are derived from the read itself, hence bound by
    construction).  Membership is order-insensitive on purpose: binding
    *after* use inside a loop is legal in this IR.
    """
    bound = _bound_locals(txn.body)
    findings = []
    surfaces = [("I_i", txn.consistency), ("Q_i", txn.result)]
    for stmt in txn.statements():
        post = getattr(stmt, "post", None)
        if post is not None:
            surfaces.append((f"post of {stmt!r}", post))
    for label, formula in surfaces:
        for local in sorted(_formula_locals(formula) - bound, key=lambda l: l.name):
            findings.append(
                Finding(
                    "unbound-assertion-variable", ERROR, txn.name,
                    f"{label} references local {local!r} which no statement binds",
                )
            )
    return findings


def _dead_after_rollback(stmts) -> list:
    dead = []
    rolled_back = False
    for stmt in stmts:
        if rolled_back:
            dead.append(stmt)
            continue
        if isinstance(stmt, Rollback):
            rolled_back = True
        elif isinstance(stmt, If):
            dead.extend(_dead_after_rollback(stmt.then))
            dead.extend(_dead_after_rollback(stmt.orelse))
        elif isinstance(stmt, (While, ForEach)):
            dead.extend(_dead_after_rollback(stmt.body))
    return dead


def check_dead_statements(txn: TransactionType) -> list:
    """Statements after an unconditional ROLLBACK in the same sequence.

    A rollback inside an ``If`` branch only kills the remainder of that
    branch; statements after the ``If`` stay live via the other branch.
    """
    return [
        Finding(
            "dead-statement", WARNING, txn.name,
            f"unreachable after ROLLBACK: {stmt!r}",
        )
        for stmt in _dead_after_rollback(txn.body)
    ]


def check_unannotated_writes(txn: TransactionType) -> list:
    """Writes no critical assertion mentions.

    The theorems only constrain writes through the assertions that read
    them back (``I_i``, read posts, ``Q_i``); a write outside that surface
    is analysed as harmless by construction, which is worth knowing.
    """
    protected = sdg.assertion_resources(txn)
    findings = []
    for stmt in txn.write_statements():
        if not overlaps(stmt.written_resources(), protected):
            findings.append(
                Finding(
                    "unannotated-write", INFO, txn.name,
                    f"write {stmt!r} touches no resource any critical"
                    " assertion mentions",
                )
            )
    return findings


def check_unused_invariant(txn: TransactionType, touched: frozenset) -> list:
    """``I_i`` conjuncts over resources no statement anywhere touches.

    ``touched`` is the union of read and write resources across *every*
    transaction type in the application.  A conjunct whose resources all
    fall outside it is inert: no execution can establish it, no partner
    write can violate it, and the checker drags it through every proof
    obligation regardless.  Conjuncts with no resources at all (pure
    parameter or constant facts) are exempt — they constrain the argument
    space, not the database.
    """
    findings = []
    for part in conjuncts(txn.consistency):
        resources = part.resources()
        if not resources:
            continue
        if not overlaps(resources, touched):
            findings.append(
                Finding(
                    "unused-invariant", WARNING, txn.name,
                    f"I_i conjunct {part!r} mentions only resources no"
                    " statement in the application touches",
                )
            )
    return findings


def check_footprint_mismatch(txn: TransactionType) -> list:
    """Declared resources outside the statically computed footprint.

    The *declared* footprint is everything the annotations claim the type
    *observed*: explicit read postconditions and the source terms of the
    logical-variable snapshot.  The *computed* footprint is what the
    program text actually reads or writes
    (:func:`repro.core.sdg.transaction_footprint`).  A declared resource
    outside the computed one usually means an annotation survived a body
    edit — the assertion now talks about state the type never looks at.
    Two surfaces are deliberately exempt.  ``I_i`` and ``Q_i`` are not
    checked at all: both legitimately assert invariants over
    partner-maintained state.  And resources mentioned by ``I_i`` are
    allowed to appear in read posts, because the canonical pattern (the
    paper's banking example) has each read post re-assert the consistency
    constraint at the read point — including the partner-account state the
    type never touches.
    """
    footprint = sdg.transaction_footprint(txn)
    computed = (
        footprint.reads
        | footprint.writes
        | footprint.predicate_reads
        | txn.consistency.resources()
    )
    declared: dict = {}
    for stmt in txn.statements():
        post = getattr(stmt, "post", None)
        if post is not None:
            for resource in post.resources():
                declared.setdefault(resource, f"post of {stmt!r}")
    for _logical, term in txn.snapshot:
        for resource in eq(term, term).resources():
            declared.setdefault(resource, "snapshot")
    findings = []
    for resource in sorted(declared, key=repr):
        if not overlaps((resource,), computed):
            findings.append(
                Finding(
                    "footprint-mismatch", WARNING, txn.name,
                    f"{declared[resource]} mentions {resource!r}, which is"
                    " outside the statically computed read/write footprint",
                )
            )
    return findings


def sdg_findings(graph: sdg.ConflictGraph) -> list:
    """Dangerous structures reported as lint warnings."""
    rule = {sdg.WRITE_SKEW: "sdg-write-skew", sdg.LOST_UPDATE: "sdg-lost-update"}
    return [
        Finding(
            rule[structure.kind], WARNING, "/".join(structure.transactions),
            f"dangerous below {structure.level}: {structure.detail}",
        )
        for structure in sdg.dangerous_structures(graph)
    ]


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_transactions(name: str, transactions) -> LintReport:
    """Lint a raw list of transaction types.

    Takes the list rather than an :class:`Application` so the duplicate-name
    rule can fire (``Application`` refuses to construct with duplicates).
    """
    report = LintReport(application=name)
    report.findings.extend(check_duplicate_names(transactions))
    touched = frozenset().union(
        *(txn.read_resources() | txn.written_resources() for txn in transactions)
    ) if transactions else frozenset()
    for txn in transactions:
        report.findings.extend(check_precondition(txn))
        report.findings.extend(check_assertion_variables(txn))
        report.findings.extend(check_dead_statements(txn))
        report.findings.extend(check_unused_invariant(txn, touched))
        report.findings.extend(check_footprint_mismatch(txn))
        report.findings.extend(check_unannotated_writes(txn))
    report.sort()
    return report


def lint_application(app: Application) -> LintReport:
    """Lint a full application: program rules plus the SDG risk pass."""
    report = lint_transactions(app.name, app.transactions)
    report.findings.extend(sdg_findings(sdg.build_graph(app)))
    report.sort()
    return report
