"""Persistent verdict store: cross-run warm starts for the verdict cache.

The E1/E14 benchmarks show a three-orders-of-magnitude gap between a cold
analysis and a warm one — the obligations of one application change rarely,
but every fresh process, CI job and ``certify`` invocation used to pay the
full discharge bill again.  This module closes the gap with a disk-backed
store under ``.repro-cache/`` that warms the in-memory
:class:`~repro.core.cache.VerdictCache` at startup and flushes newly decided
verdicts on exit.

Design constraints, in order:

* **Never wrong.**  Entries are keyed by the same structural fingerprints the
  in-memory cache uses, and every segment carries a *salt* combining the
  fingerprint-scheme, prover and obligation-plan versions
  (:func:`store_salt`).  A segment written by any other version of the
  analysis code misses cleanly — it is simply not loaded.  Fingerprints that
  embed process-local identities (the ``@id`` fallback of
  :func:`repro.core.cache.fingerprint` for opaque objects) can never match a
  fresh run's keys, so such entries go stale harmlessly rather than aliasing.
* **Never crash.**  Truncated or corrupted segment lines (killed process,
  full disk, concurrent compaction) are skipped and counted, not raised.
* **Never clobber.**  Each process writes its own uniquely named segment
  (``verdicts-<pid>-<uuid>.jsonl``) via a temp-file rename; two processes
  sharing a cache directory only ever append distinct files.  Compaction
  merges segments into a fresh uniquely named file before unlinking the
  inputs, and is serialised across processes by an advisory claim file
  (``compact.lock``, created with ``O_EXCL``): two compactors never
  double-unlink, a loser simply skips its turn, and a claim left behind by
  a killed compactor is broken once it goes stale (dead pid or old mtime).

The store is also the analysis fleet's cross-process verdict bus
(``repro serve --fleet``): every worker shard periodically *flushes* its
newly decided verdicts as a fresh segment and *refreshes* its in-memory
cache from segments it has not absorbed yet (:meth:`PersistentStore.refresh`
tracks seen segment names), so a verdict decided on one shard warms every
other shard within one persist interval.

Witnesses are persisted in stripped form (kind and description only): the
concrete states and environments exist to render one report and are not
worth their serialised weight, and the stripped witness still carries the
evidence text shown in level tables.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

from repro.core.cache import FINGERPRINT_VERSION, VerdictCache
from repro.core.interference import InterferenceVerdict, Witness
from repro.core.prover import PROVER_VERSION

#: On-disk segment format version (bumped on incompatible layout changes).
STORE_FORMAT = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Compaction triggers when a directory accumulates more segments than this.
COMPACT_THRESHOLD = 8

#: A compaction claim older than this is considered abandoned (seconds).
LOCK_STALE_SECONDS = 300.0

_SEGMENT_GLOB = "verdicts-*.jsonl"
_LOCK_NAME = "compact.lock"


def store_salt() -> str:
    """The version salt all loadable segments must carry.

    Combines the fingerprint scheme, the prover semantics and the obligation
    plan shape: a change to any of them invalidates every persisted verdict
    (clean miss), because the keys or the meaning of the cached answers may
    have shifted.
    """
    from repro.core.conditions import PLAN_VERSION  # lazy: import cycle

    return f"fp{FINGERPRINT_VERSION}.prover{PROVER_VERSION}.plan{PLAN_VERSION}"


def _strip_witness(witness: Witness | None) -> dict | None:
    if witness is None:
        return None
    return {"kind": witness.kind, "description": witness.description}


def _encode_verdict(verdict: InterferenceVerdict) -> dict:
    return {
        "interferes": verdict.interferes,
        "confidence": verdict.confidence,
        "method": verdict.method,
        "note": verdict.note,
        "witness": _strip_witness(verdict.witness),
    }


def _decode_verdict(payload: dict) -> InterferenceVerdict:
    witness_payload = payload.get("witness")
    witness = None
    if witness_payload is not None:
        witness = Witness(
            kind=str(witness_payload["kind"]),
            description=str(witness_payload["description"]),
        )
    return InterferenceVerdict(
        interferes=bool(payload["interferes"]),
        confidence=str(payload["confidence"]),
        method=str(payload["method"]),
        witness=witness,
        note=str(payload.get("note", "")),
    )


def _claim_compaction(directory: Path) -> bool:
    """Try to acquire a directory's advisory compaction claim (non-blocking).

    The claim is a file created with ``O_CREAT | O_EXCL`` — atomic on
    every filesystem we care about — holding our pid.  A claim whose
    holder is dead or whose mtime is older than
    :data:`LOCK_STALE_SECONDS` is broken (unlinked) and contention is
    retried once; losing the retry means another live compactor is at
    work, and skipping is the correct move (its merge covers our
    segments too).
    """
    lock = directory / _LOCK_NAME
    for _attempt in (0, 1):
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if not _break_stale_claim(lock):
                return False
            continue
        except OSError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        return True
    return False


def _break_stale_claim(lock: Path) -> bool:
    """Unlink an abandoned claim; True when a retry is worthwhile."""
    try:
        age = time.time() - lock.stat().st_mtime
    except OSError:
        # raced with the holder's own release — treat as contended
        return False
    try:
        holder = int(lock.read_text(encoding="utf-8").strip() or "0")
    except (OSError, ValueError):
        holder = 0  # unreadable or garbage claim: age alone decides
    stale = age > LOCK_STALE_SECONDS
    if not stale and holder > 0:
        try:
            os.kill(holder, 0)  # signal 0: existence probe only
        except ProcessLookupError:
            stale = True
        except OSError:
            pass  # exists but not ours to probe — assume alive
    if not stale:
        return False
    try:
        lock.unlink()
    except OSError:
        pass
    return True


def _release_compaction(directory: Path) -> None:
    try:
        (directory / _LOCK_NAME).unlink()
    except OSError:  # pragma: no cover - release is best-effort
        pass


class SegmentLog:
    """Generic append-only JSONL segment directory.

    The persistence substrate shared by the verdict store and the fuzz
    corpus ledger (:mod:`repro.fuzz.ledger`): uniquely named
    ``<prefix>-<pid>-<uuid>.jsonl`` segments written via temp-file rename,
    a salted header line per segment (wrong salt or format misses
    cleanly), seen-name tracking so refreshes absorb exactly the segments
    other processes flushed, and compaction under the advisory
    ``compact.lock`` claim.  Rows are opaque JSON objects; consumers
    validate them (and count their own rejects into ``lines_skipped``).
    """

    def __init__(
        self, directory: str | os.PathLike, salt: str, prefix: str = "verdicts"
    ) -> None:
        self.directory = Path(directory)
        self.salt = salt
        self.prefix = prefix
        self.seen: set = set()  # segment names already absorbed
        self.stats = {
            "segments_loaded": 0,
            "segments_skipped": 0,  # wrong salt/format or unreadable
            "lines_skipped": 0,  # corrupted or truncated
            "compactions": 0,
            "compactions_skipped": 0,  # another process held the claim
        }

    def segments(self) -> list:
        try:
            return sorted(self.directory.glob(f"{self.prefix}-*.jsonl"))
        except OSError:
            return []

    def segment_count(self) -> int:
        return len(self.segments())

    def read_segment(self, path: Path) -> list | None:
        """The rows of one segment, or ``None`` when it misses (bad salt,
        unreadable).  Undecodable rows are skipped and counted."""
        try:
            handle = open(path, encoding="utf-8")
        except OSError:
            self.stats["segments_skipped"] += 1
            return None
        rows = []
        with handle:
            try:
                header = json.loads(handle.readline())
            except (ValueError, OSError):
                self.stats["segments_skipped"] += 1
                return None
            if (
                not isinstance(header, dict)
                or header.get("format") != STORE_FORMAT
                or header.get("salt") != self.salt
            ):
                self.stats["segments_skipped"] += 1
                return None
            self.stats["segments_loaded"] += 1
            for line in handle:
                try:
                    row = json.loads(line)
                except ValueError:
                    self.stats["lines_skipped"] += 1
                    continue
                if not isinstance(row, dict):
                    self.stats["lines_skipped"] += 1
                    continue
                rows.append(row)
        return rows

    def iter_new_segments(self, mark: bool = True):
        """Yield ``(path, rows)`` for readable segments not yet absorbed."""
        for segment in self.segments():
            if segment.name in self.seen:
                continue
            if mark:
                self.seen.add(segment.name)
            rows = self.read_segment(segment)
            if rows is not None:
                yield segment, rows

    def write_segment(self, rows: list, mark: bool = True) -> Path:
        """Write ``rows`` as a fresh uniquely named segment.

        The name embeds the pid and a fresh uuid, so concurrent processes
        never write the same file; the temp-file rename keeps half-written
        segments invisible to readers (they would be skipped anyway).
        ``mark`` records the segment as already-absorbed, so a later
        refresh does not re-read our own flush.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        name = f"{self.prefix}-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        final = self.directory / name
        temp = self.directory / (name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"format": STORE_FORMAT, "salt": self.salt}) + "\n")
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        os.replace(temp, final)
        if mark:
            self.seen.add(name)
        return final

    def compact(self, merge, claim=None) -> dict:
        """Merge every readable segment into one, under the advisory claim.

        ``merge`` maps the concatenated rows of every input segment to the
        canonical row list the survivor segment should hold (dedup lives
        in the consumer — the verdict store merges through a cache, the
        corpus ledger keys by seed).  Returns ``{"compacted": bool,
        "segments_in": n, "entries": m}``.  Safe to call concurrently from
        any number of processes sharing the directory: exactly one wins
        the claim and unlinks the inputs it merged; the rest skip.
        Segments that appear *while* we hold the claim (a concurrent
        flush) are untouched — we only unlink the inputs we actually read.
        ``claim`` overrides the claim acquisition (tests inject races there).
        """
        if claim is None:
            claim = lambda: _claim_compaction(self.directory)  # noqa: E731
        if not claim():
            self.stats["compactions_skipped"] += 1
            return {"compacted": False, "segments_in": 0, "entries": 0}
        try:
            segments = self.segments()
            rows: list = []
            for segment in segments:
                rows.extend(self.read_segment(segment) or [])
            merged = merge(rows)
            all_seen = all(segment.name in self.seen for segment in segments)
            if merged:
                # mark only when the merge holds nothing we have not
                # absorbed already — else a refresh must re-read it
                self.write_segment(merged, mark=all_seen)
            for segment in segments:
                # stale-salt segments are dropped too: no future run loads them
                try:
                    segment.unlink()
                except OSError:  # pragma: no cover - racing an external rm
                    pass
                self.seen.discard(segment.name)
            self.stats["compactions"] += 1
            return {
                "compacted": True,
                "segments_in": len(segments),
                "entries": len(merged),
            }
        finally:
            _release_compaction(self.directory)


class PersistentStore:
    """Append-only JSONL verdict segments in one cache directory."""

    def __init__(self, directory: str | os.PathLike, salt: str | None = None) -> None:
        self.directory = Path(directory)
        self.salt = store_salt() if salt is None else salt
        self._log = SegmentLog(self.directory, self.salt)
        # share the segment-level counters with the log; add the
        # store-level ones (same dict object, so both layers stay in sync)
        self.stats = self._log.stats
        self.stats.update(
            {
                "entries_loaded": 0,
                "entries_refreshed": 0,
                "entries_flushed": 0,
                "refreshes": 0,
            }
        )

    # -- loading -------------------------------------------------------------

    def _absorb_rows(self, rows: list, cache: VerdictCache) -> int:
        absorbed = 0
        for row in rows:
            try:
                scope = row["scope"]
                key = row["key"]
                verdict = _decode_verdict(row["verdict"])
            except (ValueError, KeyError, TypeError):
                self.stats["lines_skipped"] += 1
                continue
            if not isinstance(scope, str) or not isinstance(key, str):
                self.stats["lines_skipped"] += 1
                continue
            if cache.absorb(scope, key, verdict):
                absorbed += 1
        return absorbed

    def load(self, cache: VerdictCache) -> int:
        """Warm ``cache`` from every readable same-salt segment.

        Returns the number of entries absorbed.  In-memory entries win over
        disk entries; between segments, the newest-sorted line wins simply by
        being absorbed first (absorb is first-write-wins, and verdicts for
        one key are equal by construction anyway).
        """
        absorbed = 0
        for _segment, rows in self._log.iter_new_segments():
            absorbed += self._absorb_rows(rows, cache)
        self.stats["entries_loaded"] += absorbed
        return absorbed

    def refresh(self, cache: VerdictCache) -> int:
        """Absorb segments that appeared since our last load/refresh/flush.

        The fleet's cross-shard path: other worker processes flush their
        verdicts as new uniquely named segments; refreshing picks exactly
        those up (segments this store already read — or itself wrote — are
        tracked by name and skipped).  In-memory entries always win, so a
        refresh can never regress a verdict this process decided.
        """
        absorbed = 0
        for _segment, rows in self._log.iter_new_segments():
            absorbed += self._absorb_rows(rows, cache)
        self.stats["refreshes"] += 1
        self.stats["entries_refreshed"] += absorbed
        return absorbed

    # -- flushing ------------------------------------------------------------

    def flush(self, cache: VerdictCache) -> int:
        """Write the cache's not-yet-persisted verdicts as a new segment.

        Returns the number of entries written.  Concurrent processes never
        clobber each other (uniquely named segments, see
        :meth:`SegmentLog.write_segment`).
        """
        entries = [
            (scope_key, verdict)
            for scope_key, verdict, persisted in cache.items()
            if not persisted
        ]
        if entries:
            self._log.write_segment(
                [
                    {"scope": scope, "key": key, "verdict": _encode_verdict(verdict)}
                    for (scope, key), verdict in entries
                ]
            )
            self.stats["entries_flushed"] += len(entries)
        self._maybe_compact(cache)
        return len(entries)

    # -- compaction ----------------------------------------------------------

    def _maybe_compact(self, cache: VerdictCache) -> None:
        if self._log.segment_count() <= COMPACT_THRESHOLD:
            return
        self.compact(cap=cache.cap)

    def compact(self, cap: int | None = None) -> dict:
        """Merge every readable segment into one (see :meth:`SegmentLog.compact`).

        Deduplication runs the rows through a fresh :class:`VerdictCache`,
        so the survivor holds exactly the entries a cold load would absorb.
        """
        if cap is None:
            from repro.core.cache import DEFAULT_CACHE_CAP as cap

        def merge(rows: list) -> list:
            merged = VerdictCache(cap=cap)
            self._absorb_rows(rows, merged)
            return [
                {"scope": scope, "key": key, "verdict": _encode_verdict(verdict)}
                for (scope, key), verdict, _ in merged.items()
            ]

        return self._log.compact(merge, claim=self._claim_compaction)

    def _claim_compaction(self) -> bool:
        return _claim_compaction(self.directory)

    # -- introspection -------------------------------------------------------

    @property
    def _seen(self) -> set:
        # kept as an alias: the fleet tests (and any external poker) reach
        # for the seen-name set by its historical name
        return self._log.seen

    def segment_count(self) -> int:
        return self._log.segment_count()

    def snapshot(self) -> dict:
        return dict(self.stats)


def open_store(
    cache_dir: str | os.PathLike | None,
    no_persist: bool = False,
) -> PersistentStore | None:
    """The CLI/pipeline entry point: a store, or None when persistence is off.

    ``cache_dir`` falls back to the ``REPRO_CACHE_DIR`` environment variable;
    with neither set, persistence stays off (analysis never touches the disk
    unless asked to).
    """
    if no_persist:
        return None
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if cache_dir is None:
        return None
    return PersistentStore(cache_dir)
