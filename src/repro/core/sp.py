"""Strongest postconditions for the conventional-model statement kinds.

Implements the paper's Appendix A forms (after Gries [9]):

* local assignment ``X := e``:   ``sp(P) = ∃v. P[X/v] ∧ X = e[X/v]``
* write ``x := E`` (E local):    ``sp(P) = ∃v. P[x/v] ∧ x = E``
* read ``X := x``:               ``sp(P) = ∃v. P[X/v] ∧ X = x`` (x unchanged)

Existential variables are represented as *fresh free logical variables*
(skolemisation): the prover treats free variables as universally quantified
in validity queries, which is exactly the strength needed when the sp
appears on the premise side of an implication — the only place this library
puts it.

Guard entry/exit for If/While conjoins the (local-only) guard, mirroring
cases (e)–(h) of the paper's Theorem 1 proof.

Relational statements have no general symbolic sp here; the analysis falls
back to the bounded model checker for them.  The one easy case — the
assertion's resources are disjoint from the statement's written resources —
is handled by returning the assertion unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.formula import Formula, Not, conj, eq
from repro.core.program import (
    If,
    LocalAssign,
    Read,
    ReadRecord,
    Statement,
    While,
    Write,
)
from repro.core.resources import overlaps
from repro.core.terms import Field, Item, Local, LogicalVar, Term
from repro.errors import ProgramError

_fresh_counter = itertools.count()


def fresh_logical(sort: str = "int") -> LogicalVar:
    """A fresh logical variable for skolemised existentials."""
    return LogicalVar(f"v!{next(_fresh_counter)}", sort)


def _occurs(target: Term, formula: Formula) -> bool:
    return any(atom == target for atom in formula.atoms())


def _assignment_sp(pre: Formula, target: Term, value: Term) -> Formula:
    """sp for an assignment ``target := value`` in either direction.

    ``value`` may mention ``target`` (e.g. ``x := x + 1`` composed from a
    read/compute/write sequence never does, but local assignments can).
    """
    if not _occurs(target, pre) and not _occurs(target, value):
        return conj(pre, eq(target, value))
    ghost = fresh_logical(target.sort)
    substitution = {target: ghost}
    shifted_pre = pre.substitute(substitution)
    shifted_value = value.substitute(substitution)
    return conj(shifted_pre, eq(target, shifted_value))


@dataclass
class SpResult:
    """Outcome of an sp computation.

    ``formula`` is the strongest postcondition when ``exact`` is true;
    otherwise it is a *sound weakening* (or ``None`` when nothing useful
    could be computed and the caller must fall back to other tiers).
    """

    formula: Formula | None
    exact: bool = True
    note: str = ""


def sp_statement(pre: Formula, stmt: Statement) -> SpResult:
    """Strongest postcondition of a single non-control statement."""
    if isinstance(stmt, Read):
        return SpResult(_assignment_sp(pre, stmt.into, stmt.source))
    if isinstance(stmt, ReadRecord):
        current = pre
        for attr, local in stmt.binds:
            source = Field(stmt.array, stmt.index, attr, local.var_sort)
            current = _assignment_sp(current, local, source)
        return SpResult(current)
    if isinstance(stmt, LocalAssign):
        return SpResult(_assignment_sp(pre, stmt.into, stmt.value))
    if isinstance(stmt, Write):
        return SpResult(_assignment_sp(pre, stmt.target, stmt.value))
    if isinstance(stmt, (If, While)):
        raise ProgramError("control statements are handled by path enumeration")
    # relational statement: only the disjoint case is handled symbolically
    if not overlaps(pre.resources(), stmt.written_resources()):
        return SpResult(pre, exact=False, note="assertion untouched (disjoint footprint)")
    return SpResult(None, exact=False, note=f"no symbolic sp for {type(stmt).__name__}")


@dataclass
class PathPoint:
    """One control point on an annotated execution path."""

    statement: Statement | None  # None for the entry point
    pre: Formula
    derived_post: Formula | None
    exact: bool


@dataclass
class AnnotatedPath:
    """A fully-propagated execution path of a transaction body."""

    points: list = field(default_factory=list)
    condition_notes: list = field(default_factory=list)

    @property
    def final(self) -> Formula:
        if not self.points:
            raise ProgramError("empty annotated path")
        last = self.points[-1]
        return last.derived_post if last.derived_post is not None else last.pre


def annotate_paths(
    body,
    entry: Formula,
    max_loop_unroll: int = 1,
) -> list:
    """Propagate assertions along every execution path of ``body``.

    Conditional branches fork the path with the guard (or its negation)
    conjoined — the paper's Theorem 1 proof cases (e)–(h).  While loops are
    unrolled up to ``max_loop_unroll`` iterations; the post-loop assertion
    conjoins the negated guard, and the propagation is marked inexact when
    the unroll bound may have been insufficient.

    Relational statements without symbolic sp poison exactness from that
    point on: subsequent preconditions degrade to ``TRUE``-weakened forms
    but every control point still receives a *sound* assertion.
    """
    paths: list[AnnotatedPath] = []

    def run(stmts, pre: Formula, exact: bool, acc: AnnotatedPath):
        if not stmts:
            paths.append(acc)
            return
        stmt, rest = stmts[0], stmts[1:]
        if isinstance(stmt, If):
            for branch, guard in ((stmt.then, stmt.cond), (stmt.orelse, Not(stmt.cond))):
                branch_pre = conj(pre, guard)
                forked = AnnotatedPath(list(acc.points), list(acc.condition_notes))
                forked.points.append(PathPoint(stmt, pre, branch_pre, exact))
                run(tuple(branch) + rest, branch_pre, exact, forked)
            return
        if isinstance(stmt, While):
            for unroll in range(max_loop_unroll + 1):
                iteration_body = tuple(stmt.body) * unroll
                exit_pre = pre  # refined below by propagation through body
                forked = AnnotatedPath(list(acc.points), list(acc.condition_notes))
                forked.condition_notes.append(f"loop unrolled {unroll}x")
                loop_exact = exact and unroll < max_loop_unroll
                # entering iterations conjoins the guard; leaving negates it
                if unroll == 0:
                    after_loop = conj(exit_pre, Not(stmt.cond))
                    forked.points.append(PathPoint(stmt, pre, after_loop, exact))
                    run(rest, after_loop, exact, forked)
                else:
                    entry_pre = conj(pre, stmt.cond)
                    forked.points.append(PathPoint(stmt, pre, entry_pre, loop_exact))
                    run(
                        iteration_body + (_LoopExit(stmt),) + rest,
                        entry_pre,
                        loop_exact,
                        forked,
                    )
            return
        if isinstance(stmt, _LoopExit):
            after = conj(pre, Not(stmt.loop.cond))
            acc.points.append(PathPoint(stmt.loop, pre, after, exact))
            run(rest, after, exact, acc)
            return
        result = sp_statement(pre, stmt)
        explicit = getattr(stmt, "post", None)
        if result.formula is not None:
            post = result.formula
            now_exact = exact and result.exact
        elif explicit is not None:
            # trust the programmer's annotation when sp is unavailable
            post = explicit
            now_exact = False
        else:
            from repro.core.formula import TRUE as _TRUE

            post = _TRUE
            now_exact = False
        acc.points.append(PathPoint(stmt, pre, post, now_exact))
        run(rest, post, now_exact, acc)

    run(tuple(body), entry, True, AnnotatedPath())
    return paths


@dataclass(frozen=True)
class _LoopExit(Statement):
    """Internal marker: leaving an unrolled loop (conjoin negated guard)."""

    loop: While

    def execute(self, state, env) -> None:  # pragma: no cover - never executed
        raise ProgramError("loop-exit markers are analysis-internal")
