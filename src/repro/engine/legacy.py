"""The pre-MVCC store and engine, kept as the differential baseline.

:mod:`repro.engine.storage` used to fake versioning with a flat pair of
states — ``current`` (including dirty writes) plus ``committed`` — and a
per-location commit counter; SNAPSHOT begins deep-copied the whole
committed state and aborts replayed undo closures.  The engine was rebuilt
around real tuple versioning (see :mod:`repro.engine.storage`), and this
module preserves the old implementation verbatim so that:

* the differential harness (``tests/engine/test_differential.py``) can
  replay identical operation scripts through both engines and assert the
  public states, outcomes and histories never diverge;
* the E17 benchmark can plot the legacy deep-copy snapshot cost curve
  against the MVCC O(1) capture.

The only functional change from the historical code is the ``rid -> row``
index (:attr:`LegacyVersionedStore._row_index`): ``find_row`` and
``update_row`` were O(n) scans over the table list on every row touch, and
the index — maintained across insert, delete and undo — makes them O(1)
without changing any observable behaviour.

Nothing in the library imports this module at runtime; it exists for
tests and benchmarks only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.state import DbState
from repro.engine.locks import EXCLUSIVE, LONG, LockManager, SHARED, SHORT, WouldBlock
from repro.engine.manager import HistoryOp
from repro.engine.storage import RID, strip_rid
from repro.engine.transaction import (
    ABORTED,
    ALL_LEVELS,
    COMMITTED,
    Txn,
)
from repro.errors import EngineError, FirstCommitterWinsAbort, TransactionAborted


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


@dataclass
class LegacyTxn(Txn):
    """The old transaction runtime: undo/redo logs and a private snapshot."""

    #: undo log: closures' raw entries, applied in reverse on abort
    undo: list = field(default_factory=list)
    #: redo log reflected into the committed snapshot on commit
    redo: list = field(default_factory=list)
    #: SNAPSHOT: private snapshot state (reads and buffered writes)
    snapshot_state: DbState | None = None
    #: SNAPSHOT: committed version counters captured at begin (FCW baseline)
    begin_versions: dict = field(default_factory=dict)
    #: rids inserted by this SNAPSHOT transaction into its private state
    snapshot_inserted: set = field(default_factory=set)


@dataclass
class LegacyVersionedStore:
    """Current state + committed snapshot + per-location version counters."""

    current: DbState = field(default_factory=DbState)
    committed: DbState = field(default_factory=DbState)
    versions: dict = field(default_factory=dict)  # location key -> int
    _rid_counter: itertools.count = field(default_factory=lambda: itertools.count(1))
    #: table -> {rid -> live row dict}; the O(1) replacement for the old
    #: per-operation linear scans, maintained across insert/delete/undo
    _row_index: dict = field(default_factory=dict)

    @classmethod
    def from_state(cls, initial: DbState) -> "LegacyVersionedStore":
        """Initialise from a plain state; assigns row ids to table rows."""
        store = cls()
        store.current = initial.copy()
        for table, rows in store.current.tables.items():
            for row in rows:
                row[RID] = next(store._rid_counter)
                store._row_index.setdefault(table, {})[row[RID]] = row
        store.committed = store.current.copy()
        return store

    def new_rid(self) -> int:
        return next(self._rid_counter)

    # -- version bookkeeping -------------------------------------------------
    def version_of(self, key: tuple) -> int:
        return self.versions.get(key, 0)

    def bump_version(self, key: tuple) -> None:
        self.versions[key] = self.versions.get(key, 0) + 1

    # -- reads ---------------------------------------------------------------
    def read_item(self, name: str):
        return self.current.read_item(name)

    def read_field(self, array: str, index: int, attr):
        return self.current.read_field(array, index, attr)

    def rows(self, table: str) -> Iterable[dict]:
        return self.current.rows(table)

    def find_row(self, table: str, rid: int) -> dict | None:
        return self._row_index.get(table, {}).get(rid)

    # -- in-place writes (locking levels) --------------------------------------
    def write_item(self, name: str, value) -> object:
        """Write in place; returns the undo closure's old value sentinel."""
        old = self.current.items.get(name, _MISSING)
        self.current.write_item(name, value)
        return old

    def write_field(self, array: str, index: int, attr, value) -> object:
        old = (
            self.current.arrays.get(array, {}).get(index, {}).get(attr, _MISSING)
        )
        self.current.write_field(array, index, attr, value)
        return old

    def insert_row(self, table: str, row: Mapping) -> int:
        rid = self.new_rid()
        stored = dict(row)
        stored[RID] = rid
        self.current.insert_row(table, stored)
        # insert_row copies the mapping, so index the stored instance
        self._row_index.setdefault(table, {})[rid] = self.current.tables[table][-1]
        return rid

    def delete_row(self, table: str, rid: int) -> dict:
        row = self._row_index.get(table, {}).pop(rid, None)
        if row is None:
            raise EngineError(f"row {rid} not found in {table}")
        rows = self.current.tables.get(table, [])
        for position, candidate in enumerate(rows):
            if candidate is row:
                return rows.pop(position)
        raise EngineError(f"row {rid} not found in {table}")  # pragma: no cover

    def update_row(self, table: str, rid: int, changes: Mapping) -> dict:
        row = self.find_row(table, rid)
        if row is None:
            raise EngineError(f"row {rid} not found in {table}")
        old = {attr: row.get(attr, _MISSING) for attr in changes}
        row.update(changes)
        return old

    # -- undo (abort of in-place writers) ---------------------------------------
    def undo_item(self, name: str, old) -> None:
        if old is _MISSING:
            self.current.items.pop(name, None)
        else:
            self.current.write_item(name, old)

    def undo_field(self, array: str, index: int, attr, old) -> None:
        if old is _MISSING:
            self.current.arrays.get(array, {}).get(index, {}).pop(attr, None)
        else:
            self.current.write_field(array, index, attr, old)

    def undo_insert(self, table: str, rid: int) -> None:
        self.delete_row(table, rid)

    def undo_delete(self, table: str, row: dict) -> None:
        stored = dict(row)
        self.current.insert_row(table, stored)
        self._row_index.setdefault(table, {})[stored[RID]] = (
            self.current.tables[table][-1]
        )

    def undo_update(self, table: str, rid: int, old: Mapping) -> None:
        row = self.find_row(table, rid)
        if row is None:
            raise EngineError(f"row {rid} vanished during undo in {table}")
        for attr, value in old.items():
            if value is _MISSING:
                row.pop(attr, None)
            else:
                row[attr] = value

    # -- commit reflection -------------------------------------------------------
    def reflect_commit(self, writes: Iterable[tuple]) -> None:
        """Propagate a committing transaction's writes into the committed
        snapshot and bump the affected version counters.

        ``writes`` is the transaction's redo log:
        ``("item", name, value) | ("field", array, index, attr, value) |
        ("insert", table, rid, row) | ("delete", table, rid, row) |
        ("update", table, rid, changes)``.
        """
        for entry in writes:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                self.committed.write_item(name, value)
                self.bump_version(("item", name))
            elif kind == "field":
                _k, array, index, attr, value = entry
                self.committed.write_field(array, index, attr, value)
                self.bump_version(("record", array, index))
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                self.committed.insert_row(table, stored)
                self.bump_version(("row", table, rid))
            elif kind == "delete":
                _k, table, rid, _row = entry
                self.committed.delete_rows(table, lambda r: r.get(RID) == rid)
                self.bump_version(("row", table, rid))
            elif kind == "update":
                _k, table, rid, changes = entry
                for row in self.committed.rows(table):
                    if row.get(RID) == rid:
                        row.update(changes)
                        break
                self.bump_version(("row", table, rid))
            else:
                raise EngineError(f"unknown redo entry {entry!r}")

    def snapshot(self) -> DbState:
        """A deep copy of the committed state (for SNAPSHOT transactions)."""
        return self.committed.copy()

    def public_state(self, committed_only: bool = True) -> DbState:
        """The state without row ids, for assertion evaluation and oracles."""
        base = self.committed if committed_only else self.current
        clean = base.copy()
        for table, rows in clean.tables.items():
            clean.tables[table] = [strip_rid(row) for row in rows]
        return clean


class LegacyEngine:
    """The undo-closure engine the MVCC rebuild replaced (baseline only)."""

    def __init__(self, initial: DbState, phantom_protection: bool = True) -> None:
        self.store = LegacyVersionedStore.from_state(initial)
        self.locks = LockManager()
        self.txns: dict = {}
        self.history: list = []
        self._next_id = 1
        self.tick = 0
        self.phantom_protection = phantom_protection

    # -- lifecycle -----------------------------------------------------------
    def begin(self, level: str) -> LegacyTxn:
        if level not in ALL_LEVELS:
            raise EngineError(f"unknown isolation level {level!r}")
        txn = LegacyTxn(txn_id=self._next_id, level=level, begin_tick=self.tick)
        self._next_id += 1
        if txn.uses_snapshot:
            txn.snapshot_state = self.store.snapshot()
            txn.begin_versions = dict(self.store.versions)
        self.txns[txn.txn_id] = txn
        self._record(txn, "begin")
        return txn

    def commit(self, txn: LegacyTxn) -> None:
        self._require_active(txn)
        if txn.uses_snapshot:
            self._commit_snapshot(txn)
        else:
            self.store.reflect_commit(txn.redo)
        self.locks.release_all(txn.txn_id)
        txn.status = COMMITTED
        txn.commit_tick = self.tick
        self._record(txn, "commit", info=self._txn_footprint(txn))

    def abort(self, txn: LegacyTxn, reason: str = "explicit") -> None:
        if txn.status in (COMMITTED, ABORTED):
            return
        if not txn.uses_snapshot:
            for entry in reversed(txn.undo):
                self._apply_undo(entry)
        self.locks.release_all(txn.txn_id)
        txn.status = ABORTED
        txn.abort_reason = reason
        info = self._txn_footprint(txn)
        info["reason"] = reason
        self._record(txn, "abort", info=info)

    def _commit_snapshot(self, txn: LegacyTxn) -> None:
        begin_versions = getattr(txn, "begin_versions", {})
        for key in txn.write_set:
            if self.store.version_of(key) > begin_versions.get(key, 0):
                self.abort(txn, reason=f"first-committer-wins on {key}")
                raise FirstCommitterWinsAbort(txn.txn_id, str(key))
            holders = self.locks.holders(key)
            others = {t for t, mode in holders.items() if t != txn.txn_id and mode == EXCLUSIVE}
            if others:
                raise WouldBlock(others, key=key, mode=EXCLUSIVE)
        # apply buffered writes to the live state, then reflect as committed
        for entry in txn.redo:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                self.store.write_item(name, value)
            elif kind == "field":
                _k, array, index, attr, value = entry
                self.store.write_field(array, index, attr, value)
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                self.store.current.insert_row(table, stored)
                self.store._row_index.setdefault(table, {})[rid] = (
                    self.store.current.tables[table][-1]
                )
            elif kind == "delete":
                _k, table, rid, _row = entry
                if self.store.find_row(table, rid) is not None:
                    self.store.delete_row(table, rid)
            elif kind == "update":
                _k, table, rid, changes = entry
                row = self.store.find_row(table, rid)
                if row is not None:
                    row.update(changes)
        self.store.reflect_commit(txn.redo)

    # -- conventional reads ----------------------------------------------------
    def read_item(self, txn: LegacyTxn, name: str):
        self._require_active(txn)
        if txn.uses_snapshot:
            value = txn.snapshot_state.read_item(name)
            self._record(txn, "r", ("item", name), info={"value": value})
            return value
        key = ("item", name)
        self._read_lock(txn, key)
        value = self.store.read_item(name)
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn, "r", key, dirty_from=self._dirty_writer(txn, key), info={"value": value}
        )
        return value

    def read_field(self, txn: LegacyTxn, array: str, index: int, attr):
        self._require_active(txn)
        if txn.uses_snapshot:
            value = txn.snapshot_state.read_field(array, index, attr)
            self._record(txn, "r", ("record", array, index), info={"attr": attr, "value": value})
            return value
        key = ("record", array, index)
        self._read_lock(txn, key)
        value = self.store.read_field(array, index, attr)
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attr": attr, "value": value},
        )
        return value

    def read_record(self, txn: LegacyTxn, array: str, index: int, attrs: Iterable[str]) -> dict:
        """Atomically read several attributes of one record (one lock)."""
        self._require_active(txn)
        if txn.uses_snapshot:
            values = {
                attr: txn.snapshot_state.read_field(array, index, attr) for attr in attrs
            }
            self._record(
                txn, "r", ("record", array, index), info={"attrs": tuple(attrs), "values": dict(values)}
            )
            return values
        key = ("record", array, index)
        self._read_lock(txn, key)
        values = {attr: self.store.read_field(array, index, attr) for attr in attrs}
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attrs": tuple(attrs), "values": dict(values)},
        )
        return values

    # -- conventional writes -----------------------------------------------------
    def write_item(self, txn: LegacyTxn, name: str, value) -> None:
        self._require_active(txn)
        key = ("item", name)
        if txn.uses_snapshot:
            txn.snapshot_state.write_item(name, value)
            txn.write_set.add(key)
            txn.redo.append(("item", name, value))
            self._record(txn, "w", key, info={"value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        old = self.store.write_item(name, value)
        txn.undo.append(("item", name, old))
        txn.redo.append(("item", name, value))
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"value": value})

    def write_field(self, txn: LegacyTxn, array: str, index: int, attr, value) -> None:
        self._require_active(txn)
        key = ("record", array, index)
        if txn.uses_snapshot:
            txn.snapshot_state.write_field(array, index, attr, value)
            txn.write_set.add(key)
            txn.redo.append(("field", array, index, attr, value))
            self._record(txn, "w", key, info={"attr": attr, "value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        old = self.store.write_field(array, index, attr, value)
        txn.undo.append(("field", array, index, attr, old))
        txn.redo.append(("field", array, index, attr, value))
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"attr": attr, "value": value})

    # -- relational operations ------------------------------------------------
    def select(self, txn: LegacyTxn, table: str, predicate: Callable[[dict], bool]) -> list:
        """Rows (without rids) satisfying the predicate, per-level semantics."""
        self._require_active(txn)
        if txn.uses_snapshot:
            rows = [strip_rid(r) for r in txn.snapshot_state.rows(table) if predicate(strip_rid(r))]
            self._record(txn, "r", ("table", table))
            return rows
        if txn.level == "READ UNCOMMITTED":
            rows = [strip_rid(r) for r in self.store.rows(table) if predicate(strip_rid(r))]
            self._record(txn, "r", ("table", table))
            return rows
        matching = self._visible_matching(txn, table, predicate)
        duration = LONG if txn.read_lock_duration == "long" else SHORT
        acquired: list = []
        try:
            for rid, _image in matching:
                key = ("row", table, rid)
                self.locks.acquire(txn.txn_id, key, SHARED, duration)
                acquired.append(key)
                if duration == LONG:
                    txn.long_locks.add(key)
                txn.read_versions.setdefault(key, self.store.version_of(key))
        except WouldBlock:
            # drop the partial short locks so a retried select starts clean
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
            raise
        if txn.takes_predicate_read_locks and self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, SHARED, LONG)
        if duration == SHORT:
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
        self._record(txn, "r", ("table", table), info={"rids": [rid for rid, _ in matching]})
        return [dict(image) for _rid, image in matching]

    def insert(self, txn: LegacyTxn, table: str, row: Mapping) -> None:
        self._require_active(txn)
        image = dict(row)
        if txn.uses_snapshot:
            rid = self.store.new_rid()
            stored = dict(image)
            stored[RID] = rid
            txn.snapshot_state.insert_row(table, stored)
            txn.snapshot_inserted.add(rid)
            txn.redo.append(("insert", table, rid, image))
            txn.write_set.add(("row", table, rid))
            self._record(txn, "ins", ("table", table), info={"row": dict(image)})
            return
        # phantom protection: the new row must not fall into another
        # transaction's predicate (read or write) lock
        if self.phantom_protection:
            self.locks.check_rows_against_predicates(txn.txn_id, table, [image], EXCLUSIVE)
        rid = self.store.insert_row(table, image)
        key = ("row", table, rid)
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        txn.undo.append(("insert", table, rid))
        txn.redo.append(("insert", table, rid, image))
        txn.write_set.add(key)
        self._record(txn, "ins", key, info={"row": dict(image)})

    def update(
        self,
        txn: LegacyTxn,
        table: str,
        predicate: Callable[[dict], bool],
        changes: Callable[[dict], Mapping],
    ) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            updated = 0
            for row in txn.snapshot_state.rows(table):
                image = strip_rid(row)
                if predicate(image):
                    delta = dict(changes(image))
                    row.update(delta)
                    rid = row[RID]
                    txn.write_set.add(("row", table, rid))
                    if rid not in txn.snapshot_inserted:
                        txn.redo.append(("update", table, rid, delta))
                    else:
                        self._merge_snapshot_insert(txn, table, rid, delta)
                    updated += 1
            self._record(txn, "upd", ("table", table))
            return updated
        matching = self._visible_matching(txn, table, predicate)
        updated = 0
        for rid, image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            delta = dict(changes(dict(image)))
            new_image = dict(image)
            new_image.update(delta)
            # moving a row into a SERIALIZABLE reader's predicate is a phantom
            if self.phantom_protection:
                self.locks.check_rows_against_predicates(
                    txn.txn_id, table, [new_image], EXCLUSIVE
                )
            old = self.store.update_row(table, rid, delta)
            txn.undo.append(("update", table, rid, old))
            txn.redo.append(("update", table, rid, delta))
            txn.write_set.add(key)
            updated += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "upd", ("table", table), info={"count": updated})
        return updated

    def delete(self, txn: LegacyTxn, table: str, predicate: Callable[[dict], bool]) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            victims = [
                row
                for row in txn.snapshot_state.rows(table)
                if predicate(strip_rid(row))
            ]
            for row in victims:
                rid = row[RID]
                txn.snapshot_state.delete_rows(table, lambda r: r.get(RID) == rid)
                txn.write_set.add(("row", table, rid))
                if rid not in txn.snapshot_inserted:
                    txn.redo.append(("delete", table, rid, strip_rid(row)))
                else:
                    txn.redo = [
                        entry
                        for entry in txn.redo
                        if not (entry[0] == "insert" and entry[2] == rid)
                    ]
            self._record(txn, "del", ("table", table))
            return len(victims)
        matching = self._visible_matching(txn, table, predicate)
        deleted = 0
        for rid, image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            row = self.store.delete_row(table, rid)
            txn.undo.append(("delete", table, rid, row))
            txn.redo.append(("delete", table, rid, strip_rid(row)))
            txn.write_set.add(key)
            deleted += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "del", ("table", table), info={"count": deleted})
        return deleted

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _txn_footprint(txn: LegacyTxn) -> dict:
        writes = tuple(sorted(txn.write_set))
        reads = tuple(sorted(set(txn.long_locks) - set(txn.write_set)))
        return {"writes": writes, "reads": reads}

    def _merge_snapshot_insert(self, txn: LegacyTxn, table: str, rid: int, delta: Mapping) -> None:
        for position, entry in enumerate(txn.redo):
            if entry[0] == "insert" and entry[1] == table and entry[2] == rid:
                merged = dict(entry[3])
                merged.update(delta)
                txn.redo[position] = ("insert", table, rid, merged)
                return

    def _visible_matching(
        self, txn: LegacyTxn, table: str, predicate: Callable[[dict], bool]
    ) -> list:
        images: dict = {}
        for row in self.store.rows(table):
            rid = row.get(RID)
            images[rid] = strip_rid(row)
        for row in self.store.committed.rows(table):
            rid = row.get(RID)
            key = ("row", table, rid)
            holders = self.locks.holders(key)
            locked_by_other = any(
                holder != txn.txn_id and mode == EXCLUSIVE for holder, mode in holders.items()
            )
            if locked_by_other or rid not in images:
                images[rid] = strip_rid(row)
        matching = []
        for rid, image in images.items():
            if predicate(image):
                matching.append((rid, image))
        matching.sort(key=lambda pair: pair[0])
        return matching

    def _read_lock(self, txn: LegacyTxn, key: tuple) -> None:
        duration = txn.read_lock_duration
        if duration is None:
            return
        self.locks.acquire(txn.txn_id, key, SHARED, duration)
        if duration == "long":
            txn.long_locks.add(key)
        elif key not in txn.long_locks:
            self.locks.release(txn.txn_id, key)

    def _validate_fcw(self, txn: LegacyTxn, key: tuple) -> None:
        """READ COMMITTED FCW: abort if the item changed since we read it."""
        if txn.level != "READ COMMITTED FCW":
            return
        read_version = txn.read_versions.get(key)
        if read_version is not None and self.store.version_of(key) > read_version:
            self.abort(txn, reason=f"first-committer-wins on {key}")
            raise FirstCommitterWinsAbort(txn.txn_id, str(key))

    def _dirty_writer(self, txn: LegacyTxn, key: tuple) -> int | None:
        for holder, mode in self.locks.holders(key).items():
            if holder != txn.txn_id and mode == EXCLUSIVE:
                return holder
        return None

    def _apply_undo(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "item":
            _k, name, old = entry
            self.store.undo_item(name, old)
        elif kind == "field":
            _k, array, index, attr, old = entry
            self.store.undo_field(array, index, attr, old)
        elif kind == "insert":
            _k, table, rid = entry
            self.store.undo_insert(table, rid)
        elif kind == "delete":
            _k, table, rid, row = entry
            self.store.undo_delete(table, row)
        elif kind == "update":
            _k, table, rid, old = entry
            self.store.undo_update(table, rid, old)
        else:
            raise EngineError(f"unknown undo entry {entry!r}")

    def _require_active(self, txn: LegacyTxn) -> None:
        if txn.status == ABORTED:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "aborted")
        if txn.status == COMMITTED:
            raise EngineError(f"transaction {txn.txn_id} already committed")

    def _record(
        self,
        txn: LegacyTxn,
        kind: str,
        key: tuple | None = None,
        dirty_from: int | None = None,
        info: dict | None = None,
    ) -> None:
        self.tick += 1
        self.history.append(
            HistoryOp(
                tick=self.tick,
                txn_id=txn.txn_id,
                kind=kind,
                key=key,
                version=self.store.version_of(key) if key is not None else None,
                dirty_from=dirty_from,
                info=info or {},
            )
        )

    # -- inspection ---------------------------------------------------------------
    def preview_commit(self, txn: LegacyTxn) -> DbState:
        if not txn.uses_snapshot:
            return self.public_live()
        preview = self.store.current.copy()
        for entry in txn.redo:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                preview.write_item(name, value)
            elif kind == "field":
                _k, array, index, attr, value = entry
                preview.write_field(array, index, attr, value)
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                preview.insert_row(table, stored)
            elif kind == "delete":
                _k, table, rid, _row = entry
                preview.delete_rows(table, lambda r: r.get(RID) == rid)
            elif kind == "update":
                _k, table, rid, changes = entry
                for row in preview.rows(table):
                    if row.get(RID) == rid:
                        row.update(changes)
                        break
        for table, rows in preview.tables.items():
            preview.tables[table] = [strip_rid(row) for row in rows]
        return preview

    def public_live(self) -> DbState:
        return self.store.public_state(committed_only=False)

    def committed_state(self) -> DbState:
        return self.store.public_state(committed_only=True)

    def live_state(self) -> DbState:
        return self.store.public_state(committed_only=False)
