"""Waits-for graph and deadlock resolution.

The scheduler records a waits-for edge whenever an operation raises
:class:`repro.engine.locks.WouldBlock`.  Deadlock detection is a cycle
search on that graph (networkx); the victim is, by default, the youngest
transaction in the cycle (largest id), matching the common
minimum-work-lost heuristic.
"""

from __future__ import annotations

import networkx as nx


class WaitsForGraph:
    """A thin, explicit wrapper over a networkx digraph of txn ids."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def add_waits(self, waiter: int, blockers) -> None:
        for blocker in blockers:
            if blocker != waiter:
                self._graph.add_edge(waiter, blocker)

    def clear_waits(self, waiter: int) -> None:
        if self._graph.has_node(waiter):
            for blocker in list(self._graph.successors(waiter)):
                self._graph.remove_edge(waiter, blocker)

    def remove(self, txn_id: int) -> None:
        if self._graph.has_node(txn_id):
            self._graph.remove_node(txn_id)

    def find_cycle(self) -> list | None:
        """Transaction ids forming a deadlock cycle, or None."""
        try:
            edges = nx.find_cycle(self._graph)
        except nx.NetworkXNoCycle:
            return None
        return [edge[0] for edge in edges]

    def pick_victim(self, cycle) -> int:
        """The youngest (highest-id) transaction in the cycle."""
        return max(cycle)

    def blockers_of(self, waiter: int) -> set:
        if not self._graph.has_node(waiter):
            return set()
        return set(self._graph.successors(waiter))
