"""Per-transaction runtime state inside the engine.

Since the MVCC rebuild a transaction carries no undo closures and no
private deep-copied state: locking-level writers stamp pending versions
directly into the shared store (abort = unstamping, see
:meth:`repro.engine.storage.MvccStore.abort_txn`), and SNAPSHOT
transactions read through an O(1) :class:`repro.engine.storage.Snapshot`
plus a private :class:`WriteOverlay` of buffered writes that is applied
as version stamps at commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

ACTIVE = "active"
BLOCKED = "blocked"
COMMITTED = "committed"
ABORTED = "aborted"

#: Isolation levels the engine accepts (mirrors repro.core.conditions).
READ_UNCOMMITTED = "READ UNCOMMITTED"
READ_COMMITTED = "READ COMMITTED"
READ_COMMITTED_FCW = "READ COMMITTED FCW"
REPEATABLE_READ = "REPEATABLE READ"
SNAPSHOT = "SNAPSHOT"
SERIALIZABLE = "SERIALIZABLE"

ALL_LEVELS = (
    READ_UNCOMMITTED,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    REPEATABLE_READ,
    SNAPSHOT,
    SERIALIZABLE,
)

#: Levels whose reads take no lock at all.
_NO_READ_LOCK = {READ_UNCOMMITTED, SNAPSHOT}

#: Levels whose read locks are long duration.
_LONG_READ_LOCK = {REPEATABLE_READ, SERIALIZABLE}


@dataclass
class WriteOverlay:
    """A SNAPSHOT transaction's buffered writes over its begin snapshot.

    The overlay is the write buffer *and* the read-your-own-writes layer:
    private reads merge it over the snapshot-resolved chains, and commit
    replays it as version stamps.  Ordered dicts preserve operation order
    where it is observable (own inserts appear after snapshot rows, in
    insertion order, exactly like the old private-state append).
    """

    #: item name -> buffered value
    items: dict = field(default_factory=dict)
    #: (array, index) -> buffered attr dict (merged over the snapshot's)
    records: dict = field(default_factory=dict)
    #: table -> {rid -> row image} for rows this transaction inserted
    inserted: dict = field(default_factory=dict)
    #: table -> set of snapshot-visible rids this transaction deleted
    deleted: dict = field(default_factory=dict)
    #: table -> {rid -> accumulated changes} for snapshot-visible rows
    updated: dict = field(default_factory=dict)
    #: location key -> commit-counter increments (one per write operation,
    #: mirroring the redo entries the old store reflected)
    bumps: dict = field(default_factory=dict)

    def bump(self, key: tuple, count: int = 1) -> None:
        total = self.bumps.get(key, 0) + count
        if total:
            self.bumps[key] = total
        else:
            self.bumps.pop(key, None)

    def own_insert(self, table: str, rid: int) -> bool:
        return rid in self.inserted.get(table, {})


@dataclass
class Txn:
    """Runtime state of one transaction (its id doubles as its xid)."""

    txn_id: int
    level: str
    status: str = ACTIVE
    #: locks held and their duration ("short" released after each op)
    long_locks: set = field(default_factory=set)
    #: location key -> commit stamp observed at first read (RC FCW)
    read_versions: dict = field(default_factory=dict)
    #: location keys written (FCW validation, write-set reporting)
    write_set: set = field(default_factory=set)
    #: op-ordered granule touches, unstamped in reverse on abort
    stamped: list = field(default_factory=list)
    #: location key -> commit-counter increments to apply at commit
    bump_counts: dict = field(default_factory=dict)
    #: SNAPSHOT: the O(1) begin capture (None at locking levels)
    snapshot: object | None = None
    #: SNAPSHOT: buffered writes over the snapshot
    overlay: WriteOverlay | None = None
    #: schedule bookkeeping
    begin_tick: int = 0
    commit_tick: int | None = None
    abort_reason: str | None = None

    def bump(self, key: tuple, count: int = 1) -> None:
        self.bump_counts[key] = self.bump_counts.get(key, 0) + count

    @property
    def uses_snapshot(self) -> bool:
        return self.level == SNAPSHOT

    @property
    def read_lock_duration(self) -> str | None:
        if self.level in _NO_READ_LOCK:
            return None
        return "long" if self.level in _LONG_READ_LOCK else "short"

    @property
    def validates_fcw(self) -> bool:
        return self.level in (READ_COMMITTED_FCW, SNAPSHOT)

    @property
    def takes_predicate_read_locks(self) -> bool:
        return self.level == SERIALIZABLE

    @property
    def is_active(self) -> bool:
        return self.status in (ACTIVE, BLOCKED)
