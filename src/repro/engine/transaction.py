"""Per-transaction runtime state inside the engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.state import DbState

ACTIVE = "active"
BLOCKED = "blocked"
COMMITTED = "committed"
ABORTED = "aborted"

#: Isolation levels the engine accepts (mirrors repro.core.conditions).
READ_UNCOMMITTED = "READ UNCOMMITTED"
READ_COMMITTED = "READ COMMITTED"
READ_COMMITTED_FCW = "READ COMMITTED FCW"
REPEATABLE_READ = "REPEATABLE READ"
SNAPSHOT = "SNAPSHOT"
SERIALIZABLE = "SERIALIZABLE"

ALL_LEVELS = (
    READ_UNCOMMITTED,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    REPEATABLE_READ,
    SNAPSHOT,
    SERIALIZABLE,
)

#: Levels whose reads take no lock at all.
_NO_READ_LOCK = {READ_UNCOMMITTED, SNAPSHOT}

#: Levels whose read locks are long duration.
_LONG_READ_LOCK = {REPEATABLE_READ, SERIALIZABLE}


@dataclass
class Txn:
    """Runtime state of one transaction."""

    txn_id: int
    level: str
    status: str = ACTIVE
    #: locks held and their duration ("short" released after each op)
    long_locks: set = field(default_factory=set)
    #: undo log: closures' raw entries, applied in reverse on abort
    undo: list = field(default_factory=list)
    #: redo log reflected into the committed snapshot on commit
    redo: list = field(default_factory=list)
    #: location key -> committed version observed at first read (FCW)
    read_versions: dict = field(default_factory=dict)
    #: location keys written (FCW validation, write-set reporting)
    write_set: set = field(default_factory=set)
    #: SNAPSHOT: private snapshot state (reads and buffered writes)
    snapshot_state: DbState | None = None
    #: SNAPSHOT: committed version counters captured at begin (FCW baseline)
    begin_versions: dict = field(default_factory=dict)
    #: rids inserted by this SNAPSHOT transaction into its private state
    snapshot_inserted: set = field(default_factory=set)
    #: schedule bookkeeping
    begin_tick: int = 0
    commit_tick: int | None = None
    abort_reason: str | None = None

    @property
    def uses_snapshot(self) -> bool:
        return self.level == SNAPSHOT

    @property
    def read_lock_duration(self) -> str | None:
        if self.level in _NO_READ_LOCK:
            return None
        return "long" if self.level in _LONG_READ_LOCK else "short"

    @property
    def validates_fcw(self) -> bool:
        return self.level in (READ_COMMITTED_FCW, SNAPSHOT)

    @property
    def takes_predicate_read_locks(self) -> bool:
        return self.level == SERIALIZABLE

    @property
    def is_active(self) -> bool:
        return self.status in (ACTIVE, BLOCKED)
